//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements exactly the surface this workspace uses: a seedable [`StdRng`]
//! (xoshiro256++), the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with
//! `gen_range`, `gen_bool` and `gen`, and [`seq::SliceRandom`] with
//! Fisher–Yates `shuffle`. Streams are deterministic per seed but do not
//! match upstream `rand`'s ChaCha-based `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the two primitive output methods.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1` (including NaN), matching upstream `rand`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        // 53 random bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Samples one value; panics on an empty range, like upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform `u64` below `bound` (> 0) without modulo bias, via
/// Lemire's multiply-then-widen rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u64) - (start as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, width + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u8, u16, u32, u64);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, width + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(isize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // [0, 1] inclusive: 2^53 + 1 equally likely mantissa values.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit.min(1.0) * (end - start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (seeded via SplitMix64).
    ///
    /// Deterministic per seed; does not reproduce upstream `rand`'s ChaCha12
    /// streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use rngs::StdRng;

/// Convenience prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
