//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Supports the subset this workspace's property tests use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! [`Strategy::prop_map`]/[`Strategy::prop_flat_map`], [`any`],
//! [`collection::vec`] / [`collection::btree_set`] and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: generation is uniform random with **no
//! shrinking** — a failing case panics with the generated inputs via the
//! normal assertion message but is not minimised. The RNG seed is derived
//! from the test name, so failures reproduce deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, SeedableRng, StdRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Configuration for a property test run.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub fn __new_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: deterministic, distinct per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, f64);

/// A constant strategy: always yields clones of one value (`Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy generating any value of `T` (the [`Arbitrary`] impl).
pub struct Any<T>(PhantomData<T>);

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_via_standard!(bool, u32, u64, f64);

/// Returns the canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.min..=self.max_inclusive)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the result below the target, matching
            // upstream's "best effort" semantics; bound the attempts so
            // narrow element domains terminate.
            for _ in 0..target.saturating_mul(4).max(target) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// Generates `BTreeSet`s of `element` values with roughly `size` entries.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Re-export hub mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
    /// Alias so `prop::collection::...` paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// against `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::__new_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::__new_rng("ranges_and_maps");
        let s = (2usize..10).prop_flat_map(|n| (0..n as u32).prop_map(move |v| (n, v)));
        for _ in 0..500 {
            let (n, v) = s.generate(&mut rng);
            assert!((2..10).contains(&n));
            assert!((v as usize) < n);
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = crate::__new_rng("collection_vec");
        let s = crate::collection::vec(0u32..5, 3..=7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..=7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(a in 0usize..50, flag in any::<bool>()) {
            prop_assert!(a < 50);
            let negated = !flag;
            prop_assert_eq!(!negated, flag);
        }
    }
}
