//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the surface this workspace's benches use: benchmark groups with
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_with_input`,
//! `bench_function`, [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark runs a
//! warm-up phase then `sample_size` timed samples and prints mean/min/max;
//! there is no statistical analysis, HTML report or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark as `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` through a warm-up phase then `sample_size` timed
    /// samples, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; the stand-in always runs exactly
    /// `sample_size` samples regardless of the measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(&id.id, |b| routine(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(&id.to_string(), |b| routine(b));
        self
    }

    /// Finishes the group (output is emitted per benchmark as it runs).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher<'_>)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &samples);
    }
}

fn report(full_id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{full_id:<60} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{full_id:<60} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Entry point handed to benchmark functions; creates groups.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Parses (and ignores) the CLI arguments `cargo bench` passes, e.g.
    /// `--bench`; returns `self` for chaining like upstream.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up_time) = (self.default_sample_size, self.default_warm_up);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            warm_up_time,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", |b| routine(b));
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        let input = 1234u64;
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("id", 42), &input, |b, &x| {
            b.iter(|| {
                runs += 1;
                x.wrapping_mul(3)
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
