//! Qualitative checks of the paper's claims: not absolute timings (those are
//! hardware-dependent and live in the benchmark harness) but the structural
//! trends every table relies on — branch counts, early-termination activity,
//! the τ/δ gap and the complexity condition.

use hbbmc::{count_maximal_cliques, SolverConfig};
use mce_gen::{barabasi_albert, erdos_renyi, planted_communities, PlantedConfig};
use mce_graph::{Graph, GraphStats};

/// A clique-rich, community-structured workload similar in character to the
/// paper's social-network datasets (at laptop scale).
fn social_surrogate(seed: u64) -> Graph {
    planted_communities(&PlantedConfig {
        n: 800,
        communities: 140,
        min_size: 5,
        max_size: 12,
        intra_probability: 0.92,
        background_edges: 2_500,
        seed,
    })
}

#[test]
fn truss_parameter_is_strictly_below_degeneracy_on_all_workloads() {
    // Section III-C / Table I: τ < δ on every graph with at least one edge.
    let graphs = vec![
        social_surrogate(1),
        erdos_renyi(800, 6_400, 2),
        barabasi_albert(800, 8, 3),
    ];
    for g in graphs {
        let s = GraphStats::compute(&g);
        assert!(
            s.tau < s.degeneracy,
            "τ={} should be < δ={}",
            s.tau,
            s.degeneracy
        );
    }
}

#[test]
fn complexity_condition_discriminates_graph_families() {
    // The paper verifies δ ≥ max{3, τ + 3lnρ/ln3} for the majority of its
    // (large) real-world graphs. At surrogate scale the δ − τ gap is
    // compressed, so we check the condition logic on graphs engineered to sit
    // on either side of it: a dense bipartite core has a large degeneracy but
    // no triangles (τ = 0), so the condition holds; a small dense random
    // graph has δ ≈ τ and fails it.
    let bipartite_core = mce_gen::complete_bipartite(25, 25);
    let s = GraphStats::compute(&bipartite_core);
    assert_eq!(s.tau, 0, "bipartite graphs are triangle-free");
    assert!(
        s.hbbmc_condition_holds(),
        "condition should hold: δ={} τ={} ρ={:.1} threshold={:.1}",
        s.degeneracy,
        s.tau,
        s.rho,
        s.condition_threshold()
    );

    let dense_random = erdos_renyi(60, 900, 4);
    let s = GraphStats::compute(&dense_random);
    assert!(
        !s.hbbmc_condition_holds() || s.degeneracy as f64 >= s.condition_threshold(),
        "condition check must be internally consistent"
    );
    // The surrogate community graph reports whichever side it falls on; the
    // check itself must agree with the raw formula.
    let s = GraphStats::compute(&social_surrogate(7));
    let formula = s.degeneracy as f64 >= (s.tau as f64 + 3.0 * s.rho.ln() / 3f64.ln()).max(3.0);
    assert_eq!(s.hbbmc_condition_holds(), formula);
}

#[test]
fn early_termination_reduces_recursive_calls_monotonically() {
    // Table V: #Calls drops steadily from t = 0 to t = 3, the results are
    // identical, and the eligible/terminated ratio is a valid fraction.
    let g = social_surrogate(11);
    let mut calls = Vec::new();
    let mut counts = Vec::new();
    for t in 0..=3usize {
        let (count, stats) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp_et(t));
        counts.push(count);
        calls.push(stats.recursive_calls);
        if t == 0 {
            assert_eq!(stats.et_terminated, 0);
            assert_eq!(stats.et_eligible, 0);
        } else {
            assert!(
                stats.et_terminated > 0,
                "ET should fire on a clique-rich graph (t={t})"
            );
            assert!(stats.et_terminated <= stats.et_eligible);
            let ratio = stats.et_ratio();
            assert!((0.0..=1.0).contains(&ratio));
        }
    }
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "all ET levels report the same cliques"
    );
    assert!(
        calls[3] < calls[0],
        "t=3 ({}) should need fewer recursive calls than t=0 ({})",
        calls[3],
        calls[0]
    );
    assert!(
        calls[3] <= calls[2] && calls[2] <= calls[1] && calls[1] <= calls[0],
        "calls should fall monotonically with t: {calls:?}"
    );
}

#[test]
fn switching_late_to_vertex_branching_increases_calls() {
    // Table IV: d = 1 produces the fewest recursive calls; d = 2, 3 produce
    // progressively more because edge-oriented levels lack pivot pruning.
    let g = social_surrogate(23);
    let mut calls = Vec::new();
    let mut counts = Vec::new();
    for d in 1..=3usize {
        let (count, stats) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp_depth(d));
        calls.push(stats.recursive_calls);
        counts.push(count);
    }
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "all depths report the same cliques"
    );
    assert!(
        calls[0] < calls[1],
        "d=1 ({}) should branch less than d=2 ({})",
        calls[0],
        calls[1]
    );
    assert!(
        calls[1] < calls[2],
        "d=2 ({}) should branch less than d=3 ({})",
        calls[1],
        calls[2]
    );
}

#[test]
fn hybrid_root_produces_more_but_smaller_initial_branches() {
    // Section V-B observation (1): HBBMC creates m root branches versus n for
    // VBBMC, but each is bounded by τ instead of δ.
    let g = social_surrogate(29);
    let (_, hybrid) = count_maximal_cliques(&g, &SolverConfig::hbbmc_plus());
    let (_, vertex) = count_maximal_cliques(&g, &SolverConfig::r_degen());
    assert!(
        hybrid.initial_branches > vertex.initial_branches,
        "edge-oriented root should create more root branches ({} vs {})",
        hybrid.initial_branches,
        vertex.initial_branches
    );
}

#[test]
fn graph_reduction_reports_cliques_and_removes_vertices() {
    // GR is orthogonal: it removes simplicial vertices, reports their cliques
    // directly, and never changes the overall result.
    let g = social_surrogate(41);
    let with_gr = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
    let mut no_gr_cfg = SolverConfig::hbbmc_pp();
    no_gr_cfg.graph_reduction = false;
    let without_gr = count_maximal_cliques(&g, &no_gr_cfg);
    assert_eq!(with_gr.0, without_gr.0);
    assert!(
        with_gr.1.gr_removed_vertices > 0,
        "a community graph has simplicial vertices"
    );
    assert!(with_gr.1.gr_cliques > 0);
    assert_eq!(without_gr.1.gr_removed_vertices, 0);
}

#[test]
fn et_fires_on_community_graphs_and_its_ratio_is_a_valid_fraction() {
    // Table V reports the ratio b0/b between branches that could be
    // early-terminated and branches whose candidate graph is a t-plex. On the
    // paper's full-size graphs it often exceeds 60%; the small surrogates
    // compress it (overlapping communities keep the exclusion set non-empty
    // more often), so here we assert the structural facts rather than the
    // absolute level: ET genuinely fires, terminated ≤ eligible, and ET emits
    // a meaningful share of all cliques.
    let community = social_surrogate(53);
    let (total, s1) = count_maximal_cliques(&community, &SolverConfig::hbbmc_pp());
    assert!(s1.et_terminated > 0, "ET should fire on a community graph");
    assert!(s1.et_terminated <= s1.et_eligible);
    assert!(s1.et_ratio() > 0.0 && s1.et_ratio() <= 1.0);
    assert!(
        s1.et_cliques > 0 && s1.et_cliques <= total,
        "ET should directly emit some of the {} cliques (emitted {})",
        total,
        s1.et_cliques
    );

    let dense_random = erdos_renyi(1_200, 21_600, 5);
    let (_, s2) = count_maximal_cliques(&dense_random, &SolverConfig::hbbmc_pp());
    assert!(s2.et_ratio() >= 0.0 && s2.et_ratio() <= 1.0);
}

#[test]
fn all_algorithms_report_identical_counts_on_every_workload_family() {
    // Table II's precondition: every algorithm enumerates the same set.
    let graphs = vec![
        social_surrogate(61),
        erdos_renyi(600, 5_400, 9),
        barabasi_albert(600, 10, 9),
    ];
    let algos = [
        SolverConfig::hbbmc_pp(),
        SolverConfig::hbbmc_plus(),
        SolverConfig::r_ref(),
        SolverConfig::r_degen(),
        SolverConfig::r_rcd(),
        SolverConfig::r_fac(),
        SolverConfig::vbbmc_dgn(),
        SolverConfig::hbbmc_dgn(),
        SolverConfig::hbbmc_mdg(),
        SolverConfig::ref_pp(),
        SolverConfig::rcd_pp(),
        SolverConfig::fac_pp(),
    ];
    for g in &graphs {
        let reference = count_maximal_cliques(g, &algos[0]).0;
        for cfg in &algos[1..] {
            assert_eq!(count_maximal_cliques(g, cfg).0, reference);
        }
    }
}
