//! Relative-link integrity for the committed documentation.
//!
//! Walks `README.md`, `ARCHITECTURE.md`, `EXPERIMENTS.md` and everything
//! under `docs/`, extracts every markdown link (inline `[t](target)` and
//! reference definitions `[label]: target`), and fails on any *relative*
//! link whose target file — or `#anchor` within it — does not exist.
//! External `http(s):`/`mailto:` links are out of scope (no network in CI);
//! fenced code blocks and inline code spans are ignored.
//!
//! Std-only on purpose: the CI `docs` job runs exactly this test, so it
//! must not drag any dependency into the build.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The documents under link-integrity enforcement.
fn documents() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut docs = vec![
        root.join("README.md"),
        root.join("ARCHITECTURE.md"),
        root.join("EXPERIMENTS.md"),
    ];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                docs.push(path);
            }
        }
    }
    docs.sort();
    docs
}

/// Strips fenced code blocks and inline code spans so example links and
/// ASCII diagrams cannot register as real links.
fn prose_only(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            out.push('\n');
            continue;
        }
        if in_fence {
            out.push('\n');
            continue;
        }
        // Drop inline `code` spans (single-backtick only; good enough here).
        let mut in_code = false;
        for c in line.chars() {
            if c == '`' {
                in_code = !in_code;
            } else if !in_code {
                out.push(c);
            }
        }
        out.push('\n');
    }
    out
}

/// Extracts link targets: inline `](target)` and reference `[label]: target`.
fn link_targets(prose: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = prose.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = prose[i + 2..].find(')') {
                let inner = &prose[i + 2..i + 2 + end];
                // Markdown allows an optional title: [t](url "title").
                let url = inner.split_whitespace().next().unwrap_or("");
                targets.push(url.to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    for line in prose.lines() {
        let trimmed = line.trim_start();
        // Reference definition: [label]: target
        if let Some(rest) = trimmed.strip_prefix('[') {
            if let Some(close) = rest.find("]:") {
                let target = rest[close + 2..].trim();
                if !target.is_empty() {
                    targets.push(target.split_whitespace().next().unwrap().to_string());
                }
            }
        }
    }
    targets
}

/// GitHub-style heading slug: lowercase, alphanumerics kept, spaces and
/// hyphens become hyphens, everything else dropped.
fn slugify(heading: &str) -> String {
    let mut slug = String::new();
    for c in heading.trim().chars() {
        if c.is_alphanumeric() {
            slug.extend(c.to_lowercase());
        } else if c == ' ' || c == '-' {
            slug.push('-');
        }
    }
    slug
}

/// All heading anchors defined by a markdown file.
fn anchors(path: &Path) -> BTreeSet<String> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut out = BTreeSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            let heading = line.trim_start_matches('#');
            // Headings may contain inline code; backticks don't appear in
            // the slug.
            out.insert(slugify(&heading.replace('`', "")));
        }
    }
    out
}

#[test]
fn relative_links_resolve() {
    let mut failures = Vec::new();
    let docs = documents();
    assert!(docs.len() >= 4, "expected README + 2 root docs + docs/*");
    for doc in &docs {
        let text = std::fs::read_to_string(doc)
            .unwrap_or_else(|e| panic!("reading {}: {e}", doc.display()));
        let dir = doc.parent().expect("documents live in a directory");
        let rel_doc = doc.strip_prefix(workspace_root()).unwrap_or(doc);
        for target in link_targets(&prose_only(&text)) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (file_part, anchor) = match target.split_once('#') {
                Some((f, a)) => (f, Some(a)),
                None => (target.as_str(), None),
            };
            let resolved = if file_part.is_empty() {
                doc.clone() // same-file anchor
            } else {
                dir.join(file_part)
            };
            if !resolved.exists() {
                failures.push(format!(
                    "{}: dangling link '{target}' (no such file {})",
                    rel_doc.display(),
                    resolved.display()
                ));
                continue;
            }
            if let Some(anchor) = anchor {
                if resolved.extension().is_some_and(|e| e == "md")
                    && !anchors(&resolved).contains(anchor)
                {
                    failures.push(format!(
                        "{}: link '{target}' names a missing anchor '#{anchor}'",
                        rel_doc.display()
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "dangling documentation links:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn the_documents_under_enforcement_exist() {
    for doc in [
        "README.md",
        "ARCHITECTURE.md",
        "EXPERIMENTS.md",
        "docs/FORMAT.md",
    ] {
        assert!(
            workspace_root().join(doc).exists(),
            "{doc} is missing — it is part of the documented surface"
        );
    }
}

#[test]
fn slugs_match_github_conventions() {
    assert_eq!(slugify("Wire protocol"), "wire-protocol");
    assert_eq!(
        slugify("Performance notes: the allocation-free hot path"),
        "performance-notes-the-allocation-free-hot-path"
    );
    assert_eq!(
        slugify("The `.mcg` binary graph format (version 1)"),
        "the-mcg-binary-graph-format-version-1"
    );
}
