//! Cross-crate integration tests: generators → graph substrate → enumeration
//! frameworks → verification, exercised end-to-end the way a downstream user
//! would combine the crates.

use hbbmc::{
    count_maximal_cliques, enumerate, enumerate_collect, naive_maximal_cliques,
    par_count_maximal_cliques, verify_cliques, CollectReporter, CountReporter, MinSizeFilter,
    SolverConfig,
};
use mce_gen::{
    barabasi_albert, erdos_renyi, moon_moser, planted_communities, random_t_plex, turan_graph,
    PlantedConfig,
};
use mce_graph::{io, GraphStats, PlexCheck};

#[test]
fn all_named_presets_agree_on_a_realistic_community_graph() {
    let graph = planted_communities(&PlantedConfig {
        n: 300,
        communities: 45,
        min_size: 4,
        max_size: 9,
        intra_probability: 0.9,
        background_edges: 800,
        seed: 31,
    });
    let reference = count_maximal_cliques(&graph, &SolverConfig::r_degen()).0;
    assert!(
        reference > 100,
        "workload should be non-trivial, got {reference}"
    );
    for (name, config) in SolverConfig::named_presets() {
        if name == "BK" || name == "EBBMC" {
            // The unpruned variants are exponential-ish; keep them to the small tests.
            continue;
        }
        let (count, stats) = count_maximal_cliques(&graph, &config);
        assert_eq!(count, reference, "{name} disagrees");
        assert_eq!(stats.maximal_cliques, reference, "{name} stats disagree");
    }
}

#[test]
fn enumeration_output_is_verified_on_er_and_ba_graphs() {
    for graph in [erdos_renyi(300, 2_400, 5), barabasi_albert(300, 6, 5)] {
        let (cliques, stats) = enumerate_collect(&graph, &SolverConfig::hbbmc_pp());
        assert_eq!(cliques.len() as u64, stats.maximal_cliques);
        assert!(verify_cliques(&graph, &cliques).is_empty());
        // Every vertex is covered by at least one maximal clique.
        for v in graph.vertices() {
            assert!(cliques.iter().any(|c| c.contains(&v)));
        }
    }
}

#[test]
fn moon_moser_worst_case_counts() {
    for k in 1..=6usize {
        let g = moon_moser(k);
        let (count, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(count, 3u64.pow(k as u32), "Moon–Moser k={k}");
    }
    // Turán graph with unequal parts still matches the reference.
    let g = turan_graph(10, 3);
    let (got, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
    assert_eq!(got, naive_maximal_cliques(&g));
}

#[test]
fn io_round_trip_preserves_clique_structure() {
    let graph = planted_communities(&PlantedConfig {
        n: 200,
        communities: 30,
        min_size: 3,
        max_size: 7,
        intra_probability: 1.0,
        background_edges: 300,
        seed: 77,
    });
    let mut bytes = Vec::new();
    io::write_edge_list(&graph, &mut bytes).unwrap();
    let reloaded = io::read_edge_list(bytes.as_slice()).unwrap();
    // Vertex ids may be relabelled (isolated vertices are dropped by the edge
    // list format), but the number of maximal cliques containing an edge must
    // be preserved.
    let original = count_maximal_cliques(&graph, &SolverConfig::hbbmc_pp()).0;
    let isolated = graph.vertices().filter(|&v| graph.degree(v) == 0).count() as u64;
    let reloaded_count = count_maximal_cliques(&reloaded, &SolverConfig::hbbmc_pp()).0;
    assert_eq!(reloaded_count, original - isolated);
}

#[test]
fn t_plex_generators_trigger_early_termination() {
    // Kept at a modest size: the *reference* enumerator (no pivoting) explores
    // ~2^n branches on near-complete graphs, so n must stay small here; the
    // optimised frameworks handle much larger plexes (see the benches).
    for t in 1..=3usize {
        let g = random_t_plex(18, t, 9);
        assert!(PlexCheck::is_t_plex(&g, t));
        let (cliques, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(cliques, naive_maximal_cliques(&g));
        if t > 1 {
            assert!(
                stats.maximal_cliques > 1,
                "t={t} plexes have multiple maximal cliques"
            );
        }
    }
}

#[test]
fn reporters_compose_with_the_solver() {
    let graph = planted_communities(&PlantedConfig {
        n: 300,
        communities: 50,
        min_size: 4,
        max_size: 8,
        intra_probability: 0.95,
        background_edges: 500,
        seed: 13,
    });
    let mut counter = CountReporter::new();
    let stats = enumerate(&graph, &SolverConfig::hbbmc_pp(), &mut counter);
    assert_eq!(counter.count, stats.maximal_cliques);
    assert_eq!(counter.max_size, stats.max_clique_size);

    let mut filtered = MinSizeFilter::new(CollectReporter::new(), 4);
    enumerate(&graph, &SolverConfig::hbbmc_pp(), &mut filtered);
    let big = filtered.into_inner().into_sorted();
    assert!(big.iter().all(|c| c.len() >= 4));
    assert!(big.len() as u64 <= counter.count);
    assert!(
        !big.is_empty(),
        "the planted communities contain cliques of size >= 4"
    );
}

#[test]
fn parallel_and_sequential_agree_on_medium_graphs() {
    let graph = erdos_renyi(500, 5_000, 21);
    let (seq, _) = count_maximal_cliques(&graph, &SolverConfig::hbbmc_pp());
    for threads in [2usize, 4] {
        let (par, stats) = par_count_maximal_cliques(&graph, &SolverConfig::hbbmc_pp(), threads);
        assert_eq!(par, seq);
        assert_eq!(stats.maximal_cliques, seq);
    }
}

#[test]
fn graph_stats_summarise_the_surrogate_regime() {
    let graph = planted_communities(&PlantedConfig {
        n: 500,
        communities: 80,
        min_size: 5,
        max_size: 10,
        intra_probability: 0.95,
        background_edges: 1_000,
        seed: 3,
    });
    let stats = GraphStats::compute(&graph);
    assert_eq!(stats.n, 500);
    assert!(
        stats.degeneracy >= 4,
        "planted communities force a non-trivial core"
    );
    assert!(stats.tau <= stats.degeneracy);
    assert!(stats.rho > 1.0);
}
