#!/usr/bin/env bash
# Regenerates the golden corpus: the graphs themselves (deterministic given
# preset/n/seed) and the expected `mce enumerate` outputs the determinism
# gate diffs against. Run from the workspace root after an intentional
# output-format change, then review the diff before committing:
#
#   cargo build --release -p mce-cli
#   bash crates/cli/tests/corpus/regen.sh target/release/mce
#
# See EXPERIMENTS.md ("The golden corpus") for how the graphs were chosen.
set -euo pipefail

MCE="${1:-target/release/mce}"
DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

# --- the corpus graphs -----------------------------------------------------
"$MCE" gen planted    --n 60 --seed 5  --out "$DIR/planted-60.txt"
"$MCE" gen er-sparse  --n 48 --seed 11 --out "$DIR/er-sparse-48.txt"
"$MCE" gen moon-moser --n 12           --out "$DIR/moon-moser-12.txt"
"$MCE" gen ba         --n 40 --seed 3  --out "$DIR/ba-40.txt"
"$MCE" gen turan      --n 30           --out "$DIR/turan-30.col"

# --- golden outputs (single-threaded; the gate replays at 1/2/4 threads) ---
for stem in planted-60 er-sparse-48 moon-moser-12 ba-40; do
  "$MCE" enumerate "$DIR/$stem.txt" --output text  --out "$DIR/$stem.text.golden"
  "$MCE" enumerate "$DIR/$stem.txt" --output count --out "$DIR/$stem.count.golden"
done
"$MCE" enumerate "$DIR/turan-30.col" --output text  --out "$DIR/turan-30.text.golden"
"$MCE" enumerate "$DIR/turan-30.col" --output count --out "$DIR/turan-30.count.golden"

# The remaining sinks and a vertex-oriented preset, pinned on one graph each.
"$MCE" enumerate "$DIR/planted-60.txt" --output ndjson    --out "$DIR/planted-60.ndjson.golden"
"$MCE" enumerate "$DIR/planted-60.txt" --output histogram --out "$DIR/planted-60.histogram.golden"
"$MCE" enumerate "$DIR/moon-moser-12.txt" --output max    --out "$DIR/moon-moser-12.max.golden"
"$MCE" enumerate "$DIR/planted-60.txt" --preset RDegen --output text \
  --out "$DIR/planted-60.rdegen.text.golden"

# --- binary .mcg goldens ---------------------------------------------------
# The .mcg encoding is canonical (docs/FORMAT.md), so converting the same
# source must reproduce these files byte-for-byte; the gate replays
# `mce convert` and diffs, and enumerates the binary graphs against the same
# text goldens as their source graphs.
"$MCE" convert "$DIR/er-sparse-48.txt" "$DIR/er-sparse-48.mcg"
"$MCE" convert "$DIR/turan-30.col" "$DIR/turan-30.mcg"

# --- mce query goldens -----------------------------------------------------
# Anchored enumeration (vertex 27 sits in several planted communities) and
# the deterministic top-k ranking; the gate replays both at 1/2/4 threads
# under all three schedulers.
"$MCE" query "$DIR/planted-60.txt" --anchor 27 --output text \
  --out "$DIR/planted-60.anchor27.golden"
"$MCE" query "$DIR/planted-60.txt" --top 3 --out "$DIR/planted-60.top3.golden"

# Maximum clique via branch and bound: the canonical winner (lex-smallest
# sorted member list) must be byte-identical to the enumeration-riding
# `--output max` sink, on a dense text graph and on a binary .mcg one.
"$MCE" query "$DIR/planted-60.txt" --max-clique \
  --out "$DIR/planted-60.maxclique.golden"
"$MCE" query "$DIR/er-sparse-48.mcg" --max-clique \
  --out "$DIR/er-sparse-48.maxclique.golden"

echo "golden corpus regenerated under $DIR"
