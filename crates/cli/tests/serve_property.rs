//! Property tests for the serve layer: the byte-prefix determinism contract
//! under random queries and budgets, well-formed responses under mid-stream
//! cancellation, and registry eviction racing in-flight sessions.

use std::collections::BTreeSet;

use proptest::prelude::*;

use hbbmc::RootScheduler;
use mce_cli::serve::testkit::{load_request, TestClient, TestServer};
use mce_cli::serve::ServeConfig;

/// Renders a deduplicated edge list (self-loops dropped) as edge-list text.
fn edge_text(pairs: &[(u32, u32)]) -> String {
    let edges: BTreeSet<(u32, u32)> = pairs
        .iter()
        .filter(|(u, v)| u != v)
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .collect();
    let mut text = String::new();
    for (u, v) in edges {
        text.push_str(&format!("{u} {v}\n"));
    }
    text
}

/// The complete Moon–Moser-style multipartite graph K_{3,3,...}: every
/// vertex class has 3 members, classes fully interconnected — 3^k maximal
/// cliques, guaranteed branching work.
fn moon_moser_text(classes: u32) -> String {
    let n = 3 * classes;
    let mut text = String::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if u / 3 != v / 3 {
                text.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    text
}

fn scheduler(index: usize) -> RootScheduler {
    match index % 3 {
        0 => RootScheduler::Dynamic,
        1 => RootScheduler::Static,
        _ => RootScheduler::Splitting,
    }
}

/// Splits a response into (begin?, clique lines, terminal frame), panicking
/// on any malformed shape.
fn split_response(frames: &[String]) -> (Option<&String>, Vec<&String>, &String) {
    assert!(!frames.is_empty(), "empty response");
    let terminal = frames.last().expect("non-empty");
    assert!(
        terminal.starts_with(r#"{"type":"end""#) || terminal.starts_with(r#"{"type":"error""#),
        "terminal frame: {terminal}"
    );
    let mut begin = None;
    let mut cliques = Vec::new();
    for frame in &frames[..frames.len() - 1] {
        if frame.starts_with(r#"{"type":"begin""#) {
            assert!(begin.is_none(), "duplicate begin in {frames:?}");
            assert!(cliques.is_empty(), "begin after cliques in {frames:?}");
            begin = Some(frame);
        } else {
            assert!(frame.starts_with(r#"{"size":"#), "unexpected frame {frame}");
            cliques.push(frame);
        }
    }
    if terminal.starts_with(r#"{"type":"end""#) {
        assert!(begin.is_some(), "end without begin in {frames:?}");
    }
    (begin, cliques, terminal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A clique-limited response's clique bytes are an exact prefix of the
    /// unbudgeted response's, at every server thread count and scheduler.
    #[test]
    fn truncated_response_is_byte_prefix_of_full_stream(
        pairs in proptest::collection::vec((0u32..20, 0u32..20), 1..120),
        limit in 1u64..12,
        threads in 1usize..4,
        sched in 0usize..3,
        anchored in any::<bool>(),
    ) {
        let server = TestServer::start(ServeConfig {
            default_threads: threads,
            scheduler: scheduler(sched),
            ..ServeConfig::default()
        }).unwrap();
        let mut client = server.connect().unwrap();
        let mut text = edge_text(&pairs);
        if text.is_empty() {
            // All generated pairs were self-loops; fall back to one edge.
            text = "0 1\n".to_string();
        }
        client.roundtrip(&load_request("g", &text)).unwrap();
        let (mode, anchor) = if anchored {
            (r#","mode":"anchored","anchor":[0]"#, true)
        } else {
            ("", false)
        };
        let full = client
            .roundtrip(&format!(r#"{{"op":"query","graph":"g"{mode}}}"#))
            .unwrap();
        let truncated = client
            .roundtrip(&format!(
                r#"{{"op":"query","graph":"g","limit":{limit}{mode}}}"#
            ))
            .unwrap();
        // Anchored queries on a graph without vertex 0 are admission errors
        // on both sides; nothing to compare beyond equality.
        if anchor && full.len() == 1 && full[0].starts_with(r#"{"type":"error""#) {
            prop_assert_eq!(&full, &truncated);
            continue;
        }
        let (_, full_cliques, full_end) = split_response(&full);
        let (_, cut_cliques, cut_end) = split_response(&truncated);
        prop_assert!(full_end.contains(r#""outcome":"complete""#), "{}", full_end);
        prop_assert_eq!(
            &cut_cliques,
            &full_cliques[..cut_cliques.len()],
            "truncated stream is not a prefix"
        );
        if (full_cliques.len() as u64) > limit {
            prop_assert_eq!(cut_cliques.len() as u64, limit);
            prop_assert!(
                cut_end.contains(r#""outcome":"truncated (clique limit)""#),
                "{}", cut_end
            );
            prop_assert!(cut_end.contains(r#""budget_terminated":true"#), "{}", cut_end);
        } else {
            prop_assert_eq!(cut_cliques.len(), full_cliques.len());
            prop_assert!(cut_end.contains(r#""outcome":"complete""#), "{}", cut_end);
        }
    }

    /// Cancelling mid-stream still produces a well-formed response whose
    /// terminal frame is an `end`, and the connection stays usable.
    #[test]
    fn cancellation_yields_well_formed_terminal_frames(
        classes in 3u32..6,
        threads in 1usize..4,
        sched in 0usize..3,
        cancel_id in any::<bool>(),
    ) {
        let server = TestServer::start(ServeConfig {
            default_threads: threads,
            scheduler: scheduler(sched),
            ..ServeConfig::default()
        }).unwrap();
        let mut client = server.connect().unwrap();
        client
            .roundtrip(&load_request("mm", &moon_moser_text(classes)))
            .unwrap();
        // Pipeline the query and the cancel: the reader thread services the
        // cancel while the session streams.
        client.send_line(r#"{"op":"query","graph":"mm"}"#).unwrap();
        if cancel_id {
            client.send_line(r#"{"op":"cancel","id":1}"#).unwrap();
        } else {
            client.send_line(r#"{"op":"cancel"}"#).unwrap();
        }
        let frames = client.recv_response().unwrap();
        let (begin, cliques, end) = split_response(&frames);
        prop_assert!(begin.is_some());
        prop_assert!(end.starts_with(r#"{"type":"end""#), "{}", end);
        prop_assert!(
            end.contains(r#""outcome":"complete""#)
                || end.contains(r#""outcome":"truncated (cancelled)""#),
            "{}", end
        );
        // Whatever was streamed before the cancel landed is a prefix of the
        // deterministic stream: re-running completely must reproduce it.
        let full = client.roundtrip(r#"{"op":"query","graph":"mm"}"#).unwrap();
        let (_, full_cliques, full_end) = split_response(&full);
        prop_assert!(full_end.contains(r#""outcome":"complete""#), "{}", full_end);
        prop_assert_eq!(full_cliques.len() as u64, 3u64.pow(classes));
        prop_assert_eq!(&cliques, &full_cliques[..cliques.len()]);
        // The connection survived the cancel.
        prop_assert_eq!(
            client.roundtrip(r#"{"op":"ping"}"#).unwrap(),
            vec![r#"{"type":"pong"}"#.to_string()]
        );
    }

    /// Evicting and reloading a graph while other clients query it never
    /// panics the server or corrupts another session's response: every
    /// response stays well-formed and complete queries keep their clique
    /// count (in-flight sessions pin their generation).
    #[test]
    fn evict_during_queries_never_corrupts_sessions(
        classes in 3u32..5,
        queries_per_client in 1usize..4,
        sched in 0usize..3,
    ) {
        let server = TestServer::start(ServeConfig {
            default_threads: 2,
            scheduler: scheduler(sched),
            max_sessions: 8,
            ..ServeConfig::default()
        }).unwrap();
        let text = moon_moser_text(classes);
        let expected = 3u64.pow(classes);
        let mut admin = server.connect().unwrap();
        admin.roundtrip(&load_request("g", &text)).unwrap();

        let addr = server.addr();
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let text = text.clone();
                std::thread::spawn(move || -> std::io::Result<Vec<Vec<String>>> {
                    let mut client = TestClient::connect(addr)?;
                    let mut responses = Vec::new();
                    for i in 0..queries_per_client {
                        // Interleave our own reloads with queries so evicts
                        // from the admin connection race both.
                        if i % 2 == 1 {
                            client.roundtrip(&load_request("g", &text))?;
                        }
                        responses.push(client.roundtrip(r#"{"op":"query","graph":"g"}"#)?);
                    }
                    Ok(responses)
                })
            })
            .collect();
        for _ in 0..4 {
            admin.roundtrip(r#"{"op":"evict","name":"g"}"#).unwrap();
            admin.roundtrip(&load_request("g", &text)).unwrap();
        }
        for worker in workers {
            for frames in worker.join().expect("worker panicked").expect("worker io") {
                let (_, cliques, end) = split_response(&frames);
                if end.starts_with(r#"{"type":"error""#) {
                    // The query raced an evict window; that is the typed,
                    // documented failure mode.
                    prop_assert!(end.contains(r#""code":"unknown-graph""#), "{}", end);
                    prop_assert!(cliques.is_empty());
                } else {
                    prop_assert!(end.contains(r#""outcome":"complete""#), "{}", end);
                    prop_assert_eq!(cliques.len() as u64, expected);
                }
            }
        }
        // The server survived the whole exercise.
        prop_assert_eq!(
            admin.roundtrip(r#"{"op":"ping"}"#).unwrap(),
            vec![r#"{"type":"pong"}"#.to_string()]
        );
    }

    /// Deadline-expired sessions racing evict/reload: every response stays
    /// well-formed, truncated streams remain prefixes of the deterministic
    /// complete stream, and the generation counters echoed by `begin`
    /// frames stay monotone across one connection's query sequence.
    #[test]
    fn deadline_expiry_racing_evict_stays_well_formed(
        classes in 3u32..5,
        sched in 0usize..3,
        deadline_ms in 0u64..3,
        reloads in 1usize..5,
    ) {
        let server = TestServer::start(ServeConfig {
            default_threads: 2,
            scheduler: scheduler(sched),
            max_sessions: 8,
            ..ServeConfig::default()
        }).unwrap();
        let text = moon_moser_text(classes);
        let mut admin = server.connect().unwrap();
        admin.roundtrip(&load_request("g", &text)).unwrap();

        let addr = server.addr();
        let worker = std::thread::spawn(move || -> std::io::Result<Vec<Vec<String>>> {
            let mut client = TestClient::connect(addr)?;
            let mut responses = Vec::new();
            for _ in 0..4 {
                responses.push(client.roundtrip(&format!(
                    r#"{{"op":"query","graph":"g","deadline_ms":{deadline_ms}}}"#
                ))?);
            }
            Ok(responses)
        });
        // Evict/reload under the deadline-expired sessions: each reload
        // bumps the registry generation while sessions pin their own.
        for _ in 0..reloads {
            admin.roundtrip(r#"{"op":"evict","name":"g"}"#).unwrap();
            admin.roundtrip(&load_request("g", &text)).unwrap();
        }
        let responses = worker.join().expect("worker panicked").expect("worker io");

        // The reference complete stream (same graph text, so identical
        // bytes whatever generation served it).
        let full = admin.roundtrip(r#"{"op":"query","graph":"g"}"#).unwrap();
        let (_, full_cliques, full_end) = split_response(&full);
        prop_assert!(full_end.contains(r#""outcome":"complete""#), "{}", full_end);

        let mut last_generation = 0u64;
        for frames in responses {
            let (begin, cliques, end) = split_response(&frames);
            if end.starts_with(r#"{"type":"error""#) {
                prop_assert!(end.contains(r#""code":"unknown-graph""#), "{}", end);
                prop_assert!(cliques.is_empty());
                continue;
            }
            prop_assert!(
                end.contains(r#""outcome":"complete""#)
                    || end.contains(r#""outcome":"truncated (deadline exceeded)""#),
                "{}", end
            );
            prop_assert_eq!(&cliques, &full_cliques[..cliques.len()]);
            // `begin` echoes the generation that answered; sequential
            // queries on one connection can never observe it going back.
            let generation: u64 = begin
                .expect("end without begin")
                .rsplit(r#""generation":"#)
                .next()
                .and_then(|rest| rest.trim_end_matches('}').parse().ok())
                .expect("begin frame carries a generation");
            prop_assert!(
                generation >= last_generation,
                "generation regressed: {} after {}", generation, last_generation
            );
            last_generation = generation;
        }
    }
}
