//! Protocol fuzz tests for `mce serve`: malformed JSON, oversized lines,
//! half-closed connections, binary garbage and slow clients must each
//! produce the documented typed error frame (or be tolerated) without ever
//! panicking or hanging the server.

use std::time::{Duration, Instant};

use mce_cli::serve::testkit::{load_request, TestServer};
use mce_cli::serve::ServeConfig;

fn error_frame<'a>(frames: &'a [String], code: &str) -> &'a String {
    assert_eq!(frames.len(), 1, "expected a single error frame: {frames:?}");
    let frame = &frames[0];
    assert!(
        frame.starts_with(r#"{"type":"error""#) && frame.contains(&format!(r#""code":"{code}""#)),
        "expected a '{code}' error frame, got {frame}"
    );
    frame
}

#[test]
fn malformed_json_gets_bad_request_and_connection_survives() {
    let server = TestServer::start(ServeConfig::default()).unwrap();
    let mut client = server.connect().unwrap();
    for bad in [
        "not json at all",
        "{",
        r#"{"op"}"#,
        r#"{"op":42}"#,
        r#"[{"op":"ping"}]"#,
        r#"{"op":"ping"} trailing"#,
        r#"{"op":"query"}"#,
        r#"{"op":"load","name":"g"}"#,
        "\"just a string\"",
        "null",
        // Deeply nested input exercises the parser's depth cap instead of
        // the thread's stack.
        &format!("{}{}", "[".repeat(500), "]".repeat(500)),
    ] {
        let frames = client.roundtrip(bad).unwrap();
        error_frame(&frames, "bad-request");
    }
    // The same connection still serves real requests afterwards.
    assert_eq!(
        client.roundtrip(r#"{"op":"ping"}"#).unwrap(),
        vec![r#"{"type":"pong"}"#.to_string()]
    );
}

#[test]
fn invalid_utf8_gets_bad_request_and_connection_survives() {
    let server = TestServer::start(ServeConfig::default()).unwrap();
    let mut client = server.connect().unwrap();
    client.send_raw(b"\xff\xfe\x80garbage\n").unwrap();
    let frames = client.recv_response().unwrap();
    error_frame(&frames, "bad-request");
    assert_eq!(
        client.roundtrip(r#"{"op":"ping"}"#).unwrap(),
        vec![r#"{"type":"pong"}"#.to_string()]
    );
}

#[test]
fn oversized_line_gets_typed_error_then_close() {
    let server = TestServer::start(ServeConfig {
        max_line_bytes: 256,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = server.connect().unwrap();
    let huge = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(4096));
    client.send_line(&huge).unwrap();
    let frames = client.recv_response().unwrap();
    error_frame(&frames, "oversized-line");
    // The server closes the connection (no way to resynchronise mid-line)…
    assert_eq!(client.read_to_eof().unwrap(), Vec::<String>::new());
    // …but keeps serving new connections.
    let mut fresh = server.connect().unwrap();
    assert_eq!(
        fresh.roundtrip(r#"{"op":"ping"}"#).unwrap(),
        vec![r#"{"type":"pong"}"#.to_string()]
    );
}

#[test]
fn unknown_graph_names_get_typed_errors() {
    let server = TestServer::start(ServeConfig::default()).unwrap();
    let mut client = server.connect().unwrap();
    let frames = client
        .roundtrip(r#"{"op":"query","graph":"missing"}"#)
        .unwrap();
    error_frame(&frames, "unknown-graph");
    let frames = client
        .roundtrip(r#"{"op":"evict","name":"missing"}"#)
        .unwrap();
    error_frame(&frames, "unknown-graph");
    let frames = client
        .roundtrip(r#"{"op":"load","name":"g","path":"/no/such/file.txt"}"#)
        .unwrap();
    error_frame(&frames, "load-failed");
    let frames = client
        .roundtrip(&load_request("bad", "0 not-a-vertex\n"))
        .unwrap();
    error_frame(&frames, "load-failed");
}

#[test]
fn half_closed_mid_line_gets_bad_request_then_close() {
    let server = TestServer::start(ServeConfig::default()).unwrap();
    let mut client = server.connect().unwrap();
    // A request with no terminating newline, then EOF on the write side.
    client.send_raw(br#"{"op":"ping"#).unwrap();
    client.half_close().unwrap();
    let frames = client.recv_response().unwrap();
    let frame = error_frame(&frames, "bad-request");
    assert!(frame.contains("truncated request line"), "{frame}");
    assert_eq!(client.read_to_eof().unwrap(), Vec::<String>::new());
}

#[test]
fn half_close_at_line_boundary_is_a_clean_disconnect() {
    let server = TestServer::start(ServeConfig::default()).unwrap();
    let mut client = server.connect().unwrap();
    // A complete pipelined request followed by EOF still gets its response.
    client.send_line(r#"{"op":"ping"}"#).unwrap();
    client.half_close().unwrap();
    assert_eq!(
        client.read_to_eof().unwrap(),
        vec![r#"{"type":"pong"}"#.to_string()]
    );
}

#[test]
fn slow_client_never_blocks_accept() {
    let server = TestServer::start(ServeConfig::default()).unwrap();
    // A client that connects and never sends a byte…
    let _idle = server.connect().unwrap();
    // …must not delay service to later connections.
    let start = Instant::now();
    let mut active = server.connect().unwrap();
    assert_eq!(
        active.roundtrip(r#"{"op":"ping"}"#).unwrap(),
        vec![r#"{"type":"pong"}"#.to_string()]
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "second connection waited {:?} behind an idle client",
        start.elapsed()
    );
}

#[test]
fn quota_and_capacity_errors_are_typed() {
    let server = TestServer::start(ServeConfig {
        client_max_cliques: Some(1),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = server.connect().unwrap();
    // A diamond: two maximal cliques, so a 1-clique quota truncates.
    client
        .roundtrip(&load_request("dia", "0 1\n1 2\n0 2\n0 3\n2 3\n"))
        .unwrap();
    // First query burns the 1-clique quota (and is truncated by it)…
    let frames = client.roundtrip(r#"{"op":"query","graph":"dia"}"#).unwrap();
    let end = frames.last().unwrap();
    assert!(
        end.contains(r#""outcome":"truncated (clique limit)""#),
        "{end}"
    );
    // …and the second is rejected with a typed quota error.
    let frames = client.roundtrip(r#"{"op":"query","graph":"dia"}"#).unwrap();
    let frame = error_frame(&frames, "quota");
    assert!(frame.contains("clique quota exhausted"), "{frame}");
    // A fresh connection gets a fresh quota.
    let mut fresh = server.connect().unwrap();
    let frames = fresh.roundtrip(r#"{"op":"query","graph":"dia"}"#).unwrap();
    assert!(frames.last().unwrap().starts_with(r#"{"type":"end""#));
}

#[test]
fn metrics_report_garbage_and_sessions() {
    let server = TestServer::start(ServeConfig::default()).unwrap();
    let mut client = server.connect().unwrap();
    client.roundtrip("garbage").unwrap();
    client
        .roundtrip(&load_request("tri", "0 1\n1 2\n0 2\n"))
        .unwrap();
    client.roundtrip(r#"{"op":"query","graph":"tri"}"#).unwrap();
    let frames = client.roundtrip(r#"{"op":"metrics"}"#).unwrap();
    assert_eq!(frames.len(), 1);
    let frame = &frames[0];
    assert!(frame.starts_with(r#"{"type":"metrics""#), "{frame}");
    for needle in [
        r#""errors":1"#,
        r#""sessions_started":1"#,
        r#""sessions_completed":1"#,
        r#""cliques_emitted":1"#,
        r#""peak_sessions":1"#,
    ] {
        assert!(frame.contains(needle), "expected {needle} in {frame}");
    }
}
