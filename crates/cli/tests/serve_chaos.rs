//! Chaos suite for `mce serve`: replays real sessions while faults are
//! injected — a pool worker panicking mid-enumeration, clients disconnecting
//! mid-stream, half-dead clients dribbling bytes, idle sockets, admission
//! overload — and asserts the blast radius of every fault is exactly one
//! session: the server stays up, unaffected concurrent sessions' responses
//! stay byte-identical to their golden, the faulted session gets a typed
//! `internal-error` frame, and deadline-truncated responses remain exact
//! byte-prefixes of complete ones at every thread count × scheduler.

use std::time::Duration;

use hbbmc::RootScheduler;
use mce_cli::serve::testkit::{load_request, FaultSchedule, TestClient, TestServer};
use mce_cli::serve::ServeConfig;

/// K_{3,3,...} with `classes` fully interconnected 3-vertex classes:
/// 3^classes maximal cliques, guaranteed branching work on every worker.
fn moon_moser_text(classes: u32) -> String {
    let n = 3 * classes;
    let mut text = String::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if u / 3 != v / 3 {
                text.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    text
}

const SCHEDULERS: [RootScheduler; 3] = [
    RootScheduler::Dynamic,
    RootScheduler::Static,
    RootScheduler::Splitting,
];

/// On mismatch, writes both frame streams under `SERVE_REPLAY_DIR` (when
/// set — the CI chaos job uploads that directory as an artifact) and then
/// fails the assertion.
fn assert_same_bytes(actual: &[String], expected: &[String], tag: &str) {
    if actual == expected {
        return;
    }
    if let Ok(dir) = std::env::var("SERVE_REPLAY_DIR") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).ok();
        std::fs::write(dir.join(format!("{tag}.actual.txt")), actual.join("\n")).ok();
        std::fs::write(dir.join(format!("{tag}.expected.txt")), expected.join("\n")).ok();
    }
    let diverged = actual
        .iter()
        .zip(expected.iter())
        .position(|(a, e)| a != e)
        .unwrap_or(actual.len().min(expected.len()));
    panic!(
        "{tag}: response diverged from golden at frame {diverged} \
         (actual {} frames, expected {})",
        actual.len(),
        expected.len()
    );
}

/// Splits a response into (clique lines, terminal frame).
fn split(frames: &[String]) -> (Vec<&String>, &String) {
    let terminal = frames.last().expect("non-empty response");
    let cliques = frames[..frames.len() - 1]
        .iter()
        .filter(|f| f.starts_with(r#"{"size":"#))
        .collect();
    (cliques, terminal)
}

/// Drops the per-connection `"id":N` field so responses from different
/// positions in a connection's request sequence compare byte-identical.
fn without_ids(frames: &[String]) -> Vec<String> {
    frames
        .iter()
        .map(|frame| {
            let Some(start) = frame.find(r#""id":"#) else {
                return frame.clone();
            };
            let rest = &frame[start + 5..];
            let digits = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            let tail = rest[digits..].strip_prefix(',').unwrap_or(&rest[digits..]);
            format!("{}{}", &frame[..start], tail)
        })
        .collect()
}

/// The acceptance scenario: one session's pool worker panics
/// mid-enumeration and another client disconnects mid-stream, concurrently
/// with healthy sessions, at every thread count × scheduler. The healthy
/// sessions' bytes never change, the faulted session ends in a typed
/// `internal-error` frame on a connection that stays usable, and the server
/// keeps accepting.
#[test]
fn worker_panic_and_disconnect_leave_neighbours_byte_identical() {
    let text = moon_moser_text(4); // 81 maximal cliques
    for threads in [1usize, 2, 4] {
        for scheduler in SCHEDULERS {
            let server = TestServer::start(ServeConfig {
                default_threads: threads,
                scheduler,
                max_sessions: 8,
                chaos_panic_graph: Some("bad".to_string()),
                chaos_panic_after: 5,
                ..ServeConfig::default()
            })
            .expect("start server");

            let mut admin = server.connect().expect("connect admin");
            admin
                .roundtrip(&load_request("good", &text))
                .expect("load good");
            admin
                .roundtrip(&load_request("bad", &text))
                .expect("load bad");
            let golden = admin
                .roundtrip(r#"{"op":"query","graph":"good"}"#)
                .expect("golden query");
            let (golden_cliques, golden_end) = split(&golden);
            assert!(
                golden_end.contains(r#""outcome":"complete""#),
                "{golden_end}"
            );
            assert_eq!(golden_cliques.len(), 81);

            // Three concurrent clients: healthy, panicking, disconnecting.
            let addr = server.addr();
            let healthy = std::thread::spawn(move || -> std::io::Result<Vec<String>> {
                let mut c = TestClient::connect(addr)?;
                c.roundtrip(r#"{"op":"query","graph":"good"}"#)
            });
            let faulted =
                std::thread::spawn(move || -> std::io::Result<(Vec<String>, Vec<String>)> {
                    let mut c = TestClient::connect(addr)?;
                    let frames = c.roundtrip(r#"{"op":"query","graph":"bad"}"#)?;
                    let ping = c.roundtrip(r#"{"op":"ping"}"#)?;
                    Ok((frames, ping))
                });
            let vanished = std::thread::spawn(move || -> std::io::Result<()> {
                let mut c = TestClient::connect(addr)?;
                c.send_line(r#"{"op":"query","graph":"good"}"#)?;
                // Read a couple of frames, then vanish mid-stream.
                c.recv_line()?;
                c.recv_line()?;
                c.disconnect()
            });

            // The unaffected session is byte-identical to its golden.
            let frames = healthy.join().expect("healthy thread").expect("healthy io");
            assert_same_bytes(
                &frames,
                &golden,
                &format!("healthy.t{threads}.{scheduler:?}"),
            );

            // The faulted session: its prefix is deterministic, the terminal
            // frame is the typed internal error, and the connection survived.
            let (frames, ping) = faulted.join().expect("faulted thread").expect("faulted io");
            let (cliques, terminal) = split(&frames);
            assert_eq!(cliques.len(), 5, "chaos fuse emits exactly 5 cliques");
            assert_eq!(
                cliques,
                golden_cliques[..5].to_vec(),
                "faulted session's prefix diverged at {threads} threads / {scheduler:?}"
            );
            assert!(
                terminal.contains(r#""code":"internal-error""#),
                "terminal frame: {terminal}"
            );
            assert!(terminal.contains("injected chaos fault"), "{terminal}");
            assert_eq!(ping, vec![r#"{"type":"pong"}"#.to_string()]);

            vanished
                .join()
                .expect("vanished thread")
                .expect("vanished io");

            // The server is still accepting and still byte-deterministic.
            let mut after = server.connect().expect("connect after faults");
            let replay = after
                .roundtrip(r#"{"op":"query","graph":"good"}"#)
                .expect("replay");
            assert_same_bytes(
                &replay,
                &golden,
                &format!("replay.t{threads}.{scheduler:?}"),
            );
            let metrics = after.roundtrip(r#"{"op":"metrics"}"#).expect("metrics");
            assert!(
                metrics[0].contains(r#""panics_contained":1"#),
                "{}",
                metrics[0]
            );
        }
    }
}

/// A `deadline_ms` truncated response is an exact byte-prefix of the
/// complete response at 1/2/4 server threads under all three schedulers,
/// and carries the deadline outcome.
#[test]
fn deadline_truncated_response_is_byte_prefix_at_every_thread_count() {
    let text = moon_moser_text(4);
    for threads in [1usize, 2, 4] {
        for scheduler in SCHEDULERS {
            let server = TestServer::start(ServeConfig {
                default_threads: threads,
                scheduler,
                ..ServeConfig::default()
            })
            .expect("start server");
            let mut client = server.connect().expect("connect");
            client.roundtrip(&load_request("g", &text)).expect("load");
            let full = client
                .roundtrip(r#"{"op":"query","graph":"g"}"#)
                .expect("full");
            let (full_cliques, full_end) = split(&full);
            assert!(full_end.contains(r#""outcome":"complete""#), "{full_end}");

            // An already-expired deadline: the strictest truncation point.
            let cut = client
                .roundtrip(r#"{"op":"query","graph":"g","deadline_ms":0}"#)
                .expect("expired deadline");
            let (cut_cliques, cut_end) = split(&cut);
            assert!(
                cut_end.contains(r#""outcome":"truncated (deadline exceeded)""#),
                "{threads} threads / {scheduler:?}: {cut_end}"
            );
            assert!(cut_end.contains(r#""budget_terminated":true"#), "{cut_end}");
            assert_eq!(
                cut_cliques,
                full_cliques[..cut_cliques.len()].to_vec(),
                "deadline truncation is not a byte-prefix at {threads} threads / {scheduler:?}"
            );

            // A generous deadline changes nothing at all.
            let generous = client
                .roundtrip(r#"{"op":"query","graph":"g","deadline_ms":3600000}"#)
                .expect("generous deadline");
            assert_eq!(without_ids(&generous), without_ids(&full));
        }
    }
}

/// Regression for `--idle-timeout-secs`: an idle socket is closed, the
/// reap is counted, and the server keeps serving new connections.
#[test]
fn idle_connection_is_reaped_and_the_server_keeps_serving() {
    let server = TestServer::start(ServeConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    })
    .expect("start server");
    let mut idler = server.connect().expect("connect idler");
    // Activity resets the clock; afterwards the connection goes quiet.
    idler.roundtrip(r#"{"op":"ping"}"#).expect("ping");
    // The reaper closes the socket from the server side: EOF, not a hang.
    let rest = idler.read_to_eof().expect("read to eof");
    assert!(rest.is_empty(), "unexpected frames while idle: {rest:?}");

    let mut fresh = server.connect().expect("connect after reap");
    assert_eq!(
        fresh.roundtrip(r#"{"op":"ping"}"#).expect("ping"),
        vec![r#"{"type":"pong"}"#.to_string()]
    );
    let metrics = fresh.roundtrip(r#"{"op":"metrics"}"#).expect("metrics");
    assert!(
        metrics[0].contains(r#""connections_reaped":1"#),
        "{}",
        metrics[0]
    );
}

/// Graceful degradation: past the high-water mark sessions are admitted
/// with a pre-clamped step budget and their end frame says so. With the
/// mark at 0 every session degrades, deterministically.
#[test]
fn overloaded_admission_degrades_instead_of_queueing() {
    let text = moon_moser_text(5); // 243 maximal cliques
    let server = TestServer::start(ServeConfig {
        degrade_high_water: Some(0),
        degrade_max_steps: 10,
        ..ServeConfig::default()
    })
    .expect("start server");
    let mut client = server.connect().expect("connect");
    client.roundtrip(&load_request("g", &text)).expect("load");
    let frames = client
        .roundtrip(r#"{"op":"query","graph":"g"}"#)
        .expect("degraded query");
    let (cliques, end) = split(&frames);
    assert!(end.contains(r#""degraded":true"#), "{end}");
    assert!(
        end.contains(r#""outcome":"truncated (step limit)""#),
        "{end}"
    );
    assert!(cliques.len() < 243, "clamp did not bite: {}", cliques.len());

    // The degraded stream is still an exact prefix of the complete one
    // (served un-degraded here: the request's own budget wins when smaller).
    let server2 = TestServer::start(ServeConfig::default()).expect("start server2");
    let mut full_client = server2.connect().expect("connect2");
    full_client
        .roundtrip(&load_request("g", &text))
        .expect("load2");
    let full = full_client
        .roundtrip(r#"{"op":"query","graph":"g"}"#)
        .expect("full");
    let (full_cliques, _) = split(&full);
    assert_eq!(cliques, full_cliques[..cliques.len()].to_vec());

    let metrics = client.roundtrip(r#"{"op":"metrics"}"#).expect("metrics");
    assert!(
        metrics[0].contains(r#""sessions_degraded":1"#),
        "{}",
        metrics[0]
    );
}

/// A client that dribbles its request in 3-byte chunks with stalls gets a
/// response byte-identical to a well-behaved client's, and a client whose
/// connection is cut mid-request-line takes down nothing but itself.
#[test]
fn slow_and_cut_writers_do_not_perturb_responses() {
    let text = moon_moser_text(3);
    let server = TestServer::start(ServeConfig::default()).expect("start server");
    let mut smooth = server.connect().expect("connect smooth");
    smooth.roundtrip(&load_request("g", &text)).expect("load");
    let golden = smooth
        .roundtrip(r#"{"op":"query","graph":"g"}"#)
        .expect("golden");

    let mut dribbler = server.connect().expect("connect dribbler");
    let sent = dribbler
        .send_with_faults(
            b"{\"op\":\"query\",\"graph\":\"g\"}\n",
            &FaultSchedule {
                chunk: 3,
                stall: Duration::from_millis(2),
                cut_after: None,
            },
        )
        .expect("dribble request");
    assert!(sent);
    assert_eq!(dribbler.recv_response().expect("dribbled response"), golden);

    // Cut mid-request-line: the fault stays on that connection.
    let mut cut = server.connect().expect("connect cut");
    let sent = cut
        .send_with_faults(
            b"{\"op\":\"query\",\"graph\":\"g\"}\n",
            &FaultSchedule {
                chunk: 4,
                stall: Duration::ZERO,
                cut_after: Some(8),
            },
        )
        .expect("cut request");
    assert!(!sent, "the schedule cuts before the request completes");

    let replay = smooth
        .roundtrip(r#"{"op":"query","graph":"g"}"#)
        .expect("replay");
    assert_eq!(without_ids(&replay), without_ids(&golden));
}

/// `retry_with_backoff` rides out `capacity` rejections: with one session
/// slot held by a client that stopped draining its socket, the write
/// timeout reaps the stalled session and the retrying client's query lands.
#[test]
fn retry_with_backoff_rides_out_capacity_pressure() {
    let text = moon_moser_text(9); // ~20k clique lines: far beyond socket buffers
    let server = TestServer::start(ServeConfig {
        max_sessions: 1,
        write_timeout: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    })
    .expect("start server");
    let mut stuck = server.connect().expect("connect stuck");
    stuck.roundtrip(&load_request("g", &text)).expect("load");
    // Start a full enumeration and never read: the server's writes back up
    // until the write timeout cancels the session and frees the slot.
    stuck
        .send_line(r#"{"op":"query","graph":"g"}"#)
        .expect("send stuck query");
    std::thread::sleep(Duration::from_millis(100));

    let mut patient = server.connect().expect("connect patient");
    let frames = patient
        .retry_with_backoff(
            r#"{"op":"query","graph":"g","limit":1}"#,
            Duration::from_millis(100),
            20,
        )
        .expect("retry");
    let (cliques, end) = split(&frames);
    assert!(
        end.contains(r#""outcome":"truncated (clique limit)""#),
        "retry never landed: {end}"
    );
    assert_eq!(cliques.len(), 1);
}
