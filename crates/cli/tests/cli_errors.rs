//! Error-path contract of the `mce` binary: every reachable bad-input path
//! exits non-zero with a one-line stderr message — never a panic.

use std::process::Command;

fn mce(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mce"))
        .args(args)
        .output()
        .expect("spawning mce")
}

/// Asserts exit code, a non-empty single-line stderr, and no panic traceback.
fn assert_clean_failure(args: &[&str], expected_code: i32) {
    let out = mce(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(expected_code),
        "{args:?}: stderr = {stderr}"
    );
    assert!(!stderr.trim().is_empty(), "{args:?} must explain itself");
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    assert!(
        stderr.starts_with("mce: "),
        "{args:?} stderr must be prefixed: {stderr}"
    );
}

#[test]
fn no_arguments_is_usage() {
    assert_clean_failure(&[], 2);
}

#[test]
fn unknown_command_is_usage() {
    assert_clean_failure(&["launch-missiles"], 2);
}

#[test]
fn unknown_option_is_usage() {
    assert_clean_failure(&["enumerate", "--warp", "9"], 2);
}

#[test]
fn missing_file_is_runtime() {
    assert_clean_failure(&["enumerate", "/no/such/graph.txt"], 1);
    assert_clean_failure(&["stats", "/no/such/graph.txt"], 1);
}

#[test]
fn malformed_graph_is_runtime() {
    let dir = std::env::temp_dir().join("mce_cli_errors_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.txt");
    std::fs::write(&bad, "0 frog\n").unwrap();
    assert_clean_failure(&["enumerate", bad.to_str().unwrap()], 1);
    let bad_dimacs = dir.join("bad.col");
    std::fs::write(&bad_dimacs, "p edge 2 1\ne 0 1\n").unwrap();
    assert_clean_failure(&["enumerate", bad_dimacs.to_str().unwrap()], 1);
    std::fs::remove_file(&bad).ok();
    std::fs::remove_file(&bad_dimacs).ok();
}

#[test]
fn out_of_range_thread_count_is_usage() {
    assert_clean_failure(&["enumerate", "--threads", "0", "/dev/null"], 2);
    assert_clean_failure(&["enumerate", "--threads", "1025", "/dev/null"], 2);
    assert_clean_failure(&["enumerate", "--threads", "many", "/dev/null"], 2);
}

#[test]
fn unknown_enumerate_preset_is_usage() {
    assert_clean_failure(&["enumerate", "--preset", "HBBMC--", "/dev/null"], 2);
}

#[test]
fn unknown_gen_preset_is_usage() {
    assert_clean_failure(&["gen", "heawood"], 2);
    assert_clean_failure(&["gen"], 2);
}

#[test]
fn verify_requires_distinct_inputs() {
    assert_clean_failure(&["verify", "-"], 2);
    assert_clean_failure(&["verify"], 2);
}

#[test]
fn verify_detects_a_wrong_enumeration() {
    let dir = std::env::temp_dir().join("mce_cli_errors_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("tri.txt");
    let cliques = dir.join("tri.cliques");
    std::fs::write(&graph, "0 1\n1 2\n0 2\n").unwrap();
    std::fs::write(&cliques, "0 1\n").unwrap(); // non-maximal
    assert_clean_failure(
        &["verify", graph.to_str().unwrap(), cliques.to_str().unwrap()],
        1,
    );
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&cliques).ok();
}

#[test]
fn query_rejects_bad_flag_combinations() {
    // All of these fail during flag validation, before any input is read.
    assert_clean_failure(&["query", "-", "--count", "--top", "2"], 2);
    assert_clean_failure(&["query", "-", "--anchor", "x"], 2);
    assert_clean_failure(&["query", "-", "--kclique", "0"], 2);
    assert_clean_failure(&["query", "-", "--count", "--output", "text"], 2);
    assert_clean_failure(&["query", "-", "--top", "2", "--min-size", "3"], 2);
    assert_clean_failure(&["query", "-", "--limit", "abc"], 2);
}

#[test]
fn verify_step_budget_guards_naive_blowup() {
    let dir = std::env::temp_dir().join("mce_cli_errors_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("dense.txt");
    // A 12-clique: the naive reference run cannot finish inside 10 branch
    // steps, so verification must fail cleanly via the shared budget instead
    // of succeeding or hanging.
    let mut text = String::new();
    for u in 0..12u32 {
        for v in (u + 1)..12 {
            text.push_str(&format!("{u} {v}\n"));
        }
    }
    std::fs::write(&graph, text).unwrap();
    let cliques = dir.join("dense.cliques");
    std::fs::write(&cliques, "0 1 2 3 4 5 6 7 8 9 10 11\n").unwrap();
    assert_clean_failure(
        &[
            "verify",
            graph.to_str().unwrap(),
            cliques.to_str().unwrap(),
            "--max-steps",
            "10",
        ],
        1,
    );
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&cliques).ok();
}

/// The SIMD arm of the *other* architecture: always a valid backend name,
/// never runnable on this host, whatever the CPU.
fn foreign_kernel() -> &'static str {
    if cfg!(target_arch = "x86_64") {
        "neon"
    } else {
        "avx2"
    }
}

#[test]
fn unknown_kernel_backend_is_usage() {
    for cmd in ["enumerate", "query"] {
        let out = mce(&[cmd, "--kernel", "sse9", "/dev/null"]);
        assert_eq!(out.status.code(), Some(2), "{cmd}");
        assert_eq!(
            String::from_utf8_lossy(&out.stderr),
            "mce: unknown kernel backend 'sse9' (expected scalar, avx2 or neon)\n",
            "{cmd}"
        );
    }
    assert_clean_failure(&["serve", "--kernel", "sse9"], 2);
}

#[test]
fn unsupported_kernel_backend_is_usage() {
    let foreign = foreign_kernel();
    let out = mce(&["enumerate", "--kernel", foreign, "/dev/null"]);
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        String::from_utf8_lossy(&out.stderr),
        format!("mce: kernel backend '{foreign}' is not supported on this host\n")
    );
    assert_clean_failure(&["query", "--kernel", foreign, "/dev/null"], 2);
    assert_clean_failure(&["serve", "--kernel", foreign], 2);
}

#[test]
fn invalid_kernel_env_var_is_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_mce"))
        .args(["enumerate", "/dev/null"])
        .env("MCE_KERNEL", "quantum")
        .output()
        .expect("spawning mce");
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        String::from_utf8_lossy(&out.stderr),
        "mce: unknown kernel backend 'quantum' (expected scalar, avx2 or neon)\n"
    );
    // An unsupported (but valid) backend via the environment is the same
    // typed error as via the flag.
    let out = Command::new(env!("CARGO_BIN_EXE_mce"))
        .args(["query", "/dev/null", "--count"])
        .env("MCE_KERNEL", foreign_kernel())
        .output()
        .expect("spawning mce");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("is not supported on this host"));
}

#[test]
fn explicit_scalar_kernel_runs_and_is_reported() {
    let dir = std::env::temp_dir().join("mce_cli_errors_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("kernel_tri.txt");
    std::fs::write(&graph, "0 1\n1 2\n0 2\n").unwrap();
    let out = mce(&[
        "enumerate",
        graph.to_str().unwrap(),
        "--kernel",
        "scalar",
        "--stats",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("kernel backend: scalar"), "{stderr}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "cliques 1\nmax_size 3\navg_size 3.0000\n"
    );
    std::fs::remove_file(&graph).ok();
}

#[test]
fn help_paths_exit_zero() {
    for args in [
        vec!["help"],
        vec!["--help"],
        vec!["help", "enumerate"],
        vec!["enumerate", "--help"],
        vec!["gen", "--list"],
    ] {
        let out = mce(&args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        assert!(!out.stdout.is_empty(), "{args:?}");
    }
}
