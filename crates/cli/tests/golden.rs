//! The golden-corpus determinism gate.
//!
//! Replays `mce enumerate` over every checked-in corpus graph at 1/2/4
//! threads under all three root schedulers (including the subtree-splitting
//! one, whose donated tasks must resequence exactly) and asserts the output
//! is byte-identical to the committed golden file — "same cliques regardless
//! of parallelism" as an executable contract rather than a test-only
//! property. Regenerate the goldens with `crates/cli/tests/corpus/regen.sh`
//! after an intentional format change.

use std::path::{Path, PathBuf};
use std::process::Command;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn mce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mce"))
}

/// Runs `mce enumerate` on a corpus graph and returns stdout bytes.
fn enumerate(
    graph: &str,
    output: &str,
    preset: Option<&str>,
    threads: usize,
    scheduler: &str,
) -> Vec<u8> {
    let mut cmd = mce();
    cmd.arg("enumerate")
        .arg(corpus_dir().join(graph))
        .args(["--output", output])
        .args(["--threads", &threads.to_string()])
        .args(["--scheduler", scheduler]);
    if let Some(p) = preset {
        cmd.args(["--preset", p]);
    }
    let out = cmd.output().expect("spawning mce");
    assert!(
        out.status.success(),
        "mce enumerate {graph} --output {output} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// The replay matrix of one golden file.
fn replay(graph: &str, output: &str, preset: Option<&str>, golden: &str) {
    let expected = std::fs::read(corpus_dir().join(golden))
        .unwrap_or_else(|e| panic!("reading {golden}: {e}"));
    assert!(!expected.is_empty(), "{golden} must not be empty");
    for threads in [1usize, 2, 4] {
        for scheduler in ["dynamic", "static", "splitting"] {
            let got = enumerate(graph, output, preset, threads, scheduler);
            assert_eq!(
                got, expected,
                "{graph} --output {output} (preset {preset:?}) differs from {golden} \
                 at {threads} threads, {scheduler} scheduler"
            );
        }
    }
}

#[test]
fn text_outputs_match_goldens_across_threads_and_schedulers() {
    for stem in [
        "planted-60",
        "er-sparse-48",
        "moon-moser-12",
        "ba-40",
        "turan-30",
    ] {
        let graph = if stem == "turan-30" {
            format!("{stem}.col")
        } else {
            format!("{stem}.txt")
        };
        replay(&graph, "text", None, &format!("{stem}.text.golden"));
    }
}

#[test]
fn count_outputs_match_goldens_across_threads_and_schedulers() {
    for stem in [
        "planted-60",
        "er-sparse-48",
        "moon-moser-12",
        "ba-40",
        "turan-30",
    ] {
        let graph = if stem == "turan-30" {
            format!("{stem}.col")
        } else {
            format!("{stem}.txt")
        };
        replay(&graph, "count", None, &format!("{stem}.count.golden"));
    }
}

#[test]
fn remaining_sinks_match_goldens() {
    replay("planted-60.txt", "ndjson", None, "planted-60.ndjson.golden");
    replay(
        "planted-60.txt",
        "histogram",
        None,
        "planted-60.histogram.golden",
    );
    replay("moon-moser-12.txt", "max", None, "moon-moser-12.max.golden");
}

#[test]
fn vertex_oriented_preset_matches_golden() {
    replay(
        "planted-60.txt",
        "text",
        Some("RDegen"),
        "planted-60.rdegen.text.golden",
    );
}

/// Runs an arbitrary `mce` invocation on a corpus graph and returns stdout.
fn run_mce(args: &[&str]) -> Vec<u8> {
    let out = mce().args(args).output().expect("spawning mce");
    assert!(
        out.status.success(),
        "mce {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn query_anchored_golden_matches_across_threads_and_schedulers() {
    let graph = corpus_dir().join("planted-60.txt");
    let graph = graph.to_str().unwrap();
    let expected = std::fs::read(corpus_dir().join("planted-60.anchor27.golden")).unwrap();
    assert!(!expected.is_empty());
    for threads in [1usize, 2, 4] {
        for scheduler in ["dynamic", "static", "splitting"] {
            let got = run_mce(&[
                "query",
                graph,
                "--anchor",
                "27",
                "--output",
                "text",
                "--threads",
                &threads.to_string(),
                "--scheduler",
                scheduler,
            ]);
            assert_eq!(
                got, expected,
                "anchored query differs at {threads} threads, {scheduler}"
            );
        }
    }
}

#[test]
fn query_top_k_golden_matches_across_threads_and_schedulers() {
    let graph = corpus_dir().join("planted-60.txt");
    let graph = graph.to_str().unwrap();
    let expected = std::fs::read(corpus_dir().join("planted-60.top3.golden")).unwrap();
    assert_eq!(expected.iter().filter(|&&b| b == b'\n').count(), 3);
    for threads in [1usize, 2, 4] {
        for scheduler in ["dynamic", "static", "splitting"] {
            let got = run_mce(&[
                "query",
                graph,
                "--top",
                "3",
                "--threads",
                &threads.to_string(),
                "--scheduler",
                scheduler,
            ]);
            assert_eq!(
                got, expected,
                "top-3 query differs at {threads} threads, {scheduler}"
            );
        }
    }
}

#[test]
fn query_max_clique_goldens_match_across_threads_and_schedulers() {
    // The branch-and-bound search is sequential, but the winner is part of
    // the determinism contract: the canonical (lex-smallest sorted) maximum
    // clique must come back byte-identical at every thread count and
    // scheduler, on a dense text graph and on a binary .mcg one — and on
    // moon-moser-12 it must equal the enumeration-riding `--output max`
    // golden, which ranks ties by the same canonical rule.
    for (graph, golden) in [
        ("planted-60.txt", "planted-60.maxclique.golden"),
        ("er-sparse-48.mcg", "er-sparse-48.maxclique.golden"),
        ("moon-moser-12.txt", "moon-moser-12.max.golden"),
    ] {
        let path = corpus_dir().join(graph);
        let expected = std::fs::read(corpus_dir().join(golden))
            .unwrap_or_else(|e| panic!("reading {golden}: {e}"));
        assert!(!expected.is_empty(), "{golden} must not be empty");
        for threads in [1usize, 2, 4] {
            for scheduler in ["dynamic", "static", "splitting"] {
                let got = run_mce(&[
                    "query",
                    path.to_str().unwrap(),
                    "--max-clique",
                    "--threads",
                    &threads.to_string(),
                    "--scheduler",
                    scheduler,
                ]);
                assert_eq!(
                    got, expected,
                    "{graph} --max-clique differs from {golden} at {threads} threads, {scheduler}"
                );
            }
        }
    }
}

#[test]
fn query_count_matches_the_count_golden() {
    let graph = corpus_dir().join("planted-60.txt");
    let count_golden =
        std::fs::read_to_string(corpus_dir().join("planted-60.count.golden")).unwrap();
    let expected_count = count_golden
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("cliques "))
        .expect("count golden starts with 'cliques N'");
    let got = run_mce(&["query", graph.to_str().unwrap(), "--count"]);
    assert_eq!(
        String::from_utf8(got).unwrap(),
        format!("cliques {expected_count}\n")
    );
}

/// The golden-corpus prefix gate: `--limit N` must emit exactly the first N
/// lines of the committed full text golden, at 1/2/4 threads under every
/// scheduler, for both `enumerate` and `query`.
#[test]
fn limit_emits_the_exact_golden_prefix_across_threads_and_schedulers() {
    let graph = corpus_dir().join("planted-60.txt");
    let graph = graph.to_str().unwrap();
    let full = std::fs::read_to_string(corpus_dir().join("planted-60.text.golden")).unwrap();
    let prefix: String = full.lines().take(10).map(|l| format!("{l}\n")).collect();
    assert_eq!(prefix.lines().count(), 10, "corpus graph has > 10 cliques");
    for threads in [1usize, 2, 4] {
        for scheduler in ["dynamic", "static", "splitting"] {
            let threads_s = threads.to_string();
            let enumerate_args = [
                "enumerate",
                graph,
                "--output",
                "text",
                "--limit",
                "10",
                "--threads",
                &threads_s,
                "--scheduler",
                scheduler,
            ];
            let query_args = [
                "query",
                graph,
                "--limit",
                "10",
                "--threads",
                &threads_s,
                "--scheduler",
                scheduler,
            ];
            for args in [&enumerate_args[..], &query_args[..]] {
                let got = run_mce(args);
                assert_eq!(
                    String::from_utf8(got).unwrap(),
                    prefix,
                    "{args:?}: --limit 10 must be the exact 10-line golden prefix"
                );
            }
        }
    }
}

/// The kernel-backend determinism gate: pinning any backend this host can
/// run — scalar always, plus the native SIMD arm where present — must leave
/// every byte of the golden corpus untouched at 1/2/4 threads under all
/// three schedulers. Backends change throughput, never output.
#[test]
fn goldens_replay_identically_under_every_kernel_backend() {
    for stem in [
        "planted-60",
        "er-sparse-48",
        "moon-moser-12",
        "ba-40",
        "turan-30",
    ] {
        let graph = if stem == "turan-30" {
            format!("{stem}.col")
        } else {
            format!("{stem}.txt")
        };
        let golden = format!("{stem}.text.golden");
        let expected = std::fs::read(corpus_dir().join(&golden))
            .unwrap_or_else(|e| panic!("reading {golden}: {e}"));
        for backend in mce_graph::KernelBackend::available() {
            for threads in [1usize, 2, 4] {
                for scheduler in ["dynamic", "static", "splitting"] {
                    let out = mce()
                        .arg("enumerate")
                        .arg(corpus_dir().join(&graph))
                        .args(["--output", "text"])
                        .args(["--kernel", backend.name()])
                        .args(["--threads", &threads.to_string()])
                        .args(["--scheduler", scheduler])
                        .output()
                        .expect("spawning mce");
                    assert!(
                        out.status.success(),
                        "enumerate {graph} --kernel {backend} failed: {}",
                        String::from_utf8_lossy(&out.stderr)
                    );
                    assert_eq!(
                        out.stdout, expected,
                        "{graph} differs from {golden} under --kernel {backend} \
                         at {threads} threads, {scheduler} scheduler"
                    );
                }
            }
        }
    }
}

/// Same gate through the environment variable, on the query-layer goldens
/// (top-k with its pruning bounds, and the branch-and-bound maximum clique):
/// `MCE_KERNEL` pins the backend exactly like `--kernel` does.
#[test]
fn query_goldens_replay_under_env_pinned_backends() {
    let graph = corpus_dir().join("planted-60.txt");
    let graph = graph.to_str().unwrap();
    for (args, golden) in [
        (vec!["query", graph, "--top", "3"], "planted-60.top3.golden"),
        (
            vec!["query", graph, "--max-clique"],
            "planted-60.maxclique.golden",
        ),
    ] {
        let expected = std::fs::read(corpus_dir().join(golden)).unwrap();
        for backend in mce_graph::KernelBackend::available() {
            for threads in [1usize, 2, 4] {
                for scheduler in ["dynamic", "static", "splitting"] {
                    let out = mce()
                        .args(&args)
                        .args(["--threads", &threads.to_string()])
                        .args(["--scheduler", scheduler])
                        .env("MCE_KERNEL", backend.name())
                        .output()
                        .expect("spawning mce");
                    assert!(
                        out.status.success(),
                        "{args:?} with MCE_KERNEL={backend} failed: {}",
                        String::from_utf8_lossy(&out.stderr)
                    );
                    assert_eq!(
                        out.stdout, expected,
                        "{args:?} differs from {golden} under MCE_KERNEL={backend} \
                         at {threads} threads, {scheduler} scheduler"
                    );
                }
            }
        }
    }
}

#[test]
fn golden_text_outputs_pass_mce_verify() {
    for (graph, golden) in [
        ("planted-60.txt", "planted-60.text.golden"),
        ("moon-moser-12.txt", "moon-moser-12.text.golden"),
        ("ba-40.txt", "ba-40.text.golden"),
    ] {
        let out = mce()
            .arg("verify")
            .arg(corpus_dir().join(graph))
            .arg(corpus_dir().join(golden))
            .output()
            .expect("spawning mce");
        assert!(
            out.status.success(),
            "verify {graph} against {golden}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).starts_with("OK:"));
    }
}

#[test]
fn corpus_graphs_regenerate_from_their_presets() {
    // The graphs themselves are deterministic gen outputs; pin the exact
    // (preset, n, seed) triples so regen.sh and the checked-in files agree.
    for (args, file) in [
        (
            vec!["planted", "--n", "60", "--seed", "5"],
            "planted-60.txt",
        ),
        (
            vec!["er-sparse", "--n", "48", "--seed", "11"],
            "er-sparse-48.txt",
        ),
        (vec!["moon-moser", "--n", "12"], "moon-moser-12.txt"),
        (vec!["ba", "--n", "40", "--seed", "3"], "ba-40.txt"),
        (
            vec!["turan", "--n", "30", "--format", "dimacs"],
            "turan-30.col",
        ),
    ] {
        let out = mce().arg("gen").args(&args).output().expect("spawning mce");
        assert!(out.status.success());
        let expected = std::fs::read(corpus_dir().join(file)).unwrap();
        assert_eq!(out.stdout, expected, "{file} drifted from its generator");
    }
}

#[test]
fn mcg_corpus_goldens_replay_byte_for_byte() {
    // The .mcg encoding is canonical (docs/FORMAT.md): converting the same
    // source graph must reproduce the committed binary exactly, and the
    // binary graph must enumerate to the same golden as its text source.
    for (source, mcg, text_golden) in [
        (
            "er-sparse-48.txt",
            "er-sparse-48.mcg",
            "er-sparse-48.text.golden",
        ),
        ("turan-30.col", "turan-30.mcg", "turan-30.text.golden"),
    ] {
        let src = corpus_dir().join(source);
        let converted = run_mce(&["convert", src.to_str().unwrap(), "--to", "mcg"]);
        let expected =
            std::fs::read(corpus_dir().join(mcg)).unwrap_or_else(|e| panic!("reading {mcg}: {e}"));
        assert_eq!(
            converted, expected,
            "{mcg} drifted from `mce convert {source}`"
        );
        replay(mcg, "text", None, text_golden);
    }
}
