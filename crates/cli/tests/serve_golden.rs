//! Golden wire corpus for `mce serve`: replays a checked-in request script
//! against an in-process server and compares the full response byte stream
//! against a checked-in golden, at every server thread count × scheduler
//! combination. The serve determinism contract — truncated responses are
//! exact byte-prefixes of complete ones, frames carry no scheduling-
//! dependent fields — makes one golden file cover the whole matrix.
//!
//! On mismatch, set `SERVE_REPLAY_DIR` to a directory to get the actual
//! bytes written there (CI uploads them as an artifact). Regenerate the
//! golden with:
//!
//! ```text
//! cargo test -p mce-cli --test serve_golden -- --ignored regen
//! ```

use std::path::{Path, PathBuf};

use hbbmc::RootScheduler;
use mce_cli::serve::testkit::TestServer;
use mce_cli::serve::ServeConfig;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn serve_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/serve_corpus")
}

/// The request lines, with `$CORPUS` expanded.
fn requests() -> Vec<String> {
    let corpus = corpus_dir();
    let corpus = corpus.to_str().expect("corpus path is valid UTF-8");
    let script = std::fs::read_to_string(serve_corpus_dir().join("requests.txt"))
        .expect("read serve_corpus/requests.txt");
    script
        .lines()
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| line.replace("$CORPUS", corpus))
        .collect()
}

/// Replays the corpus against a fresh server and returns the concatenated
/// response frames (one per line, trailing newline).
fn replay(default_threads: usize, scheduler: RootScheduler) -> String {
    let server = TestServer::start(ServeConfig {
        default_threads,
        scheduler,
        ..ServeConfig::default()
    })
    .expect("start server");
    let mut client = server.connect().expect("connect");
    let mut out = String::new();
    for request in requests() {
        for frame in client.roundtrip(&request).expect("roundtrip") {
            out.push_str(&frame);
            out.push('\n');
        }
    }
    out
}

#[test]
fn corpus_is_byte_identical_across_threads_and_schedulers() {
    let golden_path = serve_corpus_dir().join("responses.golden");
    let golden = std::fs::read_to_string(&golden_path).expect(
        "read serve_corpus/responses.golden (regenerate with \
         `cargo test -p mce-cli --test serve_golden -- --ignored regen`)",
    );
    for threads in [1usize, 2, 4] {
        for scheduler in [
            RootScheduler::Dynamic,
            RootScheduler::Static,
            RootScheduler::Splitting,
        ] {
            let actual = replay(threads, scheduler);
            if actual != golden {
                if let Ok(dir) = std::env::var("SERVE_REPLAY_DIR") {
                    let dir = PathBuf::from(dir);
                    std::fs::create_dir_all(&dir).ok();
                    let name = format!("responses.actual.t{threads}.{scheduler:?}.txt");
                    std::fs::write(dir.join(name), &actual).ok();
                }
                // Locate the first differing line for a readable failure.
                let mismatch = golden
                    .lines()
                    .zip(actual.lines())
                    .enumerate()
                    .find(|(_, (g, a))| g != a);
                panic!(
                    "serve golden mismatch at {threads} threads / {scheduler:?}: \
                     first differing line {:?} (golden {:?} vs actual {:?}); \
                     golden {} lines, actual {} lines",
                    mismatch.map(|(i, _)| i + 1),
                    mismatch.map(|(_, (g, _))| g),
                    mismatch.map(|(_, (_, a))| a),
                    golden.lines().count(),
                    actual.lines().count(),
                );
            }
        }
    }
}

/// `cargo test -p mce-cli --test serve_golden -- --ignored regen`
#[test]
#[ignore = "regenerates the golden file"]
fn regen() {
    let actual = replay(1, RootScheduler::Dynamic);
    std::fs::write(serve_corpus_dir().join("responses.golden"), actual).expect("write golden");
}
