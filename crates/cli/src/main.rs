//! The `mce` binary: parse, dispatch, map errors to exit codes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = mce_cli::run(&args) {
        eprintln!("mce: {e}");
        std::process::exit(e.exit_code());
    }
}
