//! CLI error type: every failure path maps to a one-line stderr message and a
//! conventional exit code (no panic is reachable from bad user input).

use std::fmt;

use hbbmc::ConfigError;
use mce_graph::GraphError;

/// An error surfaced by the `mce` binary.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed (unknown flag, missing value,
    /// out-of-range number). Exit code 2, mirroring conventional CLIs.
    Usage(String),
    /// The invocation was well-formed but the work failed (unreadable file,
    /// parse error, verification mismatch). Exit code 1.
    Runtime(String),
}

impl CliError {
    /// Builds a usage error.
    pub fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    /// Builds a runtime error.
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError::Runtime(message.into())
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<GraphError> for CliError {
    fn from(e: GraphError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Usage(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Runtime(format!("i/o error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_convention() {
        assert_eq!(CliError::usage("x").exit_code(), 2);
        assert_eq!(CliError::runtime("x").exit_code(), 1);
    }

    #[test]
    fn conversions_preserve_messages() {
        let e: CliError = GraphError::TooManyVertices(7).into();
        assert!(e.to_string().contains('7'));
        assert_eq!(e.exit_code(), 1);
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: CliError = io.into();
        assert!(e.to_string().contains("gone"));
    }
}
