//! `mce enumerate` — the end-to-end enumeration driver.

use std::io::Write;

use hbbmc::{
    par_enumerate_ordered, CliqueLineFormat, CountReporter, EnumerationStats,
    MaximumCliqueReporter, MinSizeFilter, RootScheduler, SizeHistogramReporter, SolverConfig,
    WriterReporter,
};
use mce_graph::Graph;

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::io::{load_graph, open_sink, FormatArg};

/// Per-command help text.
pub const HELP: &str = "usage: mce enumerate [GRAPH] [options]

Enumerates every maximal clique of GRAPH (a file path, or stdin for '-' /
no argument). Output is streamed — buffering is bounded by a fixed
out-of-order cap, never the full result set — and is byte-identical for a
given graph regardless of --threads and --scheduler (enforced in CI by the
golden-corpus determinism gate).

options:
  --format edge-list|dimacs|auto   input format (default: auto)
  --preset NAME                    solver preset, e.g. HBBMC++ (default), RDegen
  --threads N                      worker threads, 1..=1024 (default: 1)
  --scheduler dynamic|static       root-branch scheduling policy (default: dynamic)
  --min-size K                     only report cliques with >= K vertices
  --output count|text|ndjson|histogram|max   output mode (default: count)
  --out FILE                       write to FILE instead of stdout
  --stats                          print run statistics to stderr";

const VALUE_OPTS: &[&str] = &[
    "--format",
    "--preset",
    "--threads",
    "--scheduler",
    "--min-size",
    "--output",
    "--out",
];
const BOOL_FLAGS: &[&str] = &["--stats"];

/// What `mce enumerate` writes to its sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutputMode {
    Count,
    Text,
    Ndjson,
    Histogram,
    Max,
}

fn parse_output_mode(raw: Option<&str>) -> Result<OutputMode, CliError> {
    match raw {
        None | Some("count") => Ok(OutputMode::Count),
        Some("text") => Ok(OutputMode::Text),
        Some("ndjson") => Ok(OutputMode::Ndjson),
        Some("histogram") => Ok(OutputMode::Histogram),
        Some("max") => Ok(OutputMode::Max),
        Some(other) => Err(CliError::usage(format!(
            "unknown output mode '{other}' (expected count, text, ndjson, histogram or max)"
        ))),
    }
}

fn parse_scheduler(raw: Option<&str>) -> Result<RootScheduler, CliError> {
    match raw {
        None | Some("dynamic") => Ok(RootScheduler::Dynamic),
        Some("static") => Ok(RootScheduler::Static),
        Some(other) => Err(CliError::usage(format!(
            "unknown scheduler '{other}' (expected dynamic or static)"
        ))),
    }
}

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, VALUE_OPTS, BOOL_FLAGS)?;
    p.reject_extra_positionals(1)?;
    let mode = parse_output_mode(p.value("--output"))?;
    let mut config = SolverConfig::preset_by_name(p.value("--preset").unwrap_or("HBBMC++"))?;
    config.scheduler = parse_scheduler(p.value("--scheduler"))?;
    let threads = p.usize_value("--threads", 1, 1, 1024)?;
    let min_size = p.usize_value("--min-size", 1, 1, usize::MAX)?;
    let format = FormatArg::parse(p.value("--format"))?;
    let graph = load_graph(p.positional(0), format)?;
    let mut sink = open_sink(p.value("--out"))?;

    let stats = emit(&graph, &config, threads, min_size, mode, &mut sink)?;
    sink.flush()?;
    if p.flag("--stats") {
        eprintln!("{stats}");
    }
    Ok(())
}

/// Enumerates `graph` into `sink` under the chosen output mode.
fn emit(
    graph: &Graph,
    config: &SolverConfig,
    threads: usize,
    min_size: usize,
    mode: OutputMode,
    sink: &mut (dyn Write + Send),
) -> Result<EnumerationStats, CliError> {
    match mode {
        OutputMode::Count => {
            let mut reporter = MinSizeFilter::new(CountReporter::new(), min_size);
            let stats = par_enumerate_ordered(graph, config, threads, &mut reporter)?;
            let counter = reporter.into_inner();
            writeln!(sink, "cliques {}", counter.count)?;
            writeln!(sink, "max_size {}", counter.max_size)?;
            writeln!(sink, "avg_size {:.4}", counter.average_size())?;
            Ok(stats)
        }
        OutputMode::Text | OutputMode::Ndjson => {
            let line_format = if mode == OutputMode::Text {
                CliqueLineFormat::Text
            } else {
                CliqueLineFormat::Ndjson
            };
            let writer = WriterReporter::new(&mut *sink, line_format);
            let mut reporter = MinSizeFilter::new(writer, min_size);
            let stats = par_enumerate_ordered(graph, config, threads, &mut reporter)?;
            reporter
                .into_inner()
                .finish()
                .map_err(|e| CliError::runtime(format!("writing output: {e}")))?;
            Ok(stats)
        }
        OutputMode::Histogram => {
            let mut reporter = MinSizeFilter::new(SizeHistogramReporter::new(), min_size);
            let stats = par_enumerate_ordered(graph, config, threads, &mut reporter)?;
            let histogram = reporter.into_inner();
            for (size, &count) in histogram.histogram.iter().enumerate() {
                if count > 0 {
                    writeln!(sink, "{size} {count}")?;
                }
            }
            Ok(stats)
        }
        OutputMode::Max => {
            let mut reporter = MinSizeFilter::new(MaximumCliqueReporter::new(), min_size);
            let stats = par_enumerate_ordered(graph, config, threads, &mut reporter)?;
            let best = reporter.into_inner().best;
            let line: Vec<String> = best.iter().map(|v| v.to_string()).collect();
            writeln!(sink, "{}", line.join(" "))?;
            Ok(stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_to_string(g: &Graph, threads: usize, min_size: usize, mode: OutputMode) -> String {
        let mut sink: Vec<u8> = Vec::new();
        let config = SolverConfig::hbbmc_pp();
        // Vec<u8> is Write + Send.
        let mut boxed: Box<dyn Write + Send> = Box::new(&mut sink);
        emit(g, &config, threads, min_size, mode, &mut *boxed).unwrap();
        drop(boxed);
        String::from_utf8(sink).unwrap()
    }

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn count_mode_reports_totals() {
        let out = emit_to_string(&diamond(), 1, 1, OutputMode::Count);
        assert_eq!(out, "cliques 2\nmax_size 3\navg_size 3.0000\n");
    }

    #[test]
    fn text_mode_lists_cliques_sorted() {
        let out = emit_to_string(&diamond(), 1, 1, OutputMode::Text);
        let mut lines: Vec<&str> = out.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["0 1 2", "0 2 3"]);
    }

    #[test]
    fn ndjson_mode_emits_one_object_per_line() {
        let out = emit_to_string(&diamond(), 2, 1, OutputMode::Ndjson);
        assert_eq!(out.lines().count(), 2);
        for line in out.lines() {
            assert!(line.starts_with("{\"size\":3,\"clique\":["), "{line}");
        }
    }

    #[test]
    fn histogram_mode_buckets_by_size() {
        let out = emit_to_string(&diamond(), 1, 1, OutputMode::Histogram);
        assert_eq!(out, "3 2\n");
    }

    #[test]
    fn max_mode_prints_one_clique() {
        let out = emit_to_string(&diamond(), 1, 1, OutputMode::Max);
        let members: Vec<&str> = out.trim().split(' ').collect();
        assert_eq!(members.len(), 3);
    }

    #[test]
    fn min_size_filters_output() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap();
        let out = emit_to_string(&g, 1, 3, OutputMode::Count);
        assert!(out.starts_with("cliques 1\n"), "{out}");
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let g = diamond();
        let baseline = emit_to_string(&g, 1, 1, OutputMode::Text);
        for threads in [2, 4] {
            assert_eq!(emit_to_string(&g, threads, 1, OutputMode::Text), baseline);
        }
    }

    #[test]
    fn parse_rejects_unknown_mode_and_scheduler() {
        assert!(parse_output_mode(Some("xml")).is_err());
        assert!(parse_scheduler(Some("magic")).is_err());
        assert_eq!(parse_output_mode(None).unwrap(), OutputMode::Count);
        assert_eq!(parse_scheduler(None).unwrap(), RootScheduler::Dynamic);
    }
}
