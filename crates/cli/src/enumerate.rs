//! `mce enumerate` — the end-to-end enumeration driver.

use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use hbbmc::{
    par_enumerate_ordered_budgeted, Budget, CliqueLineFormat, CountReporter, EnumerationStats,
    MaximumCliqueReporter, MinSizeFilter, Outcome, ProgressCounters, RootScheduler,
    SizeHistogramReporter, SolverConfig, WriterReporter,
};
use mce_graph::Graph;

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::io::{load_graph, open_sink, FormatArg};

/// Per-command help text.
pub const HELP: &str = "usage: mce enumerate [GRAPH] [options]

Enumerates every maximal clique of GRAPH (a file path, or stdin for '-' /
no argument). Output is streamed — under the dynamic/static schedulers
buffering is bounded by a fixed out-of-order cap, never the full result
set; the splitting scheduler keeps buffering near the stream head instead
of enforcing the hard cap — and is byte-identical for a given graph
regardless of --threads and --scheduler (enforced in CI by the
golden-corpus determinism gate).

options:
  --format edge-list|dimacs|mcg|auto  input format (default: auto)
  --preset NAME                    solver preset, e.g. HBBMC++ (default), RDegen
  --threads N                      worker threads, 1..=1024 (default: 1)
  --scheduler dynamic|static|splitting   root-branch scheduling policy
                                   (default: dynamic; splitting donates
                                   sub-branches mid-recursion on skewed inputs)
  --min-size K                     only report cliques with >= K vertices
  --limit N                        stop after the first N cliques of the
                                   deterministic stream (exit 0; a truncated
                                   outcome is noted on --stats). Applied
                                   before --min-size filtering.
  --max-steps N                    abort after N branch steps summed across
                                   all workers; the emitted stream is an
                                   exact prefix of the unbudgeted one
  --deadline-ms N                  abort after N milliseconds of wall-clock
                                   time; like --max-steps, the emitted
                                   stream stays an exact prefix
  --kernel scalar|avx2|neon        word-kernel backend (default: the widest
                                   arm the CPU supports; the MCE_KERNEL
                                   environment variable sets the same
                                   override). Requesting an arm this host
                                   cannot run is a usage error. Never
                                   changes output — only throughput
  --output count|text|ndjson|histogram|max   output mode (default: count)
  --out FILE                       write to FILE instead of stdout
  --stats                          print run statistics (and the outcome:
                                   complete or truncated) to stderr
  --progress                       print a periodic one-line rate report to
                                   stderr (roots done, cliques found, cliques/s)";

const VALUE_OPTS: &[&str] = &[
    "--format",
    "--preset",
    "--threads",
    "--scheduler",
    "--min-size",
    "--limit",
    "--max-steps",
    "--deadline-ms",
    "--kernel",
    "--output",
    "--out",
];
const BOOL_FLAGS: &[&str] = &["--stats", "--progress"];

/// What `mce enumerate` writes to its sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutputMode {
    Count,
    Text,
    Ndjson,
    Histogram,
    Max,
}

fn parse_output_mode(raw: Option<&str>) -> Result<OutputMode, CliError> {
    match raw {
        None | Some("count") => Ok(OutputMode::Count),
        Some("text") => Ok(OutputMode::Text),
        Some("ndjson") => Ok(OutputMode::Ndjson),
        Some("histogram") => Ok(OutputMode::Histogram),
        Some("max") => Ok(OutputMode::Max),
        Some(other) => Err(CliError::usage(format!(
            "unknown output mode '{other}' (expected count, text, ndjson, histogram or max)"
        ))),
    }
}

fn parse_scheduler(raw: Option<&str>) -> Result<RootScheduler, CliError> {
    match raw {
        None | Some("dynamic") => Ok(RootScheduler::Dynamic),
        Some("static") => Ok(RootScheduler::Static),
        Some("splitting") => Ok(RootScheduler::Splitting),
        Some(other) => Err(CliError::usage(format!(
            "unknown scheduler '{other}' (expected dynamic, static or splitting)"
        ))),
    }
}

/// Interval between `--progress` reports.
const PROGRESS_INTERVAL: Duration = Duration::from_millis(500);

/// Runs `emit` with a monitor thread that prints a one-line rate report to
/// stderr every [`PROGRESS_INTERVAL`] until the enumeration finishes. The
/// sink output is untouched — the counters are observational only.
fn emit_with_progress(
    graph: &Graph,
    config: &SolverConfig,
    threads: usize,
    budget: &Budget,
    min_size: usize,
    mode: OutputMode,
    sink: &mut (dyn Write + Send),
) -> Result<(EnumerationStats, Outcome), CliError> {
    /// Signals the monitor to exit when dropped — including when `emit`
    /// panics, so the scope's implicit join cannot hang on a monitor that
    /// would otherwise wait forever.
    struct SignalDone<'a> {
        done: &'a Mutex<bool>,
        finished: &'a Condvar,
    }
    impl Drop for SignalDone<'_> {
        fn drop(&mut self) {
            let mut flag = self
                .done
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            *flag = true;
            self.finished.notify_all();
        }
    }

    let progress = ProgressCounters::new();
    let done = Mutex::new(false);
    let finished = Condvar::new();
    std::thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            let start = Instant::now();
            let mut flag = done.lock().expect("progress flag poisoned");
            loop {
                let (next, _) = finished
                    .wait_timeout(flag, PROGRESS_INTERVAL)
                    .expect("progress flag poisoned");
                flag = next;
                if *flag {
                    return;
                }
                let roots_done = progress.roots_done.load(Ordering::Relaxed);
                let total = progress.total_roots.load(Ordering::Relaxed);
                let cliques = progress.cliques_found.load(Ordering::Relaxed);
                let splits = progress.splits.load(Ordering::Relaxed);
                let rate = cliques as f64 / start.elapsed().as_secs_f64().max(1e-9);
                eprintln!(
                    "progress: roots {roots_done}/{total}, cliques {cliques} ({rate:.0}/s), \
                     splits {splits}"
                );
            }
        });
        let result = {
            let _signal = SignalDone {
                done: &done,
                finished: &finished,
            };
            emit(
                graph,
                config,
                threads,
                budget,
                min_size,
                mode,
                Some(&progress),
                sink,
            )
        };
        monitor.join().expect("progress monitor panicked");
        result
    })
}

/// Builds the session [`Budget`] from `--limit` / `--max-steps` /
/// `--deadline-ms`. Shared with `mce query`, which accepts the same flags.
pub(crate) fn parse_budget(p: &ParsedArgs) -> Result<Budget, CliError> {
    Ok(Budget {
        max_cliques: p.opt_u64("--limit")?,
        max_steps: p.opt_u64("--max-steps")?,
        cancel: None,
        deadline: p.opt_u64("--deadline-ms")?.map(Duration::from_millis),
    })
}

/// Prints the run statistics (and outcome) to stderr for `--stats`.
pub(crate) fn print_stats(stats: &EnumerationStats, outcome: Outcome) {
    eprintln!("{stats}");
    eprintln!("kernel backend: {}", crate::kernel::active_name());
    eprintln!("outcome: {outcome}");
}

/// Writes the three-line count summary shared by `enumerate --output count`
/// and `query --output count` — one definition so the formats cannot drift.
pub(crate) fn write_count_summary(
    sink: &mut (dyn Write + Send),
    counter: &CountReporter,
) -> Result<(), CliError> {
    writeln!(sink, "cliques {}", counter.count)?;
    writeln!(sink, "max_size {}", counter.max_size)?;
    writeln!(sink, "avg_size {:.4}", counter.average_size())?;
    Ok(())
}

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, VALUE_OPTS, BOOL_FLAGS)?;
    p.reject_extra_positionals(1)?;
    crate::kernel::init(p.value("--kernel"))?;
    let mode = parse_output_mode(p.value("--output"))?;
    let mut config = SolverConfig::preset_by_name(p.value("--preset").unwrap_or("HBBMC++"))?;
    config.scheduler = parse_scheduler(p.value("--scheduler"))?;
    let threads = p.usize_value("--threads", 1, 1, 1024)?;
    let min_size = p.usize_value("--min-size", 1, 1, usize::MAX)?;
    let budget = parse_budget(&p)?;
    let format = FormatArg::parse(p.value("--format"))?;
    let graph = load_graph(p.positional(0), format)?;
    let mut sink = open_sink(p.value("--out"))?;

    let (stats, outcome) = if p.flag("--progress") {
        emit_with_progress(&graph, &config, threads, &budget, min_size, mode, &mut sink)?
    } else {
        emit(
            &graph, &config, threads, &budget, min_size, mode, None, &mut sink,
        )?
    };
    sink.flush()?;
    if p.flag("--stats") {
        print_stats(&stats, outcome);
    }
    Ok(())
}

/// [`par_enumerate_ordered_budgeted`], optionally observed by progress
/// counters.
fn enumerate_ordered<R: hbbmc::CliqueReporter + Send>(
    graph: &Graph,
    config: &SolverConfig,
    threads: usize,
    budget: &Budget,
    reporter: &mut R,
    progress: Option<&ProgressCounters>,
) -> Result<(EnumerationStats, Outcome), CliError> {
    Ok(par_enumerate_ordered_budgeted(
        graph, config, threads, budget, progress, reporter,
    )?)
}

/// Enumerates `graph` into `sink` under the chosen output mode.
#[allow(clippy::too_many_arguments)]
fn emit(
    graph: &Graph,
    config: &SolverConfig,
    threads: usize,
    budget: &Budget,
    min_size: usize,
    mode: OutputMode,
    progress: Option<&ProgressCounters>,
    sink: &mut (dyn Write + Send),
) -> Result<(EnumerationStats, Outcome), CliError> {
    match mode {
        OutputMode::Count => {
            let mut reporter = MinSizeFilter::new(CountReporter::new(), min_size);
            let run = enumerate_ordered(graph, config, threads, budget, &mut reporter, progress)?;
            write_count_summary(sink, &reporter.into_inner())?;
            Ok(run)
        }
        OutputMode::Text | OutputMode::Ndjson => {
            let line_format = if mode == OutputMode::Text {
                CliqueLineFormat::Text
            } else {
                CliqueLineFormat::Ndjson
            };
            let writer = WriterReporter::new(&mut *sink, line_format);
            let mut reporter = MinSizeFilter::new(writer, min_size);
            let run = enumerate_ordered(graph, config, threads, budget, &mut reporter, progress)?;
            reporter
                .into_inner()
                .finish()
                .map_err(|e| CliError::runtime(format!("writing output: {e}")))?;
            Ok(run)
        }
        OutputMode::Histogram => {
            let mut reporter = MinSizeFilter::new(SizeHistogramReporter::new(), min_size);
            let run = enumerate_ordered(graph, config, threads, budget, &mut reporter, progress)?;
            let histogram = reporter.into_inner();
            for (size, &count) in histogram.histogram.iter().enumerate() {
                if count > 0 {
                    writeln!(sink, "{size} {count}")?;
                }
            }
            Ok(run)
        }
        OutputMode::Max => {
            let mut reporter = MinSizeFilter::new(MaximumCliqueReporter::new(), min_size);
            let run = enumerate_ordered(graph, config, threads, budget, &mut reporter, progress)?;
            let best = reporter.into_inner().best;
            let line: Vec<String> = best.iter().map(|v| v.to_string()).collect();
            writeln!(sink, "{}", line.join(" "))?;
            Ok(run)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_with_config(
        g: &Graph,
        config: &SolverConfig,
        threads: usize,
        min_size: usize,
        mode: OutputMode,
    ) -> String {
        let mut sink: Vec<u8> = Vec::new();
        // Vec<u8> is Write + Send.
        let mut boxed: Box<dyn Write + Send> = Box::new(&mut sink);
        emit(
            g,
            config,
            threads,
            &Budget::unlimited(),
            min_size,
            mode,
            None,
            &mut *boxed,
        )
        .unwrap();
        drop(boxed);
        String::from_utf8(sink).unwrap()
    }

    fn emit_to_string(g: &Graph, threads: usize, min_size: usize, mode: OutputMode) -> String {
        emit_with_config(g, &SolverConfig::hbbmc_pp(), threads, min_size, mode)
    }

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn count_mode_reports_totals() {
        let out = emit_to_string(&diamond(), 1, 1, OutputMode::Count);
        assert_eq!(out, "cliques 2\nmax_size 3\navg_size 3.0000\n");
    }

    #[test]
    fn text_mode_lists_cliques_sorted() {
        let out = emit_to_string(&diamond(), 1, 1, OutputMode::Text);
        let mut lines: Vec<&str> = out.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["0 1 2", "0 2 3"]);
    }

    #[test]
    fn ndjson_mode_emits_one_object_per_line() {
        let out = emit_to_string(&diamond(), 2, 1, OutputMode::Ndjson);
        assert_eq!(out.lines().count(), 2);
        for line in out.lines() {
            assert!(line.starts_with("{\"size\":3,\"clique\":["), "{line}");
        }
    }

    #[test]
    fn histogram_mode_buckets_by_size() {
        let out = emit_to_string(&diamond(), 1, 1, OutputMode::Histogram);
        assert_eq!(out, "3 2\n");
    }

    #[test]
    fn max_mode_prints_one_clique() {
        let out = emit_to_string(&diamond(), 1, 1, OutputMode::Max);
        let members: Vec<&str> = out.trim().split(' ').collect();
        assert_eq!(members.len(), 3);
    }

    #[test]
    fn min_size_filters_output() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap();
        let out = emit_to_string(&g, 1, 3, OutputMode::Count);
        assert!(out.starts_with("cliques 1\n"), "{out}");
    }

    #[test]
    fn output_is_identical_across_thread_counts_and_schedulers() {
        let g = diamond();
        let baseline = emit_to_string(&g, 1, 1, OutputMode::Text);
        for scheduler in [
            RootScheduler::Dynamic,
            RootScheduler::Static,
            RootScheduler::Splitting,
        ] {
            let mut config = SolverConfig::hbbmc_pp();
            config.scheduler = scheduler;
            for threads in [2, 4] {
                assert_eq!(
                    emit_with_config(&g, &config, threads, 1, OutputMode::Text),
                    baseline,
                    "{scheduler:?} x{threads}"
                );
            }
        }
    }

    #[test]
    fn progress_reporting_does_not_perturb_sink_output() {
        let g = diamond();
        let baseline = emit_to_string(&g, 2, 1, OutputMode::Count);
        let mut sink: Vec<u8> = Vec::new();
        let mut config = SolverConfig::hbbmc_pp();
        config.scheduler = RootScheduler::Splitting;
        let mut boxed: Box<dyn Write + Send> = Box::new(&mut sink);
        emit_with_progress(
            &g,
            &config,
            2,
            &Budget::unlimited(),
            1,
            OutputMode::Count,
            &mut *boxed,
        )
        .unwrap();
        drop(boxed);
        assert_eq!(String::from_utf8(sink).unwrap(), baseline);
    }

    #[test]
    fn limit_truncates_text_output_to_a_prefix() {
        let g = diamond();
        let full = emit_to_string(&g, 1, 1, OutputMode::Text);
        let mut sink: Vec<u8> = Vec::new();
        let mut boxed: Box<dyn Write + Send> = Box::new(&mut sink);
        let (_, outcome) = emit(
            &g,
            &SolverConfig::hbbmc_pp(),
            1,
            &Budget::cliques(1),
            1,
            OutputMode::Text,
            None,
            &mut *boxed,
        )
        .unwrap();
        drop(boxed);
        let got = String::from_utf8(sink).unwrap();
        assert_eq!(got, full.lines().next().unwrap().to_owned() + "\n");
        assert!(outcome.is_truncated());
    }

    #[test]
    fn parse_rejects_unknown_mode_and_scheduler() {
        assert!(parse_output_mode(Some("xml")).is_err());
        assert!(parse_scheduler(Some("magic")).is_err());
        assert_eq!(parse_output_mode(None).unwrap(), OutputMode::Count);
        assert_eq!(parse_scheduler(None).unwrap(), RootScheduler::Dynamic);
        assert_eq!(
            parse_scheduler(Some("splitting")).unwrap(),
            RootScheduler::Splitting
        );
    }
}
