//! `mce convert` — translate between the edge-list, DIMACS and `.mcg` formats.

use mce_graph::io::{read_graph_bytes, write_graph};

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::io::{open_sink, read_input, FormatArg};

/// Per-command help text.
pub const HELP: &str = "usage: mce convert [IN [OUT]] [options]

Reads a graph from IN (file or stdin) and writes it to OUT (file or stdout)
in the target format. Formats default to file extensions (.col/.clq/.dimacs
are DIMACS, .mcg is the binary CSR container, anything else is an edge
list); the input falls back to content sniffing (the .mcg magic is detected
first), the output to edge-list. Note that the edge-list format cannot
represent isolated vertices — converting DIMACS/.mcg -> edge-list drops
them; .mcg and DIMACS both preserve the exact vertex count.

options:
  --from edge-list|dimacs|mcg|auto   input format (default: auto)
  --to edge-list|dimacs|mcg|auto     output format (default: by OUT extension)";

const VALUE_OPTS: &[&str] = &["--from", "--to"];
const BOOL_FLAGS: &[&str] = &[];

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, VALUE_OPTS, BOOL_FLAGS)?;
    p.reject_extra_positionals(2)?;
    let from = FormatArg::parse(p.value("--from"))?;
    let to = FormatArg::parse(p.value("--to"))?;

    let (name, content) = read_input(p.positional(0))?;
    let graph = read_graph_bytes(&content, from.resolve(&name, &content))
        .map_err(|e| CliError::runtime(format!("parsing {name}: {e}")))?;

    let out_spec = p.positional(1);
    let out_format = to.resolve_for_output(out_spec.unwrap_or("-"));
    let sink = open_sink(out_spec)?;
    write_graph(&graph, sink, out_format)
        .map_err(|e| CliError::runtime(format!("writing graph: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn converts_edge_list_to_dimacs_by_extension() {
        let dir = std::env::temp_dir().join("mce_cli_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let output = dir.join("out.col");
        std::fs::write(&input, "0 1\n1 2\n0 2\n").unwrap();
        run(&to_vec(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&output).unwrap();
        assert!(text.contains("p edge 3 3"), "{text}");
        assert!(text.contains("e 1 2"));
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn round_trips_through_both_formats() {
        let dir = std::env::temp_dir().join("mce_cli_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("rt.txt");
        let b = dir.join("rt.col");
        let c = dir.join("rt2.txt");
        std::fs::write(&a, "0 1\n1 2\n2 3\n3 0\n").unwrap();
        run(&to_vec(&[a.to_str().unwrap(), b.to_str().unwrap()])).unwrap();
        run(&to_vec(&[b.to_str().unwrap(), c.to_str().unwrap()])).unwrap();
        let first = std::fs::read_to_string(&a).unwrap();
        let last = std::fs::read_to_string(&c).unwrap();
        // Same edge set modulo the writer's comment header and its canonical
        // CSR edge order (each edge as "min max", sorted).
        let edges = |s: &str| {
            let mut e: Vec<String> = s
                .lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| {
                    let mut ids: Vec<u32> =
                        l.split_whitespace().map(|t| t.parse().unwrap()).collect();
                    ids.sort_unstable();
                    format!("{} {}", ids[0], ids[1])
                })
                .collect();
            e.sort();
            e
        };
        assert_eq!(edges(&first), edges(&last));
        for f in [&a, &b, &c] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn round_trips_through_mcg_binary() {
        let dir = std::env::temp_dir().join("mce_cli_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("m.col");
        let bin = dir.join("m.mcg");
        let back = dir.join("m2.col");
        // DIMACS holds the vertex count, so isolated vertex 4 must survive
        // the full text -> binary -> text cycle.
        std::fs::write(&src, "p edge 5 4\ne 1 2\ne 2 3\ne 1 3\ne 4 5\n").unwrap();
        run(&to_vec(&[src.to_str().unwrap(), bin.to_str().unwrap()])).unwrap();
        assert!(mce_graph::mcg::is_mcg(&std::fs::read(&bin).unwrap()));
        run(&to_vec(&[bin.to_str().unwrap(), back.to_str().unwrap()])).unwrap();
        let text = std::fs::read_to_string(&back).unwrap();
        assert!(text.contains("p edge 5 4"), "{text}");
        // Converting the same source twice yields byte-identical .mcg files.
        let bin2 = dir.join("m_again.mcg");
        run(&to_vec(&[src.to_str().unwrap(), bin2.to_str().unwrap()])).unwrap();
        assert_eq!(std::fs::read(&bin).unwrap(), std::fs::read(&bin2).unwrap());
        for f in [&src, &bin, &back, &bin2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn truncated_mcg_is_runtime_error() {
        let dir = std::env::temp_dir().join("mce_cli_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("trunc.mcg");
        let mut bytes = Vec::new();
        mce_graph::mcg::write_mcg(&mce_graph::Graph::complete(4), &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&bin, &bytes).unwrap();
        let err = run(&to_vec(&[bin.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn bad_input_is_runtime_error() {
        let dir = std::env::temp_dir().join("mce_cli_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("bad.col");
        std::fs::write(&input, "p edge 2 1\ne 0 1\n").unwrap();
        let err = run(&to_vec(&[input.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("1-based"));
        std::fs::remove_file(&input).ok();
    }
}
