//! `mce verify` — re-check an enumeration output against the naive solver.

use hbbmc::{matches_reference_budgeted, verify_cliques, Budget, ReferenceError};
use mce_graph::{Graph, VertexId};

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::io::{load_graph, read_input, FormatArg};

/// Per-command help text.
pub const HELP: &str = "usage: mce verify GRAPH [CLIQUES] [options]

Re-checks an enumeration output (the 'text' mode of mce enumerate: one
clique per line, space-separated vertex ids) against GRAPH: every line must
be a distinct maximal clique, and the collection must match the naive
reference solver exactly. CLIQUES defaults to stdin. Exits 0 only when the
output is provably correct and complete.

The naive reference is exponential, so it runs under the shared branch-step
budget of the query engine: when the budget is exhausted before the
reference finishes, verification fails cleanly instead of running without
bound.

options:
  --format edge-list|dimacs|mcg|auto  graph format (default: auto)
  --max-steps N                    branch-step budget for the naive
                                   reference (default 5000000)";

const VALUE_OPTS: &[&str] = &["--format", "--max-steps"];
const BOOL_FLAGS: &[&str] = &[];

/// Default branch-step budget of the naive reference run: enough for every
/// corpus-sized graph, small enough that an adversarial input fails in
/// seconds instead of running unboundedly.
const DEFAULT_MAX_STEPS: u64 = 5_000_000;

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, VALUE_OPTS, BOOL_FLAGS)?;
    p.reject_extra_positionals(2)?;
    let graph_spec = p
        .positional(0)
        .ok_or_else(|| CliError::usage("verify requires a GRAPH argument"))?;
    let cliques_spec = p.positional(1);
    if graph_spec == "-" && matches!(cliques_spec, None | Some("-")) {
        return Err(CliError::usage(
            "GRAPH and CLIQUES cannot both come from stdin",
        ));
    }
    let budget = Budget::steps(p.u64_value("--max-steps", DEFAULT_MAX_STEPS)?);
    let format = FormatArg::parse(p.value("--format"))?;
    let graph = load_graph(Some(graph_spec), format)?;
    let (name, content) = read_input(cliques_spec)?;
    let content = crate::io::expect_utf8(&name, content)?;
    let cliques = parse_cliques(&name, &content, &graph)?;
    check(&graph, &cliques, &budget)?;
    println!(
        "OK: {} maximal cliques match the naive reference",
        cliques.len()
    );
    Ok(())
}

/// Parses a text-mode enumeration output: one clique per line, space-separated
/// vertex ids; blank lines and `#` comments are ignored.
fn parse_cliques(name: &str, content: &str, g: &Graph) -> Result<Vec<Vec<VertexId>>, CliError> {
    let mut cliques = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut clique = Vec::new();
        for token in trimmed.split_whitespace() {
            let v: VertexId = token.parse().map_err(|_| {
                CliError::runtime(format!(
                    "{name}:{}: '{token}' is not a vertex id",
                    lineno + 1
                ))
            })?;
            if v as usize >= g.n() {
                return Err(CliError::runtime(format!(
                    "{name}:{}: vertex {v} out of range for a graph with {} vertices",
                    lineno + 1,
                    g.n()
                )));
            }
            clique.push(v);
        }
        cliques.push(clique);
    }
    Ok(cliques)
}

/// The actual verification: per-clique soundness (polynomial, unbudgeted),
/// then completeness against the budgeted naive reference.
fn check(g: &Graph, cliques: &[Vec<VertexId>], budget: &Budget) -> Result<(), CliError> {
    let violations = verify_cliques(g, cliques);
    if !violations.is_empty() {
        let shown: Vec<String> = violations.iter().take(3).map(|v| v.to_string()).collect();
        return Err(CliError::runtime(format!(
            "verification failed with {} violation(s): {}",
            violations.len(),
            shown.join("; ")
        )));
    }
    matches_reference_budgeted(g, cliques, budget).map_err(|e| match e {
        ReferenceError::Mismatch(msg) => CliError::runtime(msg),
        ReferenceError::BudgetExhausted(reason) => CliError::runtime(format!(
            "naive reference check exhausted its step budget ({reason}); \
             raise with --max-steps at your own patience"
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_edge() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn accepts_a_correct_enumeration() {
        let g = triangle_plus_edge();
        let cliques = parse_cliques("t", "# comment\n0 1 2\n\n2 3\n", &g).unwrap();
        assert!(check(&g, &cliques, &Budget::unlimited()).is_ok());
    }

    #[test]
    fn rejects_a_missing_clique() {
        let g = triangle_plus_edge();
        let cliques = parse_cliques("t", "0 1 2\n", &g).unwrap();
        let err = check(&g, &cliques, &Budget::unlimited()).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn rejects_a_non_maximal_clique() {
        let g = triangle_plus_edge();
        let cliques = parse_cliques("t", "0 1\n0 1 2\n2 3\n", &g).unwrap();
        let err = check(&g, &cliques, &Budget::unlimited()).unwrap_err();
        assert!(err.to_string().contains("not maximal"));
    }

    #[test]
    fn rejects_duplicates() {
        let g = triangle_plus_edge();
        let cliques = parse_cliques("t", "0 1 2\n2 1 0\n2 3\n", &g).unwrap();
        let err = check(&g, &cliques, &Budget::unlimited()).unwrap_err();
        assert!(err.to_string().contains("identical"));
    }

    #[test]
    fn reports_budget_exhaustion_cleanly() {
        let g = Graph::complete(10);
        let cliques = vec![(0..10u32).collect::<Vec<_>>()];
        let err = check(&g, &cliques, &Budget::steps(2)).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("--max-steps"), "{err}");
        assert!(check(&g, &cliques, &Budget::steps(1_000_000)).is_ok());
    }

    #[test]
    fn rejects_out_of_range_and_garbage_tokens() {
        let g = triangle_plus_edge();
        let err = parse_cliques("t", "0 9\n", &g).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let err = parse_cliques("t", "0 x\n", &g).unwrap_err();
        assert!(err.to_string().contains("not a vertex id"));
    }
}
