//! Graph input (file or stdin, explicit or sniffed format) and output sinks.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use mce_graph::io::read_graph_bytes;
use mce_graph::{Graph, GraphFormat};

use crate::error::CliError;

/// A `--format` argument: an explicit format or automatic detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FormatArg {
    /// Decide from the file extension, falling back to content sniffing.
    #[default]
    Auto,
    /// Force a specific format.
    Fixed(GraphFormat),
}

impl FormatArg {
    /// Parses `edge-list` / `dimacs` / `mcg` / `auto`.
    pub fn parse(raw: Option<&str>) -> Result<FormatArg, CliError> {
        match raw {
            None | Some("auto") => Ok(FormatArg::Auto),
            Some("edge-list") | Some("edgelist") => Ok(FormatArg::Fixed(GraphFormat::EdgeList)),
            Some("dimacs") => Ok(FormatArg::Fixed(GraphFormat::Dimacs)),
            Some("mcg") => Ok(FormatArg::Fixed(GraphFormat::Mcg)),
            Some(other) => Err(CliError::usage(format!(
                "unknown format '{other}' (expected edge-list, dimacs, mcg or auto)"
            ))),
        }
    }

    /// Resolves the concrete format for input named `name` with raw bytes
    /// `content`: extension first, then content sniffing (the `.mcg` magic
    /// wins over any text heuristic).
    pub fn resolve(self, name: &str, content: &[u8]) -> GraphFormat {
        match self {
            FormatArg::Fixed(f) => f,
            FormatArg::Auto => match path_format(name) {
                Some(f) => f,
                None => GraphFormat::sniff_bytes(content),
            },
        }
    }

    /// Resolves the concrete output format for a destination named `name`
    /// (no content to sniff; extension or edge-list default).
    pub fn resolve_for_output(self, name: &str) -> GraphFormat {
        match self {
            FormatArg::Fixed(f) => f,
            FormatArg::Auto => path_format(name).unwrap_or(GraphFormat::EdgeList),
        }
    }
}

fn path_format(name: &str) -> Option<GraphFormat> {
    if name == "-" {
        return None;
    }
    GraphFormat::from_extension(Path::new(name))
}

/// Reads the whole input (file path, or stdin for `-`/absent) into a byte
/// buffer. Byte-based so binary `.mcg` inputs pass through unmangled; text
/// callers convert with [`expect_utf8`].
pub fn read_input(spec: Option<&str>) -> Result<(String, Vec<u8>), CliError> {
    match spec {
        None | Some("-") => {
            let mut content = Vec::new();
            std::io::stdin()
                .read_to_end(&mut content)
                .map_err(|e| CliError::runtime(format!("reading stdin: {e}")))?;
            Ok(("<stdin>".to_string(), content))
        }
        Some(path) => {
            let content = std::fs::read(path)
                .map_err(|e| CliError::runtime(format!("reading {path}: {e}")))?;
            Ok((path.to_string(), content))
        }
    }
}

/// Converts input bytes to UTF-8 text, naming the source on failure.
pub fn expect_utf8(name: &str, content: Vec<u8>) -> Result<String, CliError> {
    String::from_utf8(content)
        .map_err(|_| CliError::runtime(format!("{name}: expected UTF-8 text input")))
}

/// Loads a graph from `spec` (file or stdin) as `format`.
pub fn load_graph(spec: Option<&str>, format: FormatArg) -> Result<Graph, CliError> {
    let (name, content) = read_input(spec)?;
    let resolved = format.resolve(&name, &content);
    read_graph_bytes(&content, resolved)
        .map_err(|e| CliError::runtime(format!("parsing {name}: {e}")))
}

/// Opens the output sink: a file, or stdout for `-`/absent.
pub fn open_sink(spec: Option<&str>) -> Result<Box<dyn Write + Send>, CliError> {
    match spec {
        None | Some("-") => Ok(Box::new(BufWriter::new(std::io::stdout()))),
        Some(path) => {
            let file = File::create(path)
                .map_err(|e| CliError::runtime(format!("creating {path}: {e}")))?;
            Ok(Box::new(BufWriter::new(file)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_arg_parses_names() {
        assert_eq!(FormatArg::parse(None).unwrap(), FormatArg::Auto);
        assert_eq!(
            FormatArg::parse(Some("dimacs")).unwrap(),
            FormatArg::Fixed(GraphFormat::Dimacs)
        );
        assert_eq!(
            FormatArg::parse(Some("edge-list")).unwrap(),
            FormatArg::Fixed(GraphFormat::EdgeList)
        );
        assert!(FormatArg::parse(Some("xml")).is_err());
    }

    #[test]
    fn auto_resolution_prefers_extension_then_sniffs() {
        let auto = FormatArg::Auto;
        assert_eq!(auto.resolve("g.col", b"0 1\n"), GraphFormat::Dimacs);
        assert_eq!(
            auto.resolve("g.txt", b"p edge 1 0\n"),
            GraphFormat::EdgeList
        );
        assert_eq!(auto.resolve("-", b"p edge 1 0\n"), GraphFormat::Dimacs);
        assert_eq!(auto.resolve("-", b"0 1\n"), GraphFormat::EdgeList);
        // Unrecognised extension: the content decides, as documented.
        assert_eq!(auto.resolve("g.dat", b"p edge 1 0\n"), GraphFormat::Dimacs);
        assert_eq!(auto.resolve("g.dat", b"0 1\n"), GraphFormat::EdgeList);
        assert_eq!(auto.resolve_for_output("out.clq"), GraphFormat::Dimacs);
        assert_eq!(auto.resolve_for_output("-"), GraphFormat::EdgeList);
        // The binary magic beats every text heuristic when sniffing.
        assert_eq!(
            auto.resolve("-", b"\x89MCG\r\n\x1a\nrest"),
            GraphFormat::Mcg
        );
        assert_eq!(auto.resolve("g.mcg", b""), GraphFormat::Mcg);
        assert_eq!(auto.resolve_for_output("out.mcg"), GraphFormat::Mcg);
    }

    #[test]
    fn fixed_format_overrides_everything() {
        let fixed = FormatArg::Fixed(GraphFormat::Dimacs);
        assert_eq!(fixed.resolve("g.txt", b"0 1\n"), GraphFormat::Dimacs);
        assert_eq!(fixed.resolve_for_output("g.txt"), GraphFormat::Dimacs);
    }

    #[test]
    fn mcg_format_arg_parses_and_loads() {
        assert_eq!(
            FormatArg::parse(Some("mcg")).unwrap(),
            FormatArg::Fixed(GraphFormat::Mcg)
        );
        let dir = std::env::temp_dir().join("mce_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tri.mcg");
        let g = Graph::complete(3);
        mce_graph::mcg::write_mcg_file(&g, &path).unwrap();
        let loaded = load_graph(Some(path.to_str().unwrap()), FormatArg::Auto).unwrap();
        assert_eq!(loaded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn expect_utf8_names_the_source() {
        assert_eq!(expect_utf8("x", b"0 1\n".to_vec()).unwrap(), "0 1\n");
        let err = expect_utf8("bin.mcg", vec![0x89, 0xff]).unwrap_err();
        assert!(err.to_string().contains("bin.mcg"));
    }

    #[test]
    fn load_graph_reports_named_parse_errors() {
        let dir = std::env::temp_dir().join("mce_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "0 x\n").unwrap();
        let err = load_graph(Some(path.to_str().unwrap()), FormatArg::Auto).unwrap_err();
        assert!(err.to_string().contains("bad.txt"));
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_runtime_error() {
        let err = load_graph(Some("/no/such/file.txt"), FormatArg::Auto).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }
}
