//! `mce query` — budgeted, cancellable, anchored enumeration queries.
//!
//! The serving-shaped front end of the unified query engine
//! ([`hbbmc::query`]): one subcommand admits a `QuerySpec × Budget` plan,
//! streams its deterministic result and reports the outcome (`complete` or
//! `truncated (...)`) on `--stats`. Exit code 0 covers truncated runs — a
//! budget stop is a successful, clean prefix, not an error.

use std::io::Write;

use hbbmc::{
    run_query, CliqueLineFormat, CountReporter, MinSizeFilter, Query, QueryResult, QuerySpec,
    QueryValue, RootScheduler, SolverConfig, VertexId, WriterReporter,
};
use mce_graph::Graph;

use crate::args::ParsedArgs;
use crate::enumerate::{parse_budget, print_stats, write_count_summary};
use crate::error::CliError;
use crate::io::{load_graph, open_sink, FormatArg};

/// Per-command help text.
pub const HELP: &str = "usage: mce query [GRAPH] [options]

Runs one budgeted enumeration query over GRAPH (a file path, or stdin for
'-' / no argument). Streaming output is deterministic: a budget-truncated
run emits an exact prefix of the unbudgeted stream at any --threads and
--scheduler. Exit code 0 covers truncated runs; the outcome (complete /
truncated) is reported by --stats.

query modes (choose at most one; default: stream every maximal clique):
  --anchor V1,V2,...   only the maximal cliques containing every listed
                       vertex (runs on the anchor's common-neighbourhood
                       subgraph — no full enumeration)
  --top K              the K largest maximal cliques, ranked by size with
                       ties broken by stream order; printed one per line
  --count              count maximal cliques (prints 'cliques N')
  --max-clique         one maximum clique via dedicated branch and bound
                       (greedy lower bound, core-number and coloring
                       pruning — no full enumeration); prints the canonical
                       winner: the lexicographically smallest sorted member
                       list among all maximum cliques. With --stats, also
                       reports which bound ended the search; a truncated
                       run prints the best clique found without claiming
                       it is maximum
  --kclique K          stream every clique of exactly K vertices

budget options:
  --limit N            stop after N cliques of the deterministic stream
  --max-steps N        abort after N branch steps across all workers
  --deadline-ms N      abort after N milliseconds of wall-clock time

options:
  --format edge-list|dimacs|mcg|auto  input format (default: auto)
  --preset NAME                    solver preset, e.g. HBBMC++ (default)
  --threads N                      worker threads, 1..=1024 (default: 1;
                                   anchored/kclique queries run sequentially)
  --scheduler dynamic|static|splitting   root-branch scheduling policy
  --min-size K                     only report cliques with >= K vertices
                                   (streaming modes; applied after --limit)
  --kernel scalar|avx2|neon        word-kernel backend (default: the widest
                                   arm the CPU supports; MCE_KERNEL sets the
                                   same override). Never changes output
  --output text|ndjson|count       streaming output mode (default: text)
  --out FILE                       write to FILE instead of stdout
  --stats                          print run statistics and the outcome to
                                   stderr";

const VALUE_OPTS: &[&str] = &[
    "--anchor",
    "--top",
    "--kclique",
    "--limit",
    "--max-steps",
    "--deadline-ms",
    "--format",
    "--preset",
    "--threads",
    "--scheduler",
    "--min-size",
    "--kernel",
    "--output",
    "--out",
];
const BOOL_FLAGS: &[&str] = &["--count", "--max-clique", "--stats"];

/// Parses `--anchor 3,17,42` into a vertex list (range-checked later, at
/// session admission).
fn parse_anchor(raw: &str) -> Result<Vec<VertexId>, CliError> {
    let mut vertices = Vec::new();
    for token in raw.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let v: VertexId = token
            .parse()
            .map_err(|_| CliError::usage(format!("--anchor: '{token}' is not a vertex id")))?;
        vertices.push(v);
    }
    if vertices.is_empty() {
        return Err(CliError::usage(
            "--anchor requires at least one vertex id (comma-separated)",
        ));
    }
    Ok(vertices)
}

pub(crate) fn parse_scheduler(raw: Option<&str>) -> Result<RootScheduler, CliError> {
    match raw {
        None | Some("dynamic") => Ok(RootScheduler::Dynamic),
        Some("static") => Ok(RootScheduler::Static),
        Some("splitting") => Ok(RootScheduler::Splitting),
        Some(other) => Err(CliError::usage(format!(
            "unknown scheduler '{other}' (expected dynamic, static or splitting)"
        ))),
    }
}

/// Streaming sink of the stream-valued query modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StreamMode {
    Text,
    Ndjson,
    Count,
}

fn parse_stream_mode(raw: Option<&str>) -> Result<StreamMode, CliError> {
    match raw {
        None | Some("text") => Ok(StreamMode::Text),
        Some("ndjson") => Ok(StreamMode::Ndjson),
        Some("count") => Ok(StreamMode::Count),
        Some(other) => Err(CliError::usage(format!(
            "unknown output mode '{other}' (expected text, ndjson or count)"
        ))),
    }
}

/// Builds the [`QuerySpec`] from the mode flags, rejecting combinations.
fn parse_spec(p: &ParsedArgs) -> Result<QuerySpec, CliError> {
    let mut specs: Vec<QuerySpec> = Vec::new();
    if let Some(raw) = p.value("--anchor") {
        specs.push(QuerySpec::Anchored {
            vertices: parse_anchor(raw)?,
        });
    }
    if let Some(raw) = p.value("--top") {
        let k: usize = raw
            .parse()
            .map_err(|_| CliError::usage(format!("--top: '{raw}' is not a number")))?;
        specs.push(QuerySpec::TopKBySize { k });
    }
    if p.flag("--count") {
        specs.push(QuerySpec::Count);
    }
    if p.flag("--max-clique") {
        specs.push(QuerySpec::MaximumClique);
    }
    if let Some(raw) = p.value("--kclique") {
        let k: usize = raw
            .parse()
            .map_err(|_| CliError::usage(format!("--kclique: '{raw}' is not a number")))?;
        if k == 0 {
            return Err(CliError::usage("--kclique requires K >= 1"));
        }
        specs.push(QuerySpec::KClique { k });
    }
    match specs.len() {
        0 => Ok(QuerySpec::Enumerate),
        1 => Ok(specs.pop().expect("one spec")),
        _ => Err(CliError::usage(
            "choose at most one of --anchor, --top, --count, --max-clique, --kclique",
        )),
    }
}

/// Runs a stream-valued query into `sink` under the chosen stream mode.
fn run_streaming(
    graph: &Graph,
    query: Query,
    min_size: usize,
    mode: StreamMode,
    sink: &mut (dyn Write + Send),
) -> Result<QueryResult, CliError> {
    match mode {
        StreamMode::Count => {
            let mut reporter = MinSizeFilter::new(CountReporter::new(), min_size);
            let result = run_query(graph, query, &mut reporter)
                .map_err(|e| CliError::usage(e.to_string()))?;
            write_count_summary(sink, &reporter.into_inner())?;
            Ok(result)
        }
        StreamMode::Text | StreamMode::Ndjson => {
            let line_format = if mode == StreamMode::Text {
                CliqueLineFormat::Text
            } else {
                CliqueLineFormat::Ndjson
            };
            let writer = WriterReporter::new(&mut *sink, line_format);
            let mut reporter = MinSizeFilter::new(writer, min_size);
            let result = run_query(graph, query, &mut reporter)
                .map_err(|e| CliError::usage(e.to_string()))?;
            reporter
                .into_inner()
                .finish()
                .map_err(|e| CliError::runtime(format!("writing output: {e}")))?;
            Ok(result)
        }
    }
}

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, VALUE_OPTS, BOOL_FLAGS)?;
    p.reject_extra_positionals(1)?;
    crate::kernel::init(p.value("--kernel"))?;
    let spec = parse_spec(&p)?;
    let mut config = SolverConfig::preset_by_name(p.value("--preset").unwrap_or("HBBMC++"))?;
    config.scheduler = parse_scheduler(p.value("--scheduler"))?;
    let threads = p.usize_value("--threads", 1, 1, 1024)?;
    let min_size = p.usize_value("--min-size", 1, 1, usize::MAX)?;
    let budget = parse_budget(&p)?;
    let stream_mode = parse_stream_mode(p.value("--output"))?;
    let streaming = matches!(
        spec,
        QuerySpec::Enumerate | QuerySpec::Anchored { .. } | QuerySpec::KClique { .. }
    );
    if p.value("--output").is_some() && !streaming {
        return Err(CliError::usage(
            "--output only applies to streaming queries (default, --anchor, --kclique)",
        ));
    }
    if p.value("--min-size").is_some() && !streaming {
        return Err(CliError::usage(
            "--min-size only applies to streaming queries (default, --anchor, --kclique)",
        ));
    }
    let format = FormatArg::parse(p.value("--format"))?;
    let graph = load_graph(p.positional(0), format)?;
    let mut sink = open_sink(p.value("--out"))?;

    let query = Query {
        spec: spec.clone(),
        config,
        threads,
        budget,
    };
    let result = match &spec {
        QuerySpec::Enumerate | QuerySpec::Anchored { .. } | QuerySpec::KClique { .. } => {
            run_streaming(&graph, query, min_size, stream_mode, &mut sink)?
        }
        QuerySpec::TopKBySize { .. } => {
            let mut ignored = CountReporter::new();
            let result = run_query(&graph, query, &mut ignored)
                .map_err(|e| CliError::usage(e.to_string()))?;
            let QueryValue::TopK(cliques) = &result.value else {
                unreachable!("TopKBySize yields a TopK value")
            };
            for clique in cliques {
                let line: Vec<String> = clique.iter().map(|v| v.to_string()).collect();
                writeln!(sink, "{}", line.join(" "))?;
            }
            result
        }
        QuerySpec::Count => {
            let mut ignored = CountReporter::new();
            let result = run_query(&graph, query, &mut ignored)
                .map_err(|e| CliError::usage(e.to_string()))?;
            let QueryValue::Count(count) = result.value else {
                unreachable!("Count yields a Count value")
            };
            writeln!(sink, "cliques {count}")?;
            result
        }
        QuerySpec::MaximumClique => {
            let mut ignored = CountReporter::new();
            let result = run_query(&graph, query, &mut ignored)
                .map_err(|e| CliError::usage(e.to_string()))?;
            let QueryValue::Maximum(clique) = &result.value else {
                unreachable!("MaximumClique yields a Maximum value")
            };
            let line: Vec<String> = clique.iter().map(|v| v.to_string()).collect();
            writeln!(sink, "{}", line.join(" "))?;
            result
        }
    };
    sink.flush()?;
    if p.flag("--stats") {
        print_stats(&result.stats, result.outcome);
        if matches!(spec, QuerySpec::MaximumClique) {
            eprintln!("terminated by: {}", result.terminating_bound());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbmc::{naive_maximal_cliques, Budget};

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]).unwrap()
    }

    fn stream_to_string(
        g: &Graph,
        query: Query,
        min_size: usize,
        mode: StreamMode,
    ) -> (String, QueryResult) {
        let mut sink: Vec<u8> = Vec::new();
        let mut boxed: Box<dyn Write + Send> = Box::new(&mut sink);
        let result = run_streaming(g, query, min_size, mode, &mut *boxed).unwrap();
        drop(boxed);
        (String::from_utf8(sink).unwrap(), result)
    }

    #[test]
    fn anchor_parsing() {
        assert_eq!(parse_anchor("3,1, 2").unwrap(), vec![3, 1, 2]);
        assert_eq!(parse_anchor("7").unwrap(), vec![7]);
        assert!(parse_anchor("").is_err());
        assert!(parse_anchor("a,b").is_err());
    }

    #[test]
    fn spec_parsing_rejects_combined_modes() {
        let p = ParsedArgs::parse(
            &["--anchor".into(), "1".into(), "--count".into()],
            VALUE_OPTS,
            BOOL_FLAGS,
        )
        .unwrap();
        assert!(parse_spec(&p).is_err());
        let p = ParsedArgs::parse(&[], VALUE_OPTS, BOOL_FLAGS).unwrap();
        assert_eq!(parse_spec(&p).unwrap(), QuerySpec::Enumerate);
        let p =
            ParsedArgs::parse(&["--kclique".into(), "0".into()], VALUE_OPTS, BOOL_FLAGS).unwrap();
        assert!(parse_spec(&p).is_err());
    }

    #[test]
    fn max_clique_flag_parses_to_spec() {
        let p = ParsedArgs::parse(&["--max-clique".into()], VALUE_OPTS, BOOL_FLAGS).unwrap();
        assert_eq!(parse_spec(&p).unwrap(), QuerySpec::MaximumClique);
        let p = ParsedArgs::parse(
            &["--max-clique".into(), "--count".into()],
            VALUE_OPTS,
            BOOL_FLAGS,
        )
        .unwrap();
        assert!(parse_spec(&p).is_err());
    }

    #[test]
    fn anchored_stream_lists_only_containing_cliques() {
        let g = diamond();
        let (out, result) = stream_to_string(
            &g,
            Query::new(QuerySpec::Anchored { vertices: vec![1] }),
            1,
            StreamMode::Text,
        );
        assert_eq!(out, "0 1 2\n");
        assert!(!result.outcome.is_truncated());
    }

    #[test]
    fn enumerate_stream_matches_reference() {
        let g = diamond();
        let (out, _) = stream_to_string(&g, Query::new(QuerySpec::Enumerate), 1, StreamMode::Text);
        let mut lines: Vec<&str> = out.lines().collect();
        lines.sort_unstable();
        let expected: Vec<String> = naive_maximal_cliques(&g)
            .iter()
            .map(|c| {
                c.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert_eq!(lines, expected);
    }

    #[test]
    fn count_stream_mode_prints_summary() {
        let g = diamond();
        let (out, _) = stream_to_string(&g, Query::new(QuerySpec::Enumerate), 1, StreamMode::Count);
        assert!(out.starts_with("cliques 2\n"), "{out}");
    }

    #[test]
    fn limit_truncates_the_stream() {
        let g = diamond();
        let query = Query::new(QuerySpec::Enumerate).with_budget(Budget::cliques(1));
        let (out, result) = stream_to_string(&g, query, 1, StreamMode::Text);
        assert_eq!(out.lines().count(), 1);
        assert!(result.outcome.is_truncated());
    }

    #[test]
    fn stream_mode_parsing() {
        assert_eq!(parse_stream_mode(None).unwrap(), StreamMode::Text);
        assert_eq!(
            parse_stream_mode(Some("ndjson")).unwrap(),
            StreamMode::Ndjson
        );
        assert!(parse_stream_mode(Some("histogram")).is_err());
    }
}
