//! `mce gen` — write a synthetic graph from a named `mce-gen` preset.

use std::io::Write;

use mce_gen::{gen_preset_by_name, GEN_PRESETS};
use mce_graph::io::write_graph;

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::io::{open_sink, FormatArg};

/// Per-command help text.
pub const HELP: &str = "usage: mce gen PRESET [options]
       mce gen --list

Generates a synthetic graph from a named preset and writes it to stdout or
--out. Generation is deterministic: the same (PRESET, --n, --seed) triple
always produces the same graph.

options:
  --n N                            target vertex count (default: 100)
  --seed S                         RNG seed (default: 42)
  --format edge-list|dimacs|mcg|auto  output format (default: by --out extension)
  --out FILE                       write to FILE instead of stdout
  --list                           list available presets and exit";

const VALUE_OPTS: &[&str] = &["--n", "--seed", "--format", "--out"];
const BOOL_FLAGS: &[&str] = &["--list"];

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, VALUE_OPTS, BOOL_FLAGS)?;
    if p.flag("--list") {
        let mut out = std::io::stdout();
        for preset in GEN_PRESETS {
            writeln!(out, "{:12} {}", preset.name, preset.description)?;
        }
        return Ok(());
    }
    p.reject_extra_positionals(1)?;
    let name = p
        .positional(0)
        .ok_or_else(|| CliError::usage("gen requires a preset name (see mce gen --list)"))?;
    let preset = gen_preset_by_name(name).ok_or_else(|| {
        let names: Vec<&str> = GEN_PRESETS.iter().map(|p| p.name).collect();
        CliError::usage(format!(
            "unknown generator preset '{name}' (expected one of: {})",
            names.join(", ")
        ))
    })?;
    let n = p.usize_value("--n", 100, 1, 50_000_000)?;
    let seed = p.u64_value("--seed", 42)?;
    let format = FormatArg::parse(p.value("--format"))?;
    let out_spec = p.value("--out");
    let out_format = format.resolve_for_output(out_spec.unwrap_or("-"));

    let graph = preset.build(n, seed);
    let sink = open_sink(out_spec)?;
    write_graph(&graph, sink, out_format)
        .map_err(|e| CliError::runtime(format!("writing graph: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn missing_preset_is_usage_error() {
        let e = run(&to_vec(&[])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn unknown_preset_is_usage_error() {
        let e = run(&to_vec(&["warp-core"])).unwrap_err();
        assert!(e.to_string().contains("warp-core"));
        assert!(e.to_string().contains("er-sparse"));
    }

    #[test]
    fn generates_to_file_deterministically() {
        let dir = std::env::temp_dir().join("mce_cli_gen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        for path in [&a, &b] {
            run(&to_vec(&[
                "er-sparse",
                "--n",
                "30",
                "--seed",
                "9",
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
        }
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap()
        );
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn dimacs_extension_selects_dimacs_output() {
        let dir = std::env::temp_dir().join("mce_cli_gen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.col");
        run(&to_vec(&[
            "complete",
            "--n",
            "4",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("p edge 4 6"), "{content}");
        std::fs::remove_file(&path).ok();
    }
}
