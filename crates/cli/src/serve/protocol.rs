//! The serve wire protocol: newline-delimited JSON requests and response
//! frames.
//!
//! One request per line, one or more response frames per request, every
//! frame a single JSON object on its own line with `"type"` as its first
//! key. Query responses are `begin` → zero or more clique lines (exactly the
//! [`CliqueLineFormat::Ndjson`](hbbmc::CliqueLineFormat) rendering the CLI's
//! `--output ndjson` uses) → `end`, so a budget- or cancel-truncated
//! response's clique bytes are an exact prefix of the complete response's.
//! Every failure maps to a typed `error` frame carrying an [`ErrorCode`];
//! parsing is strict (unknown keys and ops are rejected) in the same spirit
//! as the CLI argument parser.

use hbbmc::{QuerySpec, RootScheduler, VertexId};

use super::json::{self, Value};

/// Machine-readable error categories of the `error` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, an unknown op, or invalid/missing fields.
    BadRequest,
    /// A request line exceeded the server's line-length cap; the connection
    /// is closed (there is no way to resynchronise mid-line).
    Oversized,
    /// The named graph is not in the registry.
    UnknownGraph,
    /// Reading or parsing the graph source failed.
    LoadFailed,
    /// The server is at `max_sessions` and the request did not opt into
    /// queueing.
    Capacity,
    /// The connection exhausted its per-client step or clique quota.
    Quota,
    /// The server is shutting down and admits no new sessions.
    ShuttingDown,
    /// A contained fault (worker panic) inside the session or handler; the
    /// server stays up and the connection may continue.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Oversized => "oversized-line",
            ErrorCode::UnknownGraph => "unknown-graph",
            ErrorCode::LoadFailed => "load-failed",
            ErrorCode::Capacity => "capacity",
            ErrorCode::Quota => "quota",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal-error",
        }
    }
}

/// A parsed `query` request.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// Registry name of the graph to query.
    pub graph: String,
    /// What to produce (`mode` / `k` / `anchor` fields).
    pub spec: QuerySpec,
    /// `limit`: stop after this many cliques of the deterministic stream.
    pub limit: Option<u64>,
    /// `max_steps`: abort after this many branch steps.
    pub max_steps: Option<u64>,
    /// `deadline_ms`: abort after this many milliseconds of wall-clock time
    /// (clamped to the server's `--default-deadline-ms` when both are set).
    pub deadline_ms: Option<u64>,
    /// `threads`: worker threads (clamped to the server's `max_threads`).
    pub threads: Option<usize>,
    /// `scheduler`: root-branch scheduling policy override.
    pub scheduler: Option<RootScheduler>,
    /// `preset`: solver preset override (e.g. `"HBBMC++"`).
    pub preset: Option<String>,
    /// `queue`: wait for a session slot instead of failing with `capacity`.
    pub queue: bool,
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with a `pong` frame.
    Ping,
    /// Load a graph into the registry from a server-side `path` or inline
    /// `content` (exactly one of the two).
    Load {
        /// Registry name to store the graph under (replaces any previous
        /// graph of the same name, under a fresh generation).
        name: String,
        /// Server-side file to read.
        path: Option<String>,
        /// Inline graph text.
        content: Option<String>,
        /// `edge-list` / `dimacs` / `mcg` / `auto` (default `auto`).
        /// Binary `.mcg` graphs must come via `path` — inline `content` is
        /// JSON text.
        format: Option<String>,
    },
    /// Remove a graph from the registry (in-flight sessions keep their
    /// pinned copy).
    Evict {
        /// Registry name to remove.
        name: String,
    },
    /// List the registered graphs.
    List,
    /// Snapshot the server's aggregate counters.
    Metrics,
    /// Run one budgeted query session.
    Query(QueryRequest),
    /// Cancel the connection's in-flight query (optionally by query id).
    Cancel {
        /// The per-connection query id to cancel; without it, whatever query
        /// is currently streaming on this connection is cancelled.
        id: Option<u64>,
    },
    /// Gracefully shut the whole server down.
    Shutdown,
}

fn check_keys(v: &Value, allowed: &[&str]) -> Result<(), String> {
    for key in v.keys() {
        if !allowed.contains(&key) {
            return Err(format!("unknown field '{key}'"));
        }
    }
    Ok(())
}

fn required_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("'{key}' must be a string"))
}

fn optional_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("'{key}' must be a string")),
    }
}

fn optional_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

fn parse_spec(v: &Value) -> Result<QuerySpec, String> {
    let mode = match v.get("mode") {
        None => "enumerate",
        Some(m) => m.as_str().ok_or("'mode' must be a string")?,
    };
    let k = optional_u64(v, "k")?;
    let anchor = v.get("anchor");
    if mode != "anchored" && anchor.is_some() {
        return Err("'anchor' only applies to mode 'anchored'".to_string());
    }
    if !matches!(mode, "top" | "kclique") && k.is_some() {
        return Err("'k' only applies to modes 'top' and 'kclique'".to_string());
    }
    match mode {
        "enumerate" => Ok(QuerySpec::Enumerate),
        "count" => Ok(QuerySpec::Count),
        "maximum" => Ok(QuerySpec::MaximumClique),
        "top" => {
            let k = k.ok_or("mode 'top' requires 'k'")? as usize;
            Ok(QuerySpec::TopKBySize { k })
        }
        "kclique" => {
            let k = k.ok_or("mode 'kclique' requires 'k'")?;
            if k == 0 {
                return Err("mode 'kclique' requires k >= 1".to_string());
            }
            Ok(QuerySpec::KClique { k: k as usize })
        }
        "anchored" => {
            let items = anchor
                .and_then(Value::as_array)
                .ok_or("mode 'anchored' requires 'anchor' (an array of vertex ids)")?;
            let mut vertices: Vec<VertexId> = Vec::with_capacity(items.len());
            for item in items {
                let id = item
                    .as_u64()
                    .filter(|&id| id <= u64::from(VertexId::MAX))
                    .ok_or("'anchor' entries must be vertex ids")?;
                vertices.push(id as VertexId);
            }
            if vertices.is_empty() {
                return Err("'anchor' must not be empty".to_string());
            }
            Ok(QuerySpec::Anchored { vertices })
        }
        other => Err(format!(
            "unknown mode '{other}' (expected enumerate, count, top, anchored, maximum or kclique)"
        )),
    }
}

fn parse_scheduler(raw: &str) -> Result<RootScheduler, String> {
    match raw {
        "dynamic" => Ok(RootScheduler::Dynamic),
        "static" => Ok(RootScheduler::Static),
        "splitting" => Ok(RootScheduler::Splitting),
        other => Err(format!(
            "unknown scheduler '{other}' (expected dynamic, static or splitting)"
        )),
    }
}

/// Parses one request line. The error string becomes the `message` of a
/// `bad-request` error frame.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line)?;
    if !matches!(v, Value::Obj(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let op = required_str(&v, "op")?;
    match op.as_str() {
        "ping" => {
            check_keys(&v, &["op"])?;
            Ok(Request::Ping)
        }
        "list" => {
            check_keys(&v, &["op"])?;
            Ok(Request::List)
        }
        "metrics" => {
            check_keys(&v, &["op"])?;
            Ok(Request::Metrics)
        }
        "shutdown" => {
            check_keys(&v, &["op"])?;
            Ok(Request::Shutdown)
        }
        "cancel" => {
            check_keys(&v, &["op", "id"])?;
            Ok(Request::Cancel {
                id: optional_u64(&v, "id")?,
            })
        }
        "evict" => {
            check_keys(&v, &["op", "name"])?;
            Ok(Request::Evict {
                name: required_str(&v, "name")?,
            })
        }
        "load" => {
            check_keys(&v, &["op", "name", "path", "content", "format"])?;
            let name = required_str(&v, "name")?;
            if name.is_empty() {
                return Err("'name' must not be empty".to_string());
            }
            let path = optional_str(&v, "path")?;
            let content = optional_str(&v, "content")?;
            match (&path, &content) {
                (Some(_), Some(_)) => {
                    return Err("'path' and 'content' are mutually exclusive".to_string())
                }
                (None, None) => return Err("'load' requires 'path' or 'content'".to_string()),
                _ => {}
            }
            Ok(Request::Load {
                name,
                path,
                content,
                format: optional_str(&v, "format")?,
            })
        }
        "query" => {
            check_keys(
                &v,
                &[
                    "op",
                    "graph",
                    "mode",
                    "k",
                    "anchor",
                    "limit",
                    "max_steps",
                    "deadline_ms",
                    "threads",
                    "scheduler",
                    "preset",
                    "queue",
                ],
            )?;
            let graph = required_str(&v, "graph")?;
            let spec = parse_spec(&v)?;
            let scheduler = match v.get("scheduler") {
                None => None,
                Some(s) => Some(parse_scheduler(
                    s.as_str().ok_or("'scheduler' must be a string")?,
                )?),
            };
            let threads = match optional_u64(&v, "threads")? {
                None => None,
                Some(0) => return Err("'threads' must be >= 1".to_string()),
                Some(t) => Some(t as usize),
            };
            let queue = match v.get("queue") {
                None => false,
                Some(q) => q.as_bool().ok_or("'queue' must be a boolean")?,
            };
            Ok(Request::Query(QueryRequest {
                graph,
                spec,
                limit: optional_u64(&v, "limit")?,
                max_steps: optional_u64(&v, "max_steps")?,
                deadline_ms: optional_u64(&v, "deadline_ms")?,
                threads,
                scheduler,
                preset: optional_str(&v, "preset")?,
                queue,
            }))
        }
        other => Err(format!("unknown op '{other}'")),
    }
}

// ---------------------------------------------------------------------------
// Response frames. Each helper returns one line WITHOUT the trailing newline;
// the writer appends it. Key order is fixed so replays are byte-stable.
// ---------------------------------------------------------------------------

/// `{"type":"pong"}`.
pub fn pong_frame() -> String {
    r#"{"type":"pong"}"#.to_string()
}

/// `{"type":"shutdown"}` — acknowledged before the server stops accepting.
pub fn shutdown_frame() -> String {
    r#"{"type":"shutdown"}"#.to_string()
}

/// The typed error frame.
pub fn error_frame(code: ErrorCode, message: &str) -> String {
    Value::obj(vec![
        ("type", Value::Str("error".into())),
        ("code", Value::Str(code.as_str().into())),
        ("message", Value::Str(message.into())),
    ])
    .render()
}

/// Acknowledges a completed `load`.
pub fn loaded_frame(name: &str, n: usize, m: usize, generation: u64) -> String {
    Value::obj(vec![
        ("type", Value::Str("loaded".into())),
        ("name", Value::Str(name.into())),
        ("n", Value::Num(n as f64)),
        ("m", Value::Num(m as f64)),
        ("generation", Value::Num(generation as f64)),
    ])
    .render()
}

/// Acknowledges a completed `evict`.
pub fn evicted_frame(name: &str) -> String {
    Value::obj(vec![
        ("type", Value::Str("evicted".into())),
        ("name", Value::Str(name.into())),
    ])
    .render()
}

/// The `list` response: one entry per registered graph, sorted by name.
pub fn graphs_frame(entries: &[(String, usize, usize, u64)]) -> String {
    let items = entries
        .iter()
        .map(|(name, n, m, generation)| {
            Value::obj(vec![
                ("name", Value::Str(name.clone())),
                ("n", Value::Num(*n as f64)),
                ("m", Value::Num(*m as f64)),
                ("generation", Value::Num(*generation as f64)),
            ])
        })
        .collect();
    Value::obj(vec![
        ("type", Value::Str("graphs".into())),
        ("graphs", Value::Arr(items)),
    ])
    .render()
}

/// The `metrics` response: the active kernel backend plus the counter
/// snapshot in a fixed key order.
pub fn metrics_frame(kernel_backend: &str, counters: &[(&'static str, u64)]) -> String {
    let mut pairs: Vec<(&str, Value)> = vec![
        ("type", Value::Str("metrics".into())),
        ("kernel_backend", Value::Str(kernel_backend.into())),
    ];
    for (key, value) in counters {
        pairs.push((key, Value::Num(*value as f64)));
    }
    Value::obj(pairs).render()
}

/// Opens a query response stream.
pub fn begin_frame(id: u64, graph: &str, generation: u64) -> String {
    Value::obj(vec![
        ("type", Value::Str("begin".into())),
        ("id", Value::Num(id as f64)),
        ("graph", Value::Str(graph.into())),
        ("generation", Value::Num(generation as f64)),
    ])
    .render()
}

/// Closes a query response stream.
///
/// Only fields that are deterministic at any thread count and scheduler
/// appear here (the golden wire corpus replays responses byte-for-byte):
/// `outcome`, the emitted clique count and max size, whether the budget
/// terminated work (a boolean — the exact abandoned-frame count is
/// scheduling-dependent and lives in the `metrics` aggregates), and the
/// `count` payload of counting queries. `degraded` is emitted only when
/// `true` (a session admitted under overload with a pre-clamped budget), so
/// un-degraded responses stay byte-identical to the pre-degradation wire
/// format.
pub fn end_frame(
    id: u64,
    outcome: &str,
    cliques: u64,
    max_size: usize,
    budget_terminated: bool,
    degraded: bool,
    count: Option<u64>,
) -> String {
    let mut pairs = vec![
        ("type", Value::Str("end".into())),
        ("id", Value::Num(id as f64)),
        ("outcome", Value::Str(outcome.into())),
        ("cliques", Value::Num(cliques as f64)),
        ("max_size", Value::Num(max_size as f64)),
        ("budget_terminated", Value::Bool(budget_terminated)),
    ];
    if degraded {
        pairs.push(("degraded", Value::Bool(true)));
    }
    if let Some(count) = count {
        pairs.push(("count", Value::Num(count as f64)));
    }
    Value::obj(pairs).render()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"list"}"#).unwrap(), Request::List);
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":3}"#).unwrap(),
            Request::Cancel { id: Some(3) }
        );
        assert_eq!(
            parse_request(r#"{"op":"evict","name":"g"}"#).unwrap(),
            Request::Evict { name: "g".into() }
        );
        let load = parse_request(r#"{"op":"load","name":"g","content":"0 1\n"}"#).unwrap();
        assert!(matches!(load, Request::Load { ref name, .. } if name == "g"));
    }

    #[test]
    fn parses_query_modes() {
        let q = parse_request(r#"{"op":"query","graph":"g"}"#).unwrap();
        let Request::Query(q) = q else { panic!() };
        assert_eq!(q.spec, QuerySpec::Enumerate);
        assert!(!q.queue);

        let q = parse_request(
            r#"{"op":"query","graph":"g","mode":"anchored","anchor":[3,1],"limit":5,"queue":true}"#,
        )
        .unwrap();
        let Request::Query(q) = q else { panic!() };
        assert_eq!(
            q.spec,
            QuerySpec::Anchored {
                vertices: vec![3, 1]
            }
        );
        assert_eq!(q.limit, Some(5));
        assert!(q.queue);

        let q = parse_request(r#"{"op":"query","graph":"g","mode":"top","k":4}"#).unwrap();
        let Request::Query(q) = q else { panic!() };
        assert_eq!(q.spec, QuerySpec::TopKBySize { k: 4 });

        let q = parse_request(
            r#"{"op":"query","graph":"g","mode":"kclique","k":3,"scheduler":"splitting","threads":2}"#,
        )
        .unwrap();
        let Request::Query(q) = q else { panic!() };
        assert_eq!(q.spec, QuerySpec::KClique { k: 3 });
        assert_eq!(q.scheduler, Some(RootScheduler::Splitting));
        assert_eq!(q.threads, Some(2));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"op":"warp"}"#,
            r#"{"op":"query"}"#,
            r#"{"op":"query","graph":"g","mode":"top"}"#,
            r#"{"op":"query","graph":"g","mode":"kclique","k":0}"#,
            r#"{"op":"query","graph":"g","mode":"anchored"}"#,
            r#"{"op":"query","graph":"g","anchor":[1]}"#,
            r#"{"op":"query","graph":"g","k":3}"#,
            r#"{"op":"query","graph":"g","threads":0}"#,
            r#"{"op":"query","graph":"g","bogus":1}"#,
            r#"{"op":"query","graph":"g","scheduler":"fifo"}"#,
            r#"{"op":"load","name":"g"}"#,
            r#"{"op":"load","name":"g","path":"a","content":"b"}"#,
            r#"{"op":"load","name":"","content":"0 1"}"#,
            r#"{"op":"ping","extra":true}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn frames_are_single_line_json() {
        for frame in [
            pong_frame(),
            shutdown_frame(),
            error_frame(ErrorCode::UnknownGraph, "no graph 'g'"),
            loaded_frame("g", 60, 343, 1),
            evicted_frame("g"),
            graphs_frame(&[("g".into(), 60, 343, 1)]),
            metrics_frame("scalar", &[("sessions_started", 4)]),
            begin_frame(1, "g", 1),
            end_frame(1, "complete", 114, 8, false, false, Some(114)),
            end_frame(1, "truncated (deadline exceeded)", 3, 4, true, true, None),
        ] {
            assert!(!frame.contains('\n'), "{frame}");
            let v = json::parse(&frame).unwrap();
            assert!(v.get("type").is_some(), "{frame}");
            assert!(frame.starts_with(r#"{"type":""#), "{frame}");
        }
    }

    #[test]
    fn error_codes_have_stable_spellings() {
        assert_eq!(ErrorCode::BadRequest.as_str(), "bad-request");
        assert_eq!(ErrorCode::Oversized.as_str(), "oversized-line");
        assert_eq!(ErrorCode::UnknownGraph.as_str(), "unknown-graph");
        assert_eq!(ErrorCode::LoadFailed.as_str(), "load-failed");
        assert_eq!(ErrorCode::Capacity.as_str(), "capacity");
        assert_eq!(ErrorCode::Quota.as_str(), "quota");
        assert_eq!(ErrorCode::ShuttingDown.as_str(), "shutting-down");
        assert_eq!(ErrorCode::Internal.as_str(), "internal-error");
    }

    #[test]
    fn deadline_ms_parses_and_unknown_fields_still_reject() {
        let q = parse_request(r#"{"op":"query","graph":"g","deadline_ms":250}"#).unwrap();
        let Request::Query(q) = q else { panic!() };
        assert_eq!(q.deadline_ms, Some(250));
        assert!(parse_request(r#"{"op":"query","graph":"g","deadline_ms":"soon"}"#).is_err());
    }

    #[test]
    fn degraded_flag_is_emitted_only_when_set() {
        let plain = end_frame(7, "complete", 2, 3, false, false, None);
        assert!(!plain.contains("degraded"), "{plain}");
        let degraded = end_frame(7, "truncated (step limit)", 2, 3, true, true, None);
        assert!(degraded.contains(r#""degraded":true"#), "{degraded}");
    }
}
