//! Server-wide aggregate counters behind the `metrics` request.
//!
//! Sessions fold their per-run [`EnumerationStats`]
//! into these atomics when they finish; the `metrics` frame is a consistent
//! enough snapshot for monitoring (individual loads are `Relaxed` — the
//! counters are monotone and independent).

use std::sync::atomic::{AtomicU64, Ordering};

use hbbmc::EnumerationStats;

/// The aggregate counter set. All counters are monotone.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request lines parsed successfully.
    pub requests: AtomicU64,
    /// Error frames emitted (any code).
    pub errors: AtomicU64,
    /// Query sessions admitted and started.
    pub sessions_started: AtomicU64,
    /// Query sessions that ran to a complete outcome.
    pub sessions_completed: AtomicU64,
    /// Query sessions truncated by budget or cancellation.
    pub sessions_truncated: AtomicU64,
    /// Query requests rejected at admission (capacity/quota/shutdown).
    pub sessions_rejected: AtomicU64,
    /// Highest number of concurrently running sessions observed.
    pub peak_sessions: AtomicU64,
    /// Cliques streamed or counted across all finished sessions.
    pub cliques_emitted: AtomicU64,
    /// Branch evaluations across all finished sessions (the paper's `#Calls`).
    pub recursive_calls: AtomicU64,
    /// Abandoned recursion frames across all truncated sessions.
    pub terminated_by_budget: AtomicU64,
    /// Budget steps charged across all finished sessions.
    pub budget_steps: AtomicU64,
    /// Sessions admitted under overload with a pre-clamped (degraded) budget.
    pub sessions_degraded: AtomicU64,
    /// Connections reaped by the idle timeout (slow or half-dead clients).
    pub connections_reaped: AtomicU64,
    /// Worker or handler panics contained without taking the server down.
    pub panics_contained: AtomicU64,
}

impl Metrics {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter by 1.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `current` concurrently running sessions, keeping the peak.
    pub fn observe_sessions(&self, current: u64) {
        self.peak_sessions.fetch_max(current, Ordering::Relaxed);
    }

    /// Folds one finished session's statistics into the aggregates.
    pub fn record_session(&self, stats: &EnumerationStats, budget_steps: u64, truncated: bool) {
        if truncated {
            Self::bump(&self.sessions_truncated);
        } else {
            Self::bump(&self.sessions_completed);
        }
        self.cliques_emitted
            .fetch_add(stats.maximal_cliques, Ordering::Relaxed);
        self.recursive_calls
            .fetch_add(stats.recursive_calls, Ordering::Relaxed);
        self.terminated_by_budget
            .fetch_add(stats.terminated_by_budget, Ordering::Relaxed);
        self.budget_steps.fetch_add(budget_steps, Ordering::Relaxed);
    }

    /// Snapshot in the fixed key order of the `metrics` frame.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("connections", get(&self.connections)),
            ("requests", get(&self.requests)),
            ("errors", get(&self.errors)),
            ("sessions_started", get(&self.sessions_started)),
            ("sessions_completed", get(&self.sessions_completed)),
            ("sessions_truncated", get(&self.sessions_truncated)),
            ("sessions_rejected", get(&self.sessions_rejected)),
            ("peak_sessions", get(&self.peak_sessions)),
            ("cliques_emitted", get(&self.cliques_emitted)),
            ("recursive_calls", get(&self.recursive_calls)),
            ("terminated_by_budget", get(&self.terminated_by_budget)),
            ("budget_steps", get(&self.budget_steps)),
            ("sessions_degraded", get(&self.sessions_degraded)),
            ("connections_reaped", get(&self.connections_reaped)),
            ("panics_contained", get(&self.panics_contained)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_session_splits_complete_and_truncated() {
        let m = Metrics::new();
        let stats = EnumerationStats {
            maximal_cliques: 5,
            recursive_calls: 9,
            terminated_by_budget: 2,
            ..EnumerationStats::default()
        };
        m.record_session(&stats, 7, true);
        m.record_session(&stats, 3, false);
        let snap: std::collections::HashMap<_, _> = m.snapshot().into_iter().collect();
        assert_eq!(snap["sessions_completed"], 1);
        assert_eq!(snap["sessions_truncated"], 1);
        assert_eq!(snap["cliques_emitted"], 10);
        assert_eq!(snap["recursive_calls"], 18);
        assert_eq!(snap["terminated_by_budget"], 4);
        assert_eq!(snap["budget_steps"], 10);
    }

    #[test]
    fn peak_sessions_keeps_maximum() {
        let m = Metrics::new();
        m.observe_sessions(2);
        m.observe_sessions(5);
        m.observe_sessions(3);
        let snap: std::collections::HashMap<_, _> = m.snapshot().into_iter().collect();
        assert_eq!(snap["peak_sessions"], 5);
    }

    #[test]
    fn snapshot_key_order_is_stable() {
        let keys: Vec<_> = Metrics::new()
            .snapshot()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys[0], "connections");
        assert_eq!(keys.last().copied(), Some("panics_contained"));
        assert_eq!(keys.len(), 15);
    }
}
