//! `mce serve` — a zero-dependency enumeration daemon speaking
//! newline-delimited JSON over TCP.
//!
//! One request per line, one or more single-line JSON response frames per
//! request. Clients `load` named graphs into a registry, then run
//! concurrent budgeted `query` sessions against them; every query maps onto
//! the unified query engine ([`hbbmc::ExecSession`]), so a truncated
//! response's clique bytes are an exact prefix of the complete response at
//! any thread count and scheduler. See the README's wire-protocol
//! reference for the full request/response vocabulary.
//!
//! Module layout:
//! - [`json`]: hand-rolled JSON (parse with a depth cap, order-preserving
//!   render) in the same no-dependency idiom as the CLI argument parser;
//! - [`protocol`]: request parsing and response-frame builders;
//! - [`registry`]: the named-graph registry (`Arc`-pinned entries, so
//!   `evict` never races in-flight queries);
//! - [`metrics`]: server-wide aggregate counters;
//! - [`server`]: listener, connection threads, admission control, graceful
//!   shutdown;
//! - [`testkit`]: in-process harness for the integration tests and
//!   `bench_serve`.

pub mod json;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod testkit;

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::query::parse_scheduler;

pub use server::{ServeConfig, Server, ServerHandle};

/// Per-command help text.
pub const HELP: &str = "usage: mce serve [options]

Serves enumeration queries over TCP, one newline-delimited JSON request per
line. Clients load named graphs into a registry and run concurrent budgeted
query sessions against them; streamed cliques are deterministic, so any
truncated response is an exact byte-prefix of the complete one. See the
README's wire-protocol reference for the request/response vocabulary.

options:
  --addr HOST:PORT         listen address (default: 127.0.0.1:7171;
                           port 0 picks a free port)
  --max-sessions N         concurrently running query sessions, 1..=1024
                           (default: 4); excess queries fail fast with a
                           'capacity' error unless they set \"queue\":true
  --threads N              default worker threads per query (default: 1)
  --max-threads N          cap on per-query worker threads (default: 8)
  --default-max-steps N    step budget for queries without 'max_steps'
  --client-max-steps N     per-connection branch-step quota
  --client-max-cliques N   per-connection clique quota
  --scheduler dynamic|static|splitting   default root scheduler
  --preset NAME            default solver preset (default: HBBMC++)
  --max-line-bytes N       request-line length cap (default: 1048576)
  --idle-timeout-secs N    close connections with no request for N seconds
                           (default: 300; 0 disables reaping)
  --write-timeout-secs N   fail a response write the client has not drained
                           for N seconds, cancelling its session
                           (default: 30; 0 waits forever)
  --default-deadline-ms N  wall-clock deadline for queries without
                           'deadline_ms'; truncated responses stay exact
                           byte-prefixes of the complete ones
  --degrade-high-water N   with N sessions already running, admit new ones
                           with a degraded (step-clamped) budget instead of
                           queueing them; end frames carry \"degraded\":true
                           (default: off)
  --degrade-max-steps N    step clamp for degraded sessions (default: 10000)
  --kernel scalar|avx2|neon  word-kernel backend for every session (default:
                           the widest arm the CPU supports; MCE_KERNEL sets
                           the same override). Reported by 'metrics'. Never
                           changes response bytes — only throughput";

const VALUE_OPTS: &[&str] = &[
    "--addr",
    "--max-sessions",
    "--threads",
    "--max-threads",
    "--default-max-steps",
    "--client-max-steps",
    "--client-max-cliques",
    "--scheduler",
    "--preset",
    "--max-line-bytes",
    "--idle-timeout-secs",
    "--write-timeout-secs",
    "--default-deadline-ms",
    "--degrade-high-water",
    "--degrade-max-steps",
    "--kernel",
];
const BOOL_FLAGS: &[&str] = &[];

/// Builds the [`ServeConfig`] from parsed flags.
fn parse_config(p: &ParsedArgs) -> Result<ServeConfig, CliError> {
    let defaults = ServeConfig::default();
    // Timeout flags use 0 to mean "disabled" so the CLI has no bool flags.
    let secs_or_off = |value: u64| (value > 0).then(|| std::time::Duration::from_secs(value));
    Ok(ServeConfig {
        addr: p.value("--addr").unwrap_or(&defaults.addr).to_string(),
        max_sessions: p.usize_value("--max-sessions", defaults.max_sessions, 1, 1024)?,
        default_threads: p.usize_value("--threads", defaults.default_threads, 1, 1024)?,
        max_threads: p.usize_value("--max-threads", defaults.max_threads, 1, 1024)?,
        default_max_steps: p.opt_u64("--default-max-steps")?,
        client_max_steps: p.opt_u64("--client-max-steps")?,
        client_max_cliques: p.opt_u64("--client-max-cliques")?,
        scheduler: parse_scheduler(p.value("--scheduler"))?,
        preset: p.value("--preset").unwrap_or(&defaults.preset).to_string(),
        max_line_bytes: p.usize_value("--max-line-bytes", defaults.max_line_bytes, 64, 1 << 30)?,
        idle_timeout: secs_or_off(p.u64_value("--idle-timeout-secs", 300)?),
        write_timeout: secs_or_off(p.u64_value("--write-timeout-secs", 30)?),
        default_deadline_ms: p.opt_u64("--default-deadline-ms")?,
        degrade_high_water: p
            .opt_u64("--degrade-high-water")?
            .map(|high_water| high_water as usize),
        degrade_max_steps: p.u64_value("--degrade-max-steps", defaults.degrade_max_steps)?,
        chaos_panic_graph: None,
        chaos_panic_after: 0,
    })
}

/// Runs the subcommand: binds, announces the address on stderr and serves
/// until a client sends `shutdown`.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, VALUE_OPTS, BOOL_FLAGS)?;
    p.reject_extra_positionals(0)?;
    crate::kernel::init(p.value("--kernel"))?;
    let config = parse_config(&p)?;
    let server =
        Server::bind(config).map_err(|e| CliError::runtime(format!("binding listener: {e}")))?;
    eprintln!("mce serve: listening on {}", server.local_addr());
    server
        .serve()
        .map_err(|e| CliError::runtime(format!("serving: {e}")))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hbbmc::RootScheduler;
    use std::time::Duration;

    fn parse(args: &[&str]) -> Result<ServeConfig, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_config(&ParsedArgs::parse(&args, VALUE_OPTS, BOOL_FLAGS)?)
    }

    #[test]
    fn defaults_match_serve_config() {
        let config = parse(&[]).unwrap();
        assert_eq!(config.addr, "127.0.0.1:7171");
        assert_eq!(config.max_sessions, 4);
        assert_eq!(config.default_threads, 1);
        assert_eq!(config.max_threads, 8);
        assert_eq!(config.default_max_steps, None);
        assert_eq!(config.scheduler, RootScheduler::Dynamic);
        assert_eq!(config.preset, "HBBMC++");
        assert_eq!(config.max_line_bytes, 1 << 20);
        assert_eq!(config.idle_timeout, Some(Duration::from_secs(300)));
        assert_eq!(config.write_timeout, Some(Duration::from_secs(30)));
        assert_eq!(config.default_deadline_ms, None);
        assert_eq!(config.degrade_high_water, None);
        assert_eq!(config.degrade_max_steps, 10_000);
        assert_eq!(config.chaos_panic_graph, None);
    }

    #[test]
    fn robustness_flags_parse_and_zero_disables_timeouts() {
        let config = parse(&[
            "--idle-timeout-secs",
            "7",
            "--write-timeout-secs",
            "0",
            "--default-deadline-ms",
            "1500",
            "--degrade-high-water",
            "3",
            "--degrade-max-steps",
            "250",
        ])
        .unwrap();
        assert_eq!(config.idle_timeout, Some(Duration::from_secs(7)));
        assert_eq!(config.write_timeout, None);
        assert_eq!(config.default_deadline_ms, Some(1500));
        assert_eq!(config.degrade_high_water, Some(3));
        assert_eq!(config.degrade_max_steps, 250);

        let off = parse(&["--idle-timeout-secs", "0"]).unwrap();
        assert_eq!(off.idle_timeout, None);
    }

    #[test]
    fn flags_override_defaults() {
        let config = parse(&[
            "--addr",
            "0.0.0.0:0",
            "--max-sessions",
            "2",
            "--threads",
            "4",
            "--default-max-steps",
            "1000",
            "--client-max-cliques",
            "50",
            "--scheduler",
            "splitting",
            "--max-line-bytes",
            "4096",
        ])
        .unwrap();
        assert_eq!(config.addr, "0.0.0.0:0");
        assert_eq!(config.max_sessions, 2);
        assert_eq!(config.default_threads, 4);
        assert_eq!(config.default_max_steps, Some(1000));
        assert_eq!(config.client_max_cliques, Some(50));
        assert_eq!(config.scheduler, RootScheduler::Splitting);
        assert_eq!(config.max_line_bytes, 4096);
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        assert!(parse(&["--max-sessions", "0"]).is_err());
        assert!(parse(&["--scheduler", "fifo"]).is_err());
        assert!(parse(&["--port", "1"]).is_err());
    }
}
