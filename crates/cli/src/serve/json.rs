//! Minimal JSON for the serve wire protocol.
//!
//! The build environment is fully offline (no `serde`), so the daemon parses
//! and renders its newline-delimited JSON frames with the same hand-rolled
//! idiom as the [`args`](crate::args) parser. The model is deliberately
//! small: one [`Value`] enum, a recursive-descent parser with a hard nesting
//! cap (malformed input must produce a typed error frame, never a stack
//! overflow), and a compact single-line renderer that preserves object key
//! order — the property the golden wire corpus' byte-for-byte replay relies
//! on.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Protocol frames are flat (depth
/// 2–3); the cap exists so adversarial `[[[[…` input errors out instead of
/// overflowing the stack.
const MAX_DEPTH: usize = 64;

/// A parsed or to-be-rendered JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved by the renderer.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is an integral
    /// number in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key set of an object value (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Renders the value as compact single-line JSON (no whitespace), with
    /// object keys in insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => escape_into(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a quoted JSON string with standard escaping.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("value nested too deeply".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: require a \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err("invalid low surrogate".to_string());
                                    }
                                    let cp = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err("invalid \\u escape".to_string()),
                            }
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed so multi-byte UTF-8
                    // sequences stay intact.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err("invalid utf-8 in string".to_string()),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let slice = &self.bytes[self.pos..self.pos + 4];
        let text = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}'"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shaped_objects() {
        let text = r#"{"op":"query","graph":"g1","limit":3,"queue":true,"anchor":[0,1]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("query"));
        assert_eq!(v.get("limit").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("queue").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("anchor").and_then(Value::as_array).unwrap().len(), 2);
        assert_eq!(v.render(), text);
    }

    #[test]
    fn renders_escapes_and_reparses() {
        let v = Value::obj(vec![(
            "message",
            Value::Str("line\nwith \"quotes\" \\ and \u{0001}".into()),
        )]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01x",
            "{\"a\":1} trailing",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Value::Num(42.0).render(), "42");
        assert_eq!(Value::Num(0.5).render(), "0.5");
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
