//! The TCP server: listener, per-connection reader/handler threads, query
//! session execution, admission control and graceful shutdown.
//!
//! Threading model: the accept loop spawns one *handler* thread per
//! connection immediately (a slow or idle client can therefore never block
//! `accept`). Each handler spawns a *reader* thread that owns a cloned
//! stream and parses request lines; requests flow to the handler over a
//! channel, so the handler writes every response frame itself and frames
//! never interleave. The reader services `cancel` requests directly — that
//! is the whole point of the split: cancellation must land while the handler
//! is blocked inside a running query.
//!
//! Query sessions run on the handler thread but are globally admission
//! controlled: a counter + condvar caps concurrently running sessions at
//! [`ServeConfig::max_sessions`]; `queue:true` requests wait for a slot
//! (waking every 100 ms to observe shutdown), others fail fast with a
//! `capacity` error frame. Graceful shutdown trips every live session's
//! [`CancelToken`], wakes all waiters and pokes the listener, then the
//! accept loop drains its handler threads.

use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hbbmc::{
    Budget, CancelToken, CliqueLineFormat, CliqueReporter, CountReporter, ExecSession, Query,
    QueryValue, RootScheduler, SolverConfig, VertexId, WriterReporter,
};

use super::metrics::Metrics;
use super::protocol::{self, ErrorCode, QueryRequest, Request};
use super::registry::Registry;
use crate::io::FormatArg;

/// How often blocked waits (handler channel, admission queue) wake to
/// observe the shutdown flag.
const TICK: Duration = Duration::from_millis(100);

/// Server configuration (the `mce serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port 0 picks a free port).
    pub addr: String,
    /// Maximum concurrently *running* query sessions across all connections.
    pub max_sessions: usize,
    /// Worker threads per query when the request does not say.
    pub default_threads: usize,
    /// Hard cap on per-query worker threads.
    pub max_threads: usize,
    /// Step budget applied to queries that do not carry `max_steps`.
    pub default_max_steps: Option<u64>,
    /// Per-connection branch-step quota across all of its queries.
    pub client_max_steps: Option<u64>,
    /// Per-connection clique quota across all of its queries.
    pub client_max_cliques: Option<u64>,
    /// Root scheduler for queries that do not carry `scheduler`.
    pub scheduler: RootScheduler,
    /// Solver preset for queries that do not carry `preset`.
    pub preset: String,
    /// Request lines longer than this are rejected and the connection
    /// closed (there is no way to resynchronise mid-line).
    pub max_line_bytes: usize,
    /// Connections with no parsed request for this long are reaped (socket
    /// closed, handler and reader threads joined). `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Kernel-level write timeout per response write; a client that stops
    /// draining its socket for this long fails its session's writes, which
    /// cancels the session instead of leaking it. `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// Wall-clock deadline applied to queries that do not carry
    /// `deadline_ms` (the request value is clamped to this when both exist).
    pub default_deadline_ms: Option<u64>,
    /// Graceful-degradation high-water mark: when this many sessions are
    /// already running at admission time, new sessions are admitted with
    /// their step budget pre-clamped to [`ServeConfig::degrade_max_steps`]
    /// and their end frame carries `degraded: true`. `None` disables
    /// degradation (sessions queue or fail fast as before).
    pub degrade_high_water: Option<usize>,
    /// The step-budget clamp applied to sessions admitted under overload.
    pub degrade_max_steps: u64,
    /// Fault injection (chaos tests only, not reachable from the CLI):
    /// streaming queries against this graph panic mid-enumeration.
    pub chaos_panic_graph: Option<String>,
    /// How many cliques a chaos-targeted session reports before panicking.
    pub chaos_panic_after: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            max_sessions: 4,
            default_threads: 1,
            max_threads: 8,
            default_max_steps: None,
            client_max_steps: None,
            client_max_cliques: None,
            scheduler: RootScheduler::Dynamic,
            preset: "HBBMC++".to_string(),
            max_line_bytes: 1 << 20,
            idle_timeout: Some(Duration::from_secs(300)),
            write_timeout: Some(Duration::from_secs(30)),
            default_deadline_ms: None,
            degrade_high_water: None,
            degrade_max_steps: 10_000,
            chaos_panic_graph: None,
            chaos_panic_after: 0,
        }
    }
}

/// State shared by the accept loop, every connection and [`ServerHandle`]s.
#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    registry: Registry,
    metrics: Metrics,
    shutdown: AtomicBool,
    running_sessions: Mutex<usize>,
    sessions_cv: Condvar,
    live: Mutex<HashMap<u64, CancelToken>>,
    next_session: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Idempotently starts shutdown: trips every live session's token, wakes
    /// admission waiters and pokes the listener so `accept` returns.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for token in self.live.lock().unwrap_or_else(|e| e.into_inner()).values() {
            token.cancel();
        }
        self.sessions_cv.notify_all();
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
    }

    /// Admission control: takes one of the `max_sessions` slots, queueing
    /// when asked to. Fails with the [`ErrorCode`] the rejection frame
    /// should carry.
    /// Takes one of the `max_sessions` slots, reporting whether the server
    /// crossed the graceful-degradation high-water mark at admission time
    /// (the session then runs with a pre-clamped budget).
    fn acquire_session(&self, queue: bool) -> Result<bool, ErrorCode> {
        let mut count = self
            .running_sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if self.is_shutting_down() {
                return Err(ErrorCode::ShuttingDown);
            }
            if *count < self.config.max_sessions {
                let degraded = self
                    .config
                    .degrade_high_water
                    .is_some_and(|high_water| *count >= high_water);
                *count += 1;
                let current = *count as u64;
                drop(count);
                self.metrics.observe_sessions(current);
                if degraded {
                    Metrics::bump(&self.metrics.sessions_degraded);
                }
                return Ok(degraded);
            }
            if !queue {
                return Err(ErrorCode::Capacity);
            }
            let (guard, _) = self
                .sessions_cv
                .wait_timeout(count, TICK)
                .unwrap_or_else(|e| e.into_inner());
            count = guard;
        }
    }

    fn release_session(&self) {
        let mut count = self
            .running_sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *count = count.saturating_sub(1);
        drop(count);
        self.sessions_cv.notify_all();
    }
}

/// A bound, not-yet-serving server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cloneable remote control for a running (or about-to-run) server.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound listen address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts graceful shutdown: cancels every live query session, stops
    /// admitting new ones and unblocks the accept loop. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

impl Server {
    /// Binds the listener. The registry starts empty; clients populate it
    /// with `load` requests.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                registry: Registry::new(),
                metrics: Metrics::new(),
                shutdown: AtomicBool::new(false),
                running_sessions: Mutex::new(0),
                sessions_cv: Condvar::new(),
                live: Mutex::new(HashMap::new()),
                next_session: AtomicU64::new(0),
                addr,
            }),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A control handle usable from other threads (shutdown, address).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until shutdown, then drains every connection
    /// handler. Each accepted connection gets its own handler thread
    /// immediately, so a slow client never blocks `accept`.
    pub fn serve(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if shared.is_shutting_down() => break,
                Err(e) => return Err(e),
            };
            if shared.is_shutting_down() {
                break;
            }
            Metrics::bump(&shared.metrics.connections);
            let conn_shared = Arc::clone(&shared);
            handlers.push(thread::spawn(move || {
                handle_connection(conn_shared, stream)
            }));
            handlers.retain(|h| !h.is_finished());
        }
        shared.begin_shutdown();
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Bounded line reading.
// ---------------------------------------------------------------------------

/// One `read_line` outcome.
enum LineEvent {
    /// A complete line, without its `\n` (and without a trailing `\r`).
    Line(Vec<u8>),
    /// Clean end of stream at a line boundary.
    Eof,
    /// End of stream in the middle of a line (half-closed mid-request).
    TruncatedEof,
    /// The line exceeded the cap before a `\n` arrived.
    Oversized,
}

/// Reads `\n`-terminated lines without ever buffering more than the cap —
/// the fuzz-input guard `BufRead::read_until` does not provide.
struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
        }
    }

    fn read_line(&mut self, max: usize) -> io::Result<LineEvent> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineEvent::Line(line));
            }
            if self.buf.len() > max {
                return Ok(LineEvent::Oversized);
            }
            let mut chunk = [0u8; 4096];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                return Ok(if self.buf.is_empty() {
                    LineEvent::Eof
                } else {
                    LineEvent::TruncatedEof
                });
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection plumbing.
// ---------------------------------------------------------------------------

/// Reader → handler messages.
enum ReaderMsg {
    /// A parsed non-query request (cancel is serviced by the reader itself).
    Request(Request),
    /// A parsed query, with its connection-scoped query id.
    Query(u64, QueryRequest),
    /// A malformed request line; answered with `bad-request` and survived.
    Bad(String),
    /// An unrecoverable framing problem; answered and then the connection
    /// is closed.
    Fatal(ErrorCode, String),
    /// The client is done sending.
    Eof,
}

/// Cancellation state shared between a connection's reader and handler.
#[derive(Default)]
struct ConnState {
    /// The currently running query and its token.
    running: Option<(u64, CancelToken)>,
    /// Query ids cancelled before they started running.
    pre_cancelled: HashSet<u64>,
    /// The id the reader most recently assigned to a query request.
    last_assigned: u64,
}

fn reader_loop(
    stream: TcpStream,
    max_line: usize,
    tx: Sender<ReaderMsg>,
    conn: Arc<Mutex<ConnState>>,
    shared: Arc<Shared>,
) {
    let mut reader = LineReader::new(stream);
    let mut next_query_id = 0u64;
    loop {
        let event = match reader.read_line(max_line) {
            Ok(event) => event,
            // A reset/aborted connection is a disconnect, not a protocol
            // error.
            Err(_) => LineEvent::Eof,
        };
        match event {
            LineEvent::Eof => {
                let _ = tx.send(ReaderMsg::Eof);
                return;
            }
            LineEvent::TruncatedEof => {
                let _ = tx.send(ReaderMsg::Fatal(
                    ErrorCode::BadRequest,
                    "truncated request line (missing newline)".to_string(),
                ));
                return;
            }
            LineEvent::Oversized => {
                let _ = tx.send(ReaderMsg::Fatal(
                    ErrorCode::Oversized,
                    format!("request line exceeds {max_line} bytes"),
                ));
                return;
            }
            LineEvent::Line(bytes) => {
                let Ok(text) = std::str::from_utf8(&bytes) else {
                    let _ = tx.send(ReaderMsg::Bad("request is not valid UTF-8".to_string()));
                    continue;
                };
                if text.trim().is_empty() {
                    continue;
                }
                match protocol::parse_request(text) {
                    Err(msg) => {
                        let _ = tx.send(ReaderMsg::Bad(msg));
                    }
                    Ok(Request::Cancel { id }) => {
                        Metrics::bump(&shared.metrics.requests);
                        cancel_query(&conn, id);
                    }
                    Ok(Request::Query(q)) => {
                        Metrics::bump(&shared.metrics.requests);
                        next_query_id += 1;
                        conn.lock().unwrap_or_else(|e| e.into_inner()).last_assigned =
                            next_query_id;
                        let _ = tx.send(ReaderMsg::Query(next_query_id, q));
                    }
                    Ok(request) => {
                        Metrics::bump(&shared.metrics.requests);
                        let _ = tx.send(ReaderMsg::Request(request));
                    }
                }
            }
        }
    }
}

/// Services a `cancel` request on the reader thread: trips the running
/// query's token when it matches, otherwise records the id so the query is
/// cancelled the moment it starts. `cancel` without an id targets the
/// running query, falling back to the most recently submitted one.
fn cancel_query(conn: &Mutex<ConnState>, id: Option<u64>) {
    let mut state = conn.lock().unwrap_or_else(|e| e.into_inner());
    let cancelled_running = match (&state.running, id) {
        (Some((_, token)), None) => {
            token.cancel();
            true
        }
        (Some((running_id, token)), Some(want)) if *running_id == want => {
            token.cancel();
            true
        }
        _ => false,
    };
    if !cancelled_running {
        let target = id.unwrap_or(state.last_assigned);
        if target > 0 {
            state.pre_cancelled.insert(target);
        }
    }
}

fn write_frame(w: &mut impl Write, frame: &str) -> io::Result<()> {
    w.write_all(frame.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    let Ok(read_stream) = stream.try_clone() else {
        return;
    };
    // A kernel-level write timeout turns a client that stopped draining its
    // socket into a write error, which cancels its session (CancelWriter)
    // instead of blocking the handler forever.
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    let conn = Arc::new(Mutex::new(ConnState::default()));
    let (tx, rx) = mpsc::channel();
    let reader = {
        let conn = Arc::clone(&conn);
        let shared = Arc::clone(&shared);
        let max_line = shared.config.max_line_bytes;
        thread::spawn(move || reader_loop(read_stream, max_line, tx, conn, shared))
    };

    let mut writer = io::BufWriter::new(stream);
    let mut quota = ClientQuota {
        steps: shared.config.client_max_steps,
        cliques: shared.config.client_max_cliques,
    };
    let mut last_activity = Instant::now();
    loop {
        let msg = match rx.recv_timeout(TICK) {
            Ok(msg) => {
                last_activity = Instant::now();
                msg
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.is_shutting_down() {
                    break;
                }
                if shared
                    .config
                    .idle_timeout
                    .is_some_and(|limit| last_activity.elapsed() >= limit)
                {
                    Metrics::bump(&shared.metrics.connections_reaped);
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // The dispatch below is panic-isolated: a fault that escapes the
        // typed-error paths (they contain engine worker panics already) is
        // answered with an `internal-error` frame and the connection — and
        // above it, the accept loop — keeps going.
        let keep_going = catch_unwind(AssertUnwindSafe(|| match msg {
            ReaderMsg::Eof => Ok(false),
            ReaderMsg::Bad(message) => {
                send_error(&shared, &mut writer, ErrorCode::BadRequest, &message).map(|()| true)
            }
            ReaderMsg::Fatal(code, message) => {
                let _ = send_error(&shared, &mut writer, code, &message);
                Ok(false)
            }
            ReaderMsg::Query(id, request) => {
                run_session(&shared, &conn, &mut quota, &mut writer, id, request)
            }
            ReaderMsg::Request(request) => handle_control(&shared, &mut writer, request),
        }))
        .unwrap_or_else(|_| {
            Metrics::bump(&shared.metrics.panics_contained);
            send_error(
                &shared,
                &mut writer,
                ErrorCode::Internal,
                "request handler fault contained; the connection may continue",
            )
            .map(|()| true)
        });
        match keep_going {
            Ok(true) => {}
            // Clean close, or the client stopped reading — either way the
            // conversation is over.
            Ok(false) | Err(_) => break,
        }
    }
    let _ = writer.flush();
    // Unblock the reader (it may be parked in a blocking read) and reap it.
    let _ = writer.get_ref().shutdown(Shutdown::Both);
    let _ = reader.join();
}

fn send_error(
    shared: &Shared,
    w: &mut impl Write,
    code: ErrorCode,
    message: &str,
) -> io::Result<()> {
    Metrics::bump(&shared.metrics.errors);
    write_frame(w, &protocol::error_frame(code, message))
}

/// Services every non-query, non-cancel request.
fn handle_control(shared: &Shared, w: &mut impl Write, request: Request) -> io::Result<bool> {
    match request {
        Request::Ping => write_frame(w, &protocol::pong_frame())?,
        Request::List => write_frame(w, &protocol::graphs_frame(&shared.registry.list()))?,
        Request::Metrics => write_frame(
            w,
            &protocol::metrics_frame(crate::kernel::active_name(), &shared.metrics.snapshot()),
        )?,
        Request::Shutdown => {
            write_frame(w, &protocol::shutdown_frame())?;
            shared.begin_shutdown();
        }
        Request::Evict { name } => {
            if shared.registry.evict(&name) {
                write_frame(w, &protocol::evicted_frame(&name))?;
            } else {
                send_error(
                    shared,
                    w,
                    ErrorCode::UnknownGraph,
                    &format!("no graph '{name}' is loaded"),
                )?;
            }
        }
        Request::Load {
            name,
            path,
            content,
            format,
        } => {
            let format = match FormatArg::parse(format.as_deref()) {
                Ok(format) => format,
                Err(e) => {
                    send_error(shared, w, ErrorCode::BadRequest, &e.to_string())?;
                    return Ok(true);
                }
            };
            // Path loads go through std::fs::read so binary .mcg files work;
            // inline `content` arrives as JSON text (text formats only).
            let (source_name, bytes) = match (path, content) {
                (Some(path), None) => match std::fs::read(&path) {
                    Ok(bytes) => (path, bytes),
                    Err(e) => {
                        send_error(
                            shared,
                            w,
                            ErrorCode::LoadFailed,
                            &format!("reading {path}: {e}"),
                        )?;
                        return Ok(true);
                    }
                },
                (None, Some(text)) => (name.clone(), text.into_bytes()),
                // parse_request guarantees exactly one of the two.
                _ => unreachable!("load carries exactly one source"),
            };
            match shared.registry.load(&name, &source_name, &bytes, format) {
                Ok(entry) => write_frame(
                    w,
                    &protocol::loaded_frame(
                        &name,
                        entry.graph.n(),
                        entry.graph.m(),
                        entry.generation,
                    ),
                )?,
                Err(message) => send_error(shared, w, ErrorCode::LoadFailed, &message)?,
            }
        }
        // Queries and cancels never reach this function.
        Request::Query(_) | Request::Cancel { .. } => unreachable!("routed elsewhere"),
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Query session execution.
// ---------------------------------------------------------------------------

/// Remaining per-connection quotas.
struct ClientQuota {
    steps: Option<u64>,
    cliques: Option<u64>,
}

fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

fn sub_opt(quota: Option<u64>, used: u64) -> Option<u64> {
    quota.map(|q| q.saturating_sub(used))
}

/// Counts what actually reaches the client, after the budget gate.
struct Tally<R> {
    inner: R,
    emitted: u64,
    max_size: usize,
}

impl<R> Tally<R> {
    fn new(inner: R) -> Self {
        Tally {
            inner,
            emitted: 0,
            max_size: 0,
        }
    }
}

impl<R: CliqueReporter> CliqueReporter for Tally<R> {
    fn report(&mut self, clique: &[VertexId]) {
        self.emitted += 1;
        self.max_size = self.max_size.max(clique.len());
        self.inner.report(clique);
    }
}

/// Fault injection for chaos tests (see [`ServeConfig::chaos_panic_graph`]):
/// panics once the fuse burns out, exercising the engine's panic containment
/// from inside a real session. With `fuse: None` (every CLI-started server)
/// this is a transparent pass-through.
struct ChaosReporter<R> {
    inner: R,
    fuse: Option<u64>,
}

impl<R: CliqueReporter> CliqueReporter for ChaosReporter<R> {
    fn report(&mut self, clique: &[VertexId]) {
        if let Some(remaining) = &mut self.fuse {
            if *remaining == 0 {
                panic!("injected chaos fault: reporter fuse burned out");
            }
            *remaining -= 1;
        }
        self.inner.report(clique);
    }
}

/// Cancels the session the moment a write fails, so a disconnected client
/// stops consuming enumeration work instead of streaming into the void.
struct CancelWriter<W: Write> {
    inner: W,
    token: CancelToken,
}

impl<W: Write> Write for CancelWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf).map_err(|e| {
            self.token.cancel();
            e
        })
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush().map_err(|e| {
            self.token.cancel();
            e
        })
    }
}

/// Writes a rejection (`capacity` / `quota` / `shutting-down`) error frame
/// and counts it.
fn reject(
    shared: &Shared,
    writer: &mut impl Write,
    code: ErrorCode,
    message: &str,
) -> io::Result<bool> {
    Metrics::bump(&shared.metrics.sessions_rejected);
    send_error(shared, writer, code, message)?;
    Ok(true)
}

fn run_session<W: Write + Send>(
    shared: &Shared,
    conn: &Mutex<ConnState>,
    quota: &mut ClientQuota,
    writer: &mut W,
    id: u64,
    request: QueryRequest,
) -> io::Result<bool> {
    if shared.is_shutting_down() {
        return reject(
            shared,
            writer,
            ErrorCode::ShuttingDown,
            "server is shutting down",
        );
    }
    let Some(entry) = shared.registry.get(&request.graph) else {
        send_error(
            shared,
            writer,
            ErrorCode::UnknownGraph,
            &format!("no graph '{}' is loaded", request.graph),
        )?;
        return Ok(true);
    };
    let preset = request.preset.as_deref().unwrap_or(&shared.config.preset);
    let mut config = match SolverConfig::preset_by_name(preset) {
        Ok(config) => config,
        Err(e) => {
            send_error(shared, writer, ErrorCode::BadRequest, &e.to_string())?;
            return Ok(true);
        }
    };
    config.scheduler = request.scheduler.unwrap_or(shared.config.scheduler);
    if quota.steps == Some(0) {
        return reject(shared, writer, ErrorCode::Quota, "step quota exhausted");
    }
    if quota.cliques == Some(0) {
        return reject(shared, writer, ErrorCode::Quota, "clique quota exhausted");
    }
    // Take a concurrency slot (possibly queueing) before the budget is
    // built: admission under overload pressure degrades the session — its
    // step budget is pre-clamped so it finishes quickly instead of queueing
    // indefinitely behind it. `cancel` sent while we queued is recorded in
    // `pre_cancelled` and applied at registration below.
    let degraded = match shared.acquire_session(request.queue) {
        Ok(degraded) => degraded,
        Err(code) => {
            let message = match code {
                ErrorCode::Capacity => format!(
                    "server is at capacity ({} sessions); retry or set \"queue\":true",
                    shared.config.max_sessions
                ),
                _ => "server is shutting down".to_string(),
            };
            return reject(shared, writer, code, &message);
        }
    };
    let mut budget = Budget {
        max_cliques: min_opt(request.limit, quota.cliques),
        max_steps: min_opt(
            request.max_steps.or(shared.config.default_max_steps),
            quota.steps,
        ),
        cancel: None,
        deadline: min_opt(request.deadline_ms, shared.config.default_deadline_ms)
            .map(Duration::from_millis),
    };
    if degraded {
        budget.max_steps = min_opt(budget.max_steps, Some(shared.config.degrade_max_steps));
    }
    let threads = request
        .threads
        .unwrap_or(shared.config.default_threads)
        .clamp(1, shared.config.max_threads);
    let query = Query {
        spec: request.spec.clone(),
        config,
        threads,
        budget,
    };
    let session = match ExecSession::new(&entry.graph, query) {
        Ok(session) => session,
        Err(e) => {
            shared.release_session();
            send_error(shared, writer, ErrorCode::BadRequest, &e.to_string())?;
            return Ok(true);
        }
    };
    let token = session.cancel_token();
    let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
    shared
        .live
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(session_id, token.clone());
    {
        let mut state = conn.lock().unwrap_or_else(|e| e.into_inner());
        if state.pre_cancelled.remove(&id) {
            token.cancel();
        }
        state.running = Some((id, token.clone()));
    }
    Metrics::bump(&shared.metrics.sessions_started);
    let begin_ok = write_frame(
        writer,
        &protocol::begin_frame(id, &entry.name, entry.generation),
    );

    let streaming = matches!(
        request.spec,
        hbbmc::QuerySpec::Enumerate
            | hbbmc::QuerySpec::Anchored { .. }
            | hbbmc::QuerySpec::KClique { .. }
    );
    let chaos_fuse = (shared.config.chaos_panic_graph.as_deref() == Some(request.graph.as_str()))
        .then_some(shared.config.chaos_panic_after);
    let run = if streaming {
        let cancel_writer = CancelWriter {
            inner: &mut *writer,
            token: token.clone(),
        };
        let mut tally = ChaosReporter {
            inner: Tally::new(WriterReporter::new(cancel_writer, CliqueLineFormat::Ndjson)),
            fuse: chaos_fuse,
        };
        session.try_run(&mut tally).map(|result| {
            let emitted = tally.inner.emitted;
            let max_size = tally.inner.max_size;
            let write_error = tally.inner.inner.take_error();
            (result, emitted, max_size, write_error)
        })
    } else {
        let mut ignored = CountReporter::new();
        session.try_run(&mut ignored).map(|result| {
            let (emitted, max_size, write_error) = match &result.value {
                QueryValue::Count(_) => (0, 0, None),
                QueryValue::TopK(cliques) => {
                    let max_size = cliques.iter().map(Vec::len).max().unwrap_or(0);
                    let mut out = WriterReporter::new(&mut *writer, CliqueLineFormat::Ndjson);
                    for clique in cliques {
                        out.report(clique);
                    }
                    (cliques.len() as u64, max_size, out.take_error())
                }
                QueryValue::Maximum(clique) => {
                    let mut out = WriterReporter::new(&mut *writer, CliqueLineFormat::Ndjson);
                    if clique.is_empty() {
                        (0, 0, None)
                    } else {
                        out.report(clique);
                        (1, clique.len(), out.take_error())
                    }
                }
                QueryValue::Stream => unreachable!("non-streaming specs yield values"),
            };
            (result, emitted, max_size, write_error)
        })
    };

    conn.lock().unwrap_or_else(|e| e.into_inner()).running = None;
    shared
        .live
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&session_id);
    shared.release_session();
    let (result, emitted, max_size, write_error) = match run {
        Ok(parts) => parts,
        Err(error) => {
            // A worker panicked mid-enumeration. The fault was contained by
            // the engine (remaining workers drained, the deterministic
            // prefix was already streamed); report it as a typed frame and
            // keep the connection — concurrent sessions are unaffected.
            Metrics::bump(&shared.metrics.panics_contained);
            send_error(shared, writer, ErrorCode::Internal, &error.to_string())?;
            return Ok(true);
        }
    };
    shared.metrics.record_session(
        &result.stats,
        result.budget_steps,
        result.outcome.is_truncated(),
    );
    quota.steps = sub_opt(quota.steps, result.budget_steps);
    quota.cliques = sub_opt(quota.cliques, emitted);

    if begin_ok.is_err() || write_error.is_some() {
        return Ok(false);
    }
    let count = match result.value {
        QueryValue::Count(n) => Some(n),
        _ => None,
    };
    write_frame(
        writer,
        &protocol::end_frame(
            id,
            &result.outcome.to_string(),
            emitted,
            max_size,
            result.stats.terminated_by_budget > 0,
            degraded,
            count,
        ),
    )?;
    Ok(true)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn line_reader_splits_and_bounds() {
        let mut r = LineReader::new(Cursor::new(b"one\r\ntwo\npartial".to_vec()));
        assert!(matches!(r.read_line(100), Ok(LineEvent::Line(l)) if l == b"one"));
        assert!(matches!(r.read_line(100), Ok(LineEvent::Line(l)) if l == b"two"));
        assert!(matches!(r.read_line(100), Ok(LineEvent::TruncatedEof)));

        let mut r = LineReader::new(Cursor::new(vec![b'x'; 5000]));
        assert!(matches!(r.read_line(64), Ok(LineEvent::Oversized)));

        let mut r = LineReader::new(Cursor::new(Vec::new()));
        assert!(matches!(r.read_line(64), Ok(LineEvent::Eof)));
    }

    #[test]
    fn cancel_writer_trips_token_on_error() {
        struct FailWriter;
        impl Write for FailWriter {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let token = CancelToken::new();
        let mut w = CancelWriter {
            inner: FailWriter,
            token: token.clone(),
        };
        assert!(!token.is_cancelled());
        assert!(w.write(b"x").is_err());
        assert!(token.is_cancelled());
    }

    #[test]
    fn option_quota_arithmetic() {
        assert_eq!(min_opt(None, None), None);
        assert_eq!(min_opt(Some(3), None), Some(3));
        assert_eq!(min_opt(None, Some(7)), Some(7));
        assert_eq!(min_opt(Some(9), Some(7)), Some(7));
        assert_eq!(sub_opt(None, 10), None);
        assert_eq!(sub_opt(Some(10), 3), Some(7));
        assert_eq!(sub_opt(Some(2), 10), Some(0));
    }

    #[test]
    fn cancel_request_routing() {
        let conn = Mutex::new(ConnState::default());
        // No running query, nothing submitted: no-op.
        cancel_query(&conn, None);
        assert!(conn.lock().unwrap().pre_cancelled.is_empty());

        // A submitted-but-not-started query gets pre-cancelled.
        conn.lock().unwrap().last_assigned = 2;
        cancel_query(&conn, None);
        assert!(conn.lock().unwrap().pre_cancelled.contains(&2));

        // A running query is cancelled directly.
        let token = CancelToken::new();
        conn.lock().unwrap().running = Some((3, token.clone()));
        cancel_query(&conn, Some(3));
        assert!(token.is_cancelled());

        // A mismatched id is recorded for later.
        let other = CancelToken::new();
        conn.lock().unwrap().running = Some((4, other.clone()));
        cancel_query(&conn, Some(9));
        assert!(!other.is_cancelled());
        assert!(conn.lock().unwrap().pre_cancelled.contains(&9));
    }

    #[test]
    fn admission_caps_and_releases() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let shared = &server.shared;
        assert_eq!(shared.acquire_session(false), Ok(false));
        assert_eq!(shared.acquire_session(false), Ok(false));
        assert_eq!(shared.acquire_session(false), Err(ErrorCode::Capacity));
        shared.release_session();
        assert!(shared.acquire_session(false).is_ok());
        let snapshot: std::collections::HashMap<_, _> =
            shared.metrics.snapshot().into_iter().collect();
        assert_eq!(snapshot["peak_sessions"], 2);

        shared.begin_shutdown();
        assert_eq!(shared.acquire_session(true), Err(ErrorCode::ShuttingDown));
    }

    #[test]
    fn admission_degrades_past_the_high_water_mark() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 3,
            degrade_high_water: Some(1),
            ..ServeConfig::default()
        })
        .unwrap();
        let shared = &server.shared;
        // Below the mark: normal admission.
        assert_eq!(shared.acquire_session(false), Ok(false));
        // At or above it: admitted, but degraded.
        assert_eq!(shared.acquire_session(false), Ok(true));
        assert_eq!(shared.acquire_session(false), Ok(true));
        // The cap still holds.
        assert_eq!(shared.acquire_session(false), Err(ErrorCode::Capacity));
        let snapshot: std::collections::HashMap<_, _> =
            shared.metrics.snapshot().into_iter().collect();
        assert_eq!(snapshot["sessions_degraded"], 2);
        // Releasing drops the pressure back under the mark.
        shared.release_session();
        shared.release_session();
        shared.release_session();
        assert_eq!(shared.acquire_session(false), Ok(false));
    }

    #[test]
    fn chaos_reporter_passes_through_until_the_fuse_burns() {
        struct Sink(Vec<usize>);
        impl CliqueReporter for Sink {
            fn report(&mut self, clique: &[VertexId]) {
                self.0.push(clique.len());
            }
        }
        let mut quiet = ChaosReporter {
            inner: Sink(Vec::new()),
            fuse: None,
        };
        for _ in 0..100 {
            quiet.report(&[1, 2]);
        }
        assert_eq!(quiet.inner.0.len(), 100);

        let mut armed = ChaosReporter {
            inner: Sink(Vec::new()),
            fuse: Some(2),
        };
        armed.report(&[1]);
        armed.report(&[1, 2]);
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| armed.report(&[3])));
        assert!(boom.is_err());
        assert_eq!(armed.inner.0, vec![1, 2]);
    }
}
