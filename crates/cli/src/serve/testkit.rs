//! In-process server harness: spin up a real `mce serve` instance on an
//! ephemeral loopback port and talk to it over real sockets.
//!
//! Used by the integration tests (`serve_golden`, `serve_property`,
//! `serve_fuzz`, `serve_chaos`) and the `bench_serve` benchmark, so the
//! exercised path is byte-for-byte the production one — only the port and
//! the process boundary differ.
//!
//! # Fault injection
//!
//! The chaos suite drives the server through deterministic client-side
//! faults:
//!
//! - [`FaultSchedule`] + [`TestClient::send_with_faults`] — short writes,
//!   per-chunk stalls and a mid-stream disconnect after a byte budget;
//! - [`TestClient::disconnect`] — abrupt teardown while a response is still
//!   streaming (the server's `CancelWriter` turns the resulting write error
//!   into a session cancellation);
//! - [`TestClient::retry_with_backoff`] — bounded, jitter-free exponential
//!   backoff on `capacity` rejections, so tests (and well-behaved clients)
//!   ride out admission pressure deterministically instead of spinning;
//! - server-side worker panics are injected via
//!   [`ServeConfig::chaos_panic_graph`], not from this module.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use super::server::{ServeConfig, Server, ServerHandle};

/// A server running on a background thread, shut down (and joined) on drop.
#[derive(Debug)]
pub struct TestServer {
    handle: ServerHandle,
    join: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    /// Binds `config` on an ephemeral loopback port (any configured `addr`
    /// is overridden) and starts serving on a background thread.
    pub fn start(mut config: ServeConfig) -> std::io::Result<TestServer> {
        config.addr = "127.0.0.1:0".to_string();
        let server = Server::bind(config)?;
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        Ok(TestServer {
            handle,
            join: Some(join),
        })
    }

    /// The server's actual listen address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The control handle (e.g. to trigger shutdown from a test).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Opens a client connection.
    pub fn connect(&self) -> std::io::Result<TestClient> {
        TestClient::connect(self.addr())
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// A blocking line-oriented client for the serve wire protocol.
#[derive(Debug)]
pub struct TestClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TestClient {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TestClient> {
        let stream = TcpStream::connect(addr)?;
        // A generous safety net so a hung server fails tests instead of
        // hanging them.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TestClient { stream, reader })
    }

    /// Sends one request line (the newline is appended).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Sends raw bytes verbatim (for malformed-framing tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one response line, without its newline. `None` on EOF.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Reads frames until (and including) the terminal frame of one
    /// response: everything except `begin` and clique lines terminates a
    /// response. Errors if the connection closes mid-response.
    pub fn recv_response(&mut self) -> std::io::Result<Vec<String>> {
        let mut frames = Vec::new();
        loop {
            let Some(line) = self.recv_line()? else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("connection closed mid-response after {frames:?}"),
                ));
            };
            let terminal =
                !line.starts_with(r#"{"type":"begin""#) && !line.starts_with(r#"{"size":"#);
            frames.push(line);
            if terminal {
                return Ok(frames);
            }
        }
    }

    /// Sends a request and collects its full response.
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<Vec<String>> {
        self.send_line(request)?;
        self.recv_response()
    }

    /// Sends a request, retrying while the server answers with a single
    /// `capacity` rejection frame. The backoff schedule is deterministic
    /// and jitter-free — `base_delay`, then double per retry — so chaos
    /// runs are reproducible. Returns the first non-`capacity` response,
    /// or the final rejection once `max_attempts` roundtrips are spent.
    pub fn retry_with_backoff(
        &mut self,
        request: &str,
        base_delay: Duration,
        max_attempts: u32,
    ) -> std::io::Result<Vec<String>> {
        let mut delay = base_delay;
        let mut attempt = 0u32;
        loop {
            let frames = self.roundtrip(request)?;
            attempt += 1;
            let rejected = frames.len() == 1 && frames[0].contains(r#""code":"capacity""#);
            if !rejected || attempt >= max_attempts {
                return Ok(frames);
            }
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
    }

    /// Writes `bytes` under a deterministic fault schedule: `chunk`-byte
    /// short writes, each preceded by a `stall`, torn down mid-stream once
    /// `cut_after` bytes have gone out. Returns whether every byte was
    /// sent (`false` means the schedule cut the connection first).
    pub fn send_with_faults(
        &mut self,
        bytes: &[u8],
        schedule: &FaultSchedule,
    ) -> std::io::Result<bool> {
        let mut sent = 0usize;
        for chunk in bytes.chunks(schedule.chunk.max(1)) {
            if schedule.cut_after.is_some_and(|cut| sent >= cut) {
                self.stream.shutdown(Shutdown::Both)?;
                return Ok(false);
            }
            if !schedule.stall.is_zero() {
                std::thread::sleep(schedule.stall);
            }
            self.stream.write_all(chunk)?;
            self.stream.flush()?;
            sent += chunk.len();
        }
        Ok(true)
    }

    /// Abruptly tears the connection down in both directions — the
    /// mid-stream-disconnect fault. The server's next write to this socket
    /// fails, which cancels the session instead of leaking it.
    pub fn disconnect(&mut self) -> std::io::Result<()> {
        self.stream.shutdown(Shutdown::Both)
    }

    /// Half-closes the write side (the server sees EOF while the read side
    /// stays open for its response).
    pub fn half_close(&mut self) -> std::io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }

    /// Drains every remaining line until the server closes the connection.
    pub fn read_to_eof(&mut self) -> std::io::Result<Vec<String>> {
        let mut lines = Vec::new();
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest)?;
        for line in rest.lines() {
            lines.push(line.to_string());
        }
        Ok(lines)
    }
}

/// A deterministic client-side I/O fault plan for
/// [`TestClient::send_with_faults`].
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    /// Bytes per short write (values below 1 behave as 1).
    pub chunk: usize,
    /// Stall inserted before each chunk.
    pub stall: Duration,
    /// Tear the connection down once this many bytes have gone out.
    pub cut_after: Option<usize>,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule {
            chunk: 1,
            stall: Duration::ZERO,
            cut_after: None,
        }
    }
}

/// Builds a `load` request carrying the graph text inline.
pub fn load_request(name: &str, content: &str) -> String {
    let mut escaped = String::new();
    super::json::escape_into(&mut escaped, content);
    format!(r#"{{"op":"load","name":"{name}","content":{escaped}}}"#)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn ping_roundtrip_and_shutdown() {
        let server = TestServer::start(ServeConfig::default()).unwrap();
        let mut client = server.connect().unwrap();
        assert_eq!(
            client.roundtrip(r#"{"op":"ping"}"#).unwrap(),
            vec![r#"{"type":"pong"}"#.to_string()]
        );
        drop(server); // shutdown + join must not hang with a live client
    }

    #[test]
    fn load_query_roundtrip() {
        let server = TestServer::start(ServeConfig::default()).unwrap();
        let mut client = server.connect().unwrap();
        let frames = client
            .roundtrip(&load_request("tri", "0 1\n1 2\n0 2\n"))
            .unwrap();
        assert_eq!(
            frames,
            vec![r#"{"type":"loaded","name":"tri","n":3,"m":3,"generation":1}"#.to_string()]
        );
        let frames = client.roundtrip(r#"{"op":"query","graph":"tri"}"#).unwrap();
        assert_eq!(
            frames,
            vec![
                r#"{"type":"begin","id":1,"graph":"tri","generation":1}"#.to_string(),
                r#"{"size":3,"clique":[0,1,2]}"#.to_string(),
                concat!(
                    r#"{"type":"end","id":1,"outcome":"complete","cliques":1,"#,
                    r#""max_size":3,"budget_terminated":false}"#
                )
                .to_string(),
            ]
        );
    }
}
