//! The named-graph registry behind `load` / `evict` / `list`.
//!
//! Entries are `Arc`-pinned: a query session resolves its graph once at
//! admission and keeps the `Arc` for the whole run, so `evict` (or a
//! replacing `load`) can never pull the data out from under an in-flight
//! session — the map drops its reference and the memory is freed when the
//! last session finishes. A monotonically increasing generation counter
//! distinguishes successive graphs loaded under the same name; the `begin`
//! frame echoes it so clients can tell which generation answered.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mce_graph::io::read_graph_bytes;
use mce_graph::Graph;

use crate::io::FormatArg;

/// An immutable registered graph.
#[derive(Debug)]
pub struct GraphEntry {
    /// Registry name.
    pub name: String,
    /// The graph itself.
    pub graph: Graph,
    /// Which `load` produced it (registry-wide monotone counter).
    pub generation: u64,
}

/// The shared registry.
#[derive(Debug, Default)]
pub struct Registry {
    graphs: RwLock<HashMap<String, Arc<GraphEntry>>>,
    next_generation: AtomicU64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses raw `content` bytes as `format` (auto-resolved from
    /// `source_name` when not fixed — binary `.mcg` payloads are detected by
    /// magic) and registers it under `name`, replacing any previous
    /// generation. Returns the new entry.
    pub fn load(
        &self,
        name: &str,
        source_name: &str,
        content: &[u8],
        format: FormatArg,
    ) -> Result<Arc<GraphEntry>, String> {
        let resolved = format.resolve(source_name, content);
        let graph = read_graph_bytes(content, resolved)
            .map_err(|e| format!("parsing {source_name}: {e}"))?;
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Arc::new(GraphEntry {
            name: name.to_string(),
            graph,
            generation,
        });
        let mut map = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Resolves a name to its current entry, pinning it for the caller.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        let map = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        map.get(name).cloned()
    }

    /// Removes a name. Returns whether it was present. Sessions holding the
    /// entry keep it alive until they finish.
    pub fn evict(&self, name: &str) -> bool {
        let mut map = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        map.remove(name).is_some()
    }

    /// Snapshot of `(name, n, m, generation)` sorted by name.
    pub fn list(&self) -> Vec<(String, usize, usize, u64)> {
        let map = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<_> = map
            .values()
            .map(|e| (e.name.clone(), e.graph.n(), e.graph.m(), e.generation))
            .collect();
        entries.sort();
        entries
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn load_get_evict_roundtrip() {
        let reg = Registry::new();
        let entry = reg
            .load("tri", "tri.txt", b"0 1\n1 2\n0 2\n", FormatArg::Auto)
            .unwrap();
        assert_eq!(entry.generation, 1);
        assert_eq!(entry.graph.n(), 3);
        assert_eq!(entry.graph.m(), 3);
        assert!(reg.get("tri").is_some());
        assert_eq!(reg.list(), vec![("tri".to_string(), 3, 3, 1)]);
        assert!(reg.evict("tri"));
        assert!(!reg.evict("tri"));
        assert!(reg.get("tri").is_none());
    }

    #[test]
    fn reload_bumps_generation_and_pins_old_entry() {
        let reg = Registry::new();
        let first = reg.load("g", "g.txt", b"0 1\n", FormatArg::Auto).unwrap();
        let pinned = reg.get("g").unwrap();
        let second = reg
            .load("g", "g.txt", b"0 1\n1 2\n", FormatArg::Auto)
            .unwrap();
        assert_eq!(first.generation, 1);
        assert_eq!(second.generation, 2);
        // The pinned Arc still sees the old graph even after replacement.
        assert_eq!(pinned.generation, 1);
        assert_eq!(pinned.graph.m(), 1);
        assert_eq!(reg.get("g").unwrap().generation, 2);
    }

    #[test]
    fn load_surfaces_parse_errors() {
        let reg = Registry::new();
        let err = reg
            .load("bad", "bad.txt", b"0 x\n", FormatArg::Auto)
            .unwrap_err();
        assert!(err.contains("bad.txt"), "{err}");
        assert!(reg.get("bad").is_none());
    }
}
