//! Shared `--kernel` / `MCE_KERNEL` handling for the front-end commands.
//!
//! `mce enumerate`, `mce query` and `mce serve` all accept
//! `--kernel scalar|avx2|neon` and honour the `MCE_KERNEL` environment
//! variable. The selection is process-wide and resolved exactly once
//! ([`mce_graph::kernels`]), so the front-ends call [`init`] *before* any
//! graph work: an unknown name or an arm the host CPU cannot run becomes a
//! typed usage error (exit code 2) instead of a silent fallback.

use mce_graph::kernels::{self, KernelBackend};

use crate::error::CliError;

/// Resolves and locks the process-wide kernel backend.
///
/// Precedence: an explicit `--kernel` value wins (the environment variable is
/// not consulted — the flag is the override of the override); otherwise
/// `MCE_KERNEL` is validated strictly via [`kernels::from_env`]; otherwise
/// runtime feature detection picks the widest supported arm lazily. Every
/// [`kernels::KernelError`] maps to [`CliError::Usage`] — bad backend
/// requests are command-line mistakes, not runtime failures.
pub fn init(flag: Option<&str>) -> Result<(), CliError> {
    let requested = match flag {
        Some(name) => Some(
            KernelBackend::parse(name)
                .ok_or_else(|| usage(kernels::KernelError::Unknown(name.to_string())))?,
        ),
        None => kernels::from_env().map_err(usage)?,
    };
    if let Some(backend) = requested {
        kernels::install(backend).map_err(usage)?;
    }
    Ok(())
}

fn usage(e: kernels::KernelError) -> CliError {
    CliError::usage(e.to_string())
}

/// The name of the process-wide backend, for `--stats` output and the serve
/// `metrics` frame (resolves the backend if nothing has run a kernel yet).
pub fn active_name() -> &'static str {
    kernels::active_backend().name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_backend_is_usage() {
        let e = init(Some("sse9")).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(
            e.to_string().contains("unknown kernel backend 'sse9'"),
            "{e}"
        );
    }

    #[test]
    fn unsupported_backend_is_usage() {
        // At most one SIMD arm matches the compile target, so the other is
        // always unsupported regardless of the host CPU.
        let other = if cfg!(target_arch = "x86_64") {
            "neon"
        } else {
            "avx2"
        };
        let e = init(Some(other)).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(
            e.to_string().contains(&format!(
                "kernel backend '{other}' is not supported on this host"
            )),
            "{e}"
        );
    }

    #[test]
    fn no_flag_no_env_is_ok() {
        // MCE_KERNEL is unset in the test environment (CI runs a dedicated
        // job for the env-pinned configuration).
        if std::env::var(kernels::ENV_VAR).is_err() {
            init(None).unwrap();
        }
    }

    #[test]
    fn active_name_is_a_known_backend() {
        assert!(["scalar", "avx2", "neon"].contains(&active_name()));
    }
}
