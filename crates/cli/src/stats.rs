//! `mce stats` — graph and degeneracy summary (the paper's Table I columns).

use std::io::Write;

use mce_graph::{connected_components, Graph, GraphStats};

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::io::{load_graph, open_sink, FormatArg};

/// Per-command help text.
pub const HELP: &str = "usage: mce stats [GRAPH] [options]

Prints the statistics of GRAPH (file or stdin): size, degree, degeneracy,
truss parameter, h-index, density, triangles, connected components and the
paper's complexity condition delta >= max{3, tau + 3 ln(rho)/ln 3}.

options:
  --format edge-list|dimacs|mcg|auto  input format (default: auto)
  --out FILE                       write to FILE instead of stdout";

const VALUE_OPTS: &[&str] = &["--format", "--out"];
const BOOL_FLAGS: &[&str] = &[];

/// Runs the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, VALUE_OPTS, BOOL_FLAGS)?;
    p.reject_extra_positionals(1)?;
    let format = FormatArg::parse(p.value("--format"))?;
    let graph = load_graph(p.positional(0), format)?;
    let mut sink = open_sink(p.value("--out"))?;
    write_stats(&graph, &mut sink)?;
    sink.flush()?;
    Ok(())
}

/// Renders the statistics block for `graph`.
fn write_stats(graph: &Graph, sink: &mut dyn Write) -> Result<(), CliError> {
    let stats = GraphStats::compute(graph);
    let components = connected_components(graph);
    writeln!(sink, "vertices {}", stats.n)?;
    writeln!(sink, "edges {}", stats.m)?;
    writeln!(sink, "max_degree {}", stats.max_degree)?;
    writeln!(sink, "degeneracy {}", stats.degeneracy)?;
    writeln!(sink, "truss_parameter {}", stats.tau)?;
    writeln!(sink, "h_index {}", stats.h_index)?;
    writeln!(sink, "density {:.4}", stats.rho)?;
    writeln!(sink, "triangles {}", stats.triangles)?;
    writeln!(sink, "components {}", components.count)?;
    writeln!(
        sink,
        "condition_threshold {:.4}",
        stats.condition_threshold()
    )?;
    writeln!(
        sink,
        "hbbmc_condition {}",
        if stats.hbbmc_condition_holds() {
            "holds"
        } else {
            "fails"
        }
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_block_lists_every_field() {
        let g = Graph::complete(5);
        let mut out = Vec::new();
        write_stats(&g, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("vertices 5"));
        assert!(text.contains("edges 10"));
        assert!(text.contains("degeneracy 4"));
        assert!(text.contains("components 1"));
        assert!(text.contains("hbbmc_condition "));
        assert_eq!(text.lines().count(), 11);
    }
}
