//! Hand-rolled argument parsing (the build environment is offline, so no
//! `clap`): positionals, `--key value` / `--key=value` options and boolean
//! flags, with strict rejection of anything undeclared.

use std::collections::HashMap;

use crate::error::CliError;

/// Parsed arguments of one subcommand.
#[derive(Debug, Default)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    options: HashMap<&'static str, String>,
    flags: Vec<&'static str>,
}

impl ParsedArgs {
    /// Parses `args` against the declared option/flag names.
    ///
    /// `value_opts` take a value (`--threads 4` or `--threads=4`);
    /// `bool_flags` do not. Unknown `--…` tokens and missing values are usage
    /// errors; everything else is collected as a positional. A literal `-` is
    /// a positional (stdin/stdout placeholder).
    pub fn parse(
        args: &[String],
        value_opts: &'static [&'static str],
        bool_flags: &'static [&'static str],
    ) -> Result<ParsedArgs, CliError> {
        let mut parsed = ParsedArgs::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "-" || !arg.starts_with("--") {
                parsed.positionals.push(arg.clone());
                continue;
            }
            let (name, inline_value) = match arg.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (arg.as_str(), None),
            };
            if let Some(&canonical) = value_opts.iter().find(|&&o| o == name) {
                let value = match inline_value {
                    Some(v) => v,
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| CliError::usage(format!("{name} requires a value")))?,
                };
                parsed.options.insert(canonical, value);
            } else if let Some(&canonical) = bool_flags.iter().find(|&&o| o == name) {
                if inline_value.is_some() {
                    return Err(CliError::usage(format!("{name} does not take a value")));
                }
                parsed.flags.push(canonical);
            } else {
                return Err(CliError::usage(format!("unknown option '{name}'")));
            }
        }
        Ok(parsed)
    }

    /// The `i`-th positional argument, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// Errors when more than `max` positionals were given.
    pub fn reject_extra_positionals(&self, max: usize) -> Result<(), CliError> {
        if self.positionals.len() > max {
            return Err(CliError::usage(format!(
                "unexpected argument '{}'",
                self.positionals[max]
            )));
        }
        Ok(())
    }

    /// The raw value of a `--key value` option.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(&name)
    }

    /// Parses an option as a `usize` within `[min, max]`, with a default.
    pub fn usize_value(
        &self,
        name: &str,
        default: usize,
        min: usize,
        max: usize,
    ) -> Result<usize, CliError> {
        let Some(raw) = self.value(name) else {
            return Ok(default);
        };
        let parsed: usize = raw
            .parse()
            .map_err(|_| CliError::usage(format!("{name}: '{raw}' is not a number")))?;
        if parsed < min || parsed > max {
            return Err(CliError::usage(format!(
                "{name} must be in {min}..={max} (got {parsed})"
            )));
        }
        Ok(parsed)
    }

    /// Parses an option as a `u64`, with a default.
    pub fn u64_value(&self, name: &str, default: u64) -> Result<u64, CliError> {
        let Some(raw) = self.value(name) else {
            return Ok(default);
        };
        raw.parse()
            .map_err(|_| CliError::usage(format!("{name}: '{raw}' is not a number")))
    }

    /// Parses an option as a `u64`, distinguishing "absent" from a value.
    pub fn opt_u64(&self, name: &str) -> Result<Option<u64>, CliError> {
        let Some(raw) = self.value(name) else {
            return Ok(None);
        };
        raw.parse()
            .map(Some)
            .map_err(|_| CliError::usage(format!("{name}: '{raw}' is not a number")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    const VALUES: &[&str] = &["--threads", "--format"];
    const FLAGS: &[&str] = &["--quiet"];

    #[test]
    fn parses_positionals_options_and_flags() {
        let p = ParsedArgs::parse(
            &to_vec(&["graph.txt", "--threads", "4", "--quiet", "-"]),
            VALUES,
            FLAGS,
        )
        .unwrap();
        assert_eq!(p.positional(0), Some("graph.txt"));
        assert_eq!(p.positional(1), Some("-"));
        assert_eq!(p.value("--threads"), Some("4"));
        assert!(p.flag("--quiet"));
        assert_eq!(p.positional_count(), 2);
    }

    #[test]
    fn equals_syntax_is_supported() {
        let p = ParsedArgs::parse(&to_vec(&["--threads=8"]), VALUES, FLAGS).unwrap();
        assert_eq!(p.value("--threads"), Some("8"));
    }

    #[test]
    fn unknown_option_is_usage_error() {
        let e = ParsedArgs::parse(&to_vec(&["--bogus"]), VALUES, FLAGS).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("--bogus"));
    }

    #[test]
    fn missing_value_is_usage_error() {
        let e = ParsedArgs::parse(&to_vec(&["--threads"]), VALUES, FLAGS).unwrap_err();
        assert!(e.to_string().contains("requires a value"));
    }

    #[test]
    fn flag_with_value_is_usage_error() {
        let e = ParsedArgs::parse(&to_vec(&["--quiet=yes"]), VALUES, FLAGS).unwrap_err();
        assert!(e.to_string().contains("does not take a value"));
    }

    #[test]
    fn usize_range_is_enforced() {
        let p = ParsedArgs::parse(&to_vec(&["--threads", "0"]), VALUES, FLAGS).unwrap();
        assert!(p.usize_value("--threads", 1, 1, 1024).is_err());
        let p = ParsedArgs::parse(&to_vec(&["--threads", "7"]), VALUES, FLAGS).unwrap();
        assert_eq!(p.usize_value("--threads", 1, 1, 1024).unwrap(), 7);
        let p = ParsedArgs::parse(&to_vec(&[]), VALUES, FLAGS).unwrap();
        assert_eq!(p.usize_value("--threads", 3, 1, 1024).unwrap(), 3);
    }

    #[test]
    fn extra_positionals_are_rejected() {
        let p = ParsedArgs::parse(&to_vec(&["a", "b"]), VALUES, FLAGS).unwrap();
        assert!(p.reject_extra_positionals(1).is_err());
        assert!(p.reject_extra_positionals(2).is_ok());
    }
}
