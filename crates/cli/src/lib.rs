//! # mce-cli — command-line driver for the HBBMC enumeration pipeline
//!
//! The `mce` binary exposes the whole workspace as subcommands:
//!
//! * [`enumerate`](mod@enumerate) — stream the maximal cliques of a graph
//!   file (or stdin) through one of five output sinks (`count`, `text`,
//!   `ndjson`, `histogram`, `max`), at any thread count, with byte-identical
//!   output regardless of parallelism (the golden-corpus determinism gate),
//!   optionally bounded by `--limit` / `--max-steps`.
//! * [`query`](mod@query) — budgeted, cancellable queries over the unified
//!   engine: anchored enumeration (`--anchor`), top-k by size (`--top`),
//!   counting (`--count`) and k-clique listing (`--kclique`), each with a
//!   `complete` / `truncated` outcome on `--stats`.
//! * [`gen`](mod@gen) — write any named `mce-gen` preset to a graph file.
//! * [`stats`](mod@stats) — Table-I style graph and degeneracy summary.
//! * [`verify`](mod@verify) — re-check an enumeration output against the
//!   naive reference solver.
//! * [`convert`](mod@convert) — translate edge-list ↔ DIMACS ↔ the `.mcg`
//!   binary CSR container (see `docs/FORMAT.md`).
//! * [`serve`](mod@serve) — a newline-delimited-JSON-over-TCP daemon:
//!   named-graph registry, concurrent budgeted query sessions with
//!   admission control and per-client quotas, aggregate metrics and
//!   graceful shutdown.
//!
//! The argument parser is hand-rolled ([`args`]): the build environment is
//! fully offline, so no `clap`. Every failure path returns a [`CliError`]
//! that the binary maps to a one-line stderr message and a non-zero exit
//! code (1 for runtime failures, 2 for usage errors) — no panic is reachable
//! from malformed user input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod convert;
pub mod enumerate;
pub mod error;
pub mod gen;
pub mod io;
pub mod kernel;
pub mod query;
// The daemon must never bring itself down on a recoverable fault: panicking
// unwrap/expect are denied throughout the serve tree (tests are allow-listed
// locally), so every lock uses poison recovery and every fallible path
// returns a typed frame instead.
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod serve;
pub mod stats;
pub mod verify;

pub use error::CliError;

/// Top-level usage text.
pub const USAGE: &str = "mce — maximal clique enumeration (HBBMC, ICDE 2025)

usage: mce <command> [options]

commands:
  enumerate [GRAPH]    enumerate maximal cliques of a graph file or stdin
  query [GRAPH]        budgeted / anchored / top-k / count queries
  gen PRESET           generate a synthetic graph from a named preset
  stats [GRAPH]        print graph + degeneracy statistics
  verify GRAPH [OUT]   check an enumeration output against the naive solver
  convert [IN [OUT]]   convert between edge-list, DIMACS and binary .mcg
  serve                serve queries over TCP (newline-delimited JSON)
  help [COMMAND]       show this message, or a command's options

run 'mce help <command>' or 'mce <command> --help' for command options";

fn help_for(command: &str) -> Option<&'static str> {
    match command {
        "enumerate" => Some(enumerate::HELP),
        "query" => Some(query::HELP),
        "gen" => Some(gen::HELP),
        "stats" => Some(stats::HELP),
        "verify" => Some(verify::HELP),
        "convert" => Some(convert::HELP),
        "serve" => Some(serve::HELP),
        _ => None,
    }
}

/// Dispatches a full argument vector (without the program name).
///
/// Returns `Ok(())` on success; the caller maps [`CliError`] to an exit code.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first().map(String::as_str) else {
        return Err(CliError::usage(USAGE));
    };
    let rest = &args[1..];
    if matches!(command, "--help" | "-h" | "help") {
        match rest.first().map(String::as_str) {
            Some(sub) => match help_for(sub) {
                Some(help) => println!("{help}"),
                None => {
                    return Err(CliError::usage(format!(
                        "unknown command '{sub}'\n\n{USAGE}"
                    )))
                }
            },
            None => println!("{USAGE}"),
        }
        return Ok(());
    }
    // `mce <command> --help` prints the command help and exits 0.
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        match help_for(command) {
            Some(help) => {
                println!("{help}");
                return Ok(());
            }
            None => {
                return Err(CliError::usage(format!(
                    "unknown command '{command}'\n\n{USAGE}"
                )))
            }
        }
    }
    match command {
        "enumerate" => enumerate::run(rest),
        "query" => query::run(rest),
        "gen" => gen::run(rest),
        "stats" => stats::run(rest),
        "verify" => verify::run(rest),
        "convert" => convert::run(rest),
        "serve" => serve::run(rest),
        other => Err(CliError::usage(format!(
            "unknown command '{other}'\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_arguments_is_usage_error() {
        let e = run(&[]).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("usage"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let e = run(&to_vec(&["launch"])).unwrap_err();
        assert!(e.to_string().contains("launch"));
    }

    #[test]
    fn help_succeeds() {
        run(&to_vec(&["help"])).unwrap();
        run(&to_vec(&["--help"])).unwrap();
        run(&to_vec(&["help", "enumerate"])).unwrap();
        run(&to_vec(&["gen", "--help"])).unwrap();
        assert!(run(&to_vec(&["help", "warp"])).is_err());
    }

    #[test]
    fn every_command_has_help() {
        for c in [
            "enumerate",
            "query",
            "gen",
            "stats",
            "verify",
            "convert",
            "serve",
        ] {
            assert!(help_for(c).is_some(), "{c}");
            assert!(help_for(c).unwrap().contains("usage: mce"), "{c}");
        }
    }
}
