//! Property tests for the branch-and-bound maximum-clique engine: the B&B
//! winner must be byte-identical to the enumeration-derived canonical winner
//! on every generator family and topology, at every thread count, and a
//! budget-truncated search must never claim optimality.

use hbbmc::{
    maximum_clique_bb, maximum_clique_bb_with_state, run_query, Budget, CountReporter,
    MaxCliqueState, MaximumCliqueReporter, Query, QuerySpec, QueryValue, TerminatingBound,
};
use mce_gen::{barabasi_albert, erdos_renyi_gnp, planted_communities, planted_hub, PlantedConfig};
use mce_graph::{AdjMatrix, Graph};
use proptest::prelude::*;

/// The enumeration-derived reference: the canonical maximum clique the
/// [`MaximumCliqueReporter`] extracts from the full deterministic stream.
fn enumeration_winner(g: &Graph) -> Vec<u32> {
    let mut best = MaximumCliqueReporter::new();
    run_query(g, Query::new(QuerySpec::Enumerate), &mut best).expect("valid enumeration");
    best.best
}

/// Dense (adjacency-matrix) copy of `g` — the second [`GraphTopology`].
fn dense_copy(g: &Graph) -> AdjMatrix {
    let mut dense = AdjMatrix::new(g.n());
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            dense.insert_sym(v as usize, u as usize);
        }
    }
    dense
}

/// Asserts the B&B engine agrees with the enumeration reference on both
/// topologies and through the query layer at 1/2/4 threads.
fn assert_bb_matches_enumeration(g: &Graph, label: &str) {
    let expected = enumeration_winner(g);
    let (via_csr, stats) = maximum_clique_bb(g);
    assert_eq!(via_csr, expected, "{label}: CSR B&B vs enumeration winner");
    assert_eq!(stats.max_clique_size, expected.len(), "{label}: size stat");
    let (via_dense, _) = maximum_clique_bb(&dense_copy(g));
    assert_eq!(via_dense, expected, "{label}: dense B&B vs enumeration");
    for threads in [1usize, 2, 4] {
        let mut sink = CountReporter::new();
        let result = run_query(
            g,
            Query::new(QuerySpec::MaximumClique).with_threads(threads),
            &mut sink,
        )
        .expect("valid max-clique query");
        assert!(!result.outcome.is_truncated(), "{label} x{threads}");
        assert_eq!(
            result.value,
            QueryValue::Maximum(expected.clone()),
            "{label} x{threads}: query winner"
        );
        assert_ne!(result.terminating_bound(), TerminatingBound::Budget);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bb_matches_enumeration_on_gnp(
        n in 4usize..32,
        p in 0.05f64..0.8,
        seed in 0u64..1000,
    ) {
        let g = erdos_renyi_gnp(n, p, seed);
        assert_bb_matches_enumeration(&g, "gnp");
    }

    #[test]
    fn bb_matches_enumeration_on_ba(
        n in 8usize..40,
        k in 2usize..6,
        seed in 0u64..500,
    ) {
        let g = barabasi_albert(n, k, seed);
        assert_bb_matches_enumeration(&g, "ba");
    }

    #[test]
    fn bb_matches_enumeration_on_planted(
        n in 16usize..40,
        communities in 2usize..5,
        seed in 0u64..500,
    ) {
        let g = planted_communities(&PlantedConfig {
            n,
            communities,
            min_size: 3,
            max_size: 8,
            intra_probability: 1.0,
            background_edges: n,
            seed,
        });
        assert_bb_matches_enumeration(&g, "planted");
    }

    #[test]
    fn bb_matches_enumeration_on_planted_hub(
        parts in 2usize..5,
        part_size in 2usize..5,
    ) {
        let g = planted_hub(parts * part_size + 1, part_size);
        assert_bb_matches_enumeration(&g, "planted-hub");
    }

    /// A step-budgeted search never claims optimality it cannot prove: a
    /// truncated outcome reports budget termination and returns a valid
    /// clique no larger than the true maximum; a complete outcome returns
    /// exactly the canonical winner.
    #[test]
    fn budgeted_bb_never_overclaims(
        n in 6usize..28,
        p in 0.2f64..0.7,
        seed in 0u64..500,
        max_steps in 0u64..60,
    ) {
        let g = erdos_renyi_gnp(n, p, seed);
        let expected = enumeration_winner(&g);
        let mut sink = CountReporter::new();
        let result = run_query(
            &g,
            Query::new(QuerySpec::MaximumClique).with_budget(Budget::steps(max_steps)),
            &mut sink,
        )
        .expect("valid budgeted query");
        let QueryValue::Maximum(best) = result.value.clone() else {
            panic!("expected Maximum value");
        };
        prop_assert!(g.is_clique(&best), "returned set must be a clique");
        prop_assert!(best.len() <= expected.len(), "never larger than the maximum");
        if result.outcome.is_truncated() {
            prop_assert!(result.stats.terminated_by_budget >= 1);
            prop_assert_eq!(result.terminating_bound(), TerminatingBound::Budget);
        } else {
            prop_assert_eq!(&best, &expected, "complete runs return the canonical winner");
        }
        // Same budget, same truncation point: the result is deterministic.
        let mut sink = CountReporter::new();
        let replay = run_query(
            &g,
            Query::new(QuerySpec::MaximumClique).with_budget(Budget::steps(max_steps)),
            &mut sink,
        )
        .expect("valid budgeted query");
        prop_assert_eq!(replay.value, QueryValue::Maximum(best));
        prop_assert_eq!(replay.outcome, result.outcome);
    }

    /// Reusing one [`MaxCliqueState`] across different graphs returns the
    /// same winners as fresh state (no cross-run contamination).
    #[test]
    fn state_reuse_across_graphs_is_clean(
        n in 4usize..24,
        p in 0.1f64..0.7,
        seed in 0u64..300,
    ) {
        let a = erdos_renyi_gnp(n, p, seed);
        let b = erdos_renyi_gnp(n.max(6) - 2, 1.0 - p * 0.5, seed + 1);
        let mut state = MaxCliqueState::new();
        let first = maximum_clique_bb_with_state(&a, &mut state).0;
        let second = maximum_clique_bb_with_state(&b, &mut state).0;
        prop_assert_eq!(first, maximum_clique_bb(&a).0);
        prop_assert_eq!(second, maximum_clique_bb(&b).0);
    }
}
