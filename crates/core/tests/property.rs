//! Property-based tests: every framework configuration must agree with the
//! reference enumerator on randomly generated graphs, and the structural
//! invariants of the output (clique-ness, maximality, uniqueness) must hold.

use hbbmc::{
    enumerate_collect, naive_maximal_cliques, par_count_maximal_cliques, par_enumerate_collect,
    par_enumerate_ordered, verify_cliques, CliqueLineFormat, RootScheduler, SolverConfig,
    WriterReporter,
};
use mce_gen::{
    barabasi_albert, erdos_renyi, erdos_renyi_gnp, moon_moser, planted_communities, planted_hub,
    planted_hub_clique_count, random_t_plex, PlantedConfig,
};
use mce_graph::Graph;
use proptest::prelude::*;

/// Renders the full ordered stream of `g` under `cfg` to text bytes.
fn ordered_text(g: &Graph, cfg: &SolverConfig, threads: usize) -> Vec<u8> {
    let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
    par_enumerate_ordered(g, cfg, threads, &mut reporter).expect("valid config");
    reporter.finish().expect("in-memory sink")
}

/// Strategy: a random graph given as (n, edge list) with n ≤ 28.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..28).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(120))
            .prop_map(move |edges| Graph::from_edges(n, edges).expect("endpoints in range"))
    })
}

/// The configurations exercised by the agreement properties (kept to the most
/// structurally distinct ones so the property tests stay fast).
fn core_configs() -> Vec<(&'static str, SolverConfig)> {
    vec![
        ("HBBMC++", SolverConfig::hbbmc_pp()),
        ("HBBMC+", SolverConfig::hbbmc_plus()),
        ("HBBMC d=2", SolverConfig::hbbmc_pp_depth(2)),
        ("EBBMC", SolverConfig::ebbmc()),
        ("RRef", SolverConfig::r_ref()),
        ("RDegen", SolverConfig::r_degen()),
        ("RRcd", SolverConfig::r_rcd()),
        ("RFac", SolverConfig::r_fac()),
        ("BK", SolverConfig::bk_plain()),
        ("BK_Degree", SolverConfig::bk_degree()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_frameworks_agree_with_reference_on_random_graphs(g in arb_graph()) {
        let expected = naive_maximal_cliques(&g);
        for (name, config) in core_configs() {
            let (got, stats) = enumerate_collect(&g, &config);
            prop_assert_eq!(&got, &expected, "{} on n={} m={}", name, g.n(), g.m());
            prop_assert_eq!(stats.maximal_cliques as usize, expected.len());
        }
    }

    #[test]
    fn output_invariants_hold_on_random_graphs(g in arb_graph()) {
        let (got, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
        prop_assert!(verify_cliques(&g, &got).is_empty());
        // Every vertex belongs to at least one maximal clique.
        for v in g.vertices() {
            prop_assert!(got.iter().any(|c| c.contains(&v)), "vertex {} uncovered", v);
        }
    }

    #[test]
    fn parallel_enumeration_matches_sequential(g in arb_graph(), threads in 1usize..5) {
        let (seq, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
        let (par, _) = par_enumerate_collect(&g, &SolverConfig::hbbmc_pp(), threads);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn early_termination_levels_are_equivalent(g in arb_graph()) {
        let baseline = enumerate_collect(&g, &SolverConfig::hbbmc_pp_et(0)).0;
        for t in 1..=3usize {
            let (got, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp_et(t));
            prop_assert_eq!(&got, &baseline, "t = {}", t);
        }
    }

    #[test]
    fn graph_reduction_does_not_change_the_result(g in arb_graph()) {
        let with_gr = enumerate_collect(&g, &SolverConfig::hbbmc_pp()).0;
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.graph_reduction = false;
        let without_gr = enumerate_collect(&g, &cfg).0;
        prop_assert_eq!(with_gr, without_gr);
    }

    #[test]
    fn random_er_graphs_agree(n in 10usize..60, density in 1usize..8, seed in 0u64..1000) {
        let g = erdos_renyi(n, n * density, seed);
        let expected = naive_maximal_cliques(&g);
        let (got, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn all_presets_agree_on_gnp_graphs(n in 8usize..36, p in 0.05f64..0.6, seed in 0u64..1000) {
        let g = erdos_renyi_gnp(n, p, seed);
        let expected = naive_maximal_cliques(&g);
        for (name, config) in SolverConfig::named_presets() {
            let (got, _) = enumerate_collect(&g, &config);
            prop_assert_eq!(&got, &expected, "{} on G({}, {:.2})", name, n, p);
        }
    }

    #[test]
    fn all_presets_agree_on_planted_clique_graphs(
        n in 16usize..48,
        communities in 2usize..6,
        seed in 0u64..500,
    ) {
        let g = planted_communities(&PlantedConfig {
            n,
            communities,
            min_size: 3,
            max_size: 8,
            intra_probability: 1.0, // planted cliques, not near-cliques
            background_edges: n,
            seed,
        });
        let expected = naive_maximal_cliques(&g);
        for (name, config) in SolverConfig::named_presets() {
            let (got, _) = enumerate_collect(&g, &config);
            prop_assert_eq!(&got, &expected, "{} on planted n={}", name, n);
        }
    }

    #[test]
    fn thread_counts_are_deterministic(n in 10usize..50, density in 1usize..6, seed in 0u64..500) {
        // The same clique count must come out of 1/2/4/8 workers, under the
        // dynamic (work-stealing), static and subtree-splitting schedulers.
        let g = erdos_renyi(n, n * density, seed);
        let expected = naive_maximal_cliques(&g).len() as u64;
        for scheduler in [
            RootScheduler::Dynamic,
            RootScheduler::Static,
            RootScheduler::Splitting,
        ] {
            let mut cfg = SolverConfig::hbbmc_pp();
            cfg.scheduler = scheduler;
            for threads in [1usize, 2, 4, 8] {
                let (count, stats) = par_count_maximal_cliques(&g, &cfg, threads);
                prop_assert_eq!(count, expected, "{:?} x{}", scheduler, threads);
                prop_assert_eq!(stats.maximal_cliques, expected);
            }
        }
    }

    #[test]
    fn splitting_ordered_stream_matches_sequential_on_ba_graphs(
        n in 10usize..44,
        k in 1usize..6,
        seed in 0u64..500,
    ) {
        // The ordered stream must be byte-identical to the sequential one at
        // any thread count, even when sub-branches are donated mid-recursion.
        let g = barabasi_albert(n, k, seed);
        for preset in [SolverConfig::hbbmc_pp(), SolverConfig::r_degen()] {
            let baseline = ordered_text(&g, &preset, 1);
            let mut cfg = preset;
            cfg.scheduler = RootScheduler::Splitting;
            for threads in [1usize, 2, 4, 8] {
                prop_assert_eq!(
                    ordered_text(&g, &cfg, threads),
                    baseline.clone(),
                    "BA n={} k={} seed={} x{}", n, k, seed, threads
                );
            }
        }
    }

    #[test]
    fn splitting_ordered_stream_matches_sequential_on_planted_hub(
        parts in 2usize..5,
        part_size in 2usize..5,
    ) {
        // Planted-hub graphs put the whole recursion tree under one root —
        // the maximum-skew case where the splitting scheduler does the most
        // donation work and must still resequence exactly.
        let g = planted_hub(1 + parts * part_size, part_size);
        let expected = planted_hub_clique_count(g.n(), part_size);
        for preset in [SolverConfig::bk_pivot(), SolverConfig::hbbmc_plus()] {
            let baseline = ordered_text(&g, &preset, 1);
            let mut cfg = preset;
            cfg.scheduler = RootScheduler::Splitting;
            for threads in [1usize, 2, 4, 8] {
                prop_assert_eq!(
                    ordered_text(&g, &cfg, threads),
                    baseline.clone(),
                    "hub parts={} size={} x{}", parts, part_size, threads
                );
            }
            let (count, _) = par_count_maximal_cliques(&g, &cfg, 4);
            prop_assert_eq!(count, expected);
        }
    }

    #[test]
    fn random_ba_graphs_agree(n in 10usize..60, k in 1usize..6, seed in 0u64..1000) {
        let g = barabasi_albert(n, k, seed);
        let expected = naive_maximal_cliques(&g);
        let (got, _) = enumerate_collect(&g, &SolverConfig::r_rcd());
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn random_plexes_agree_and_exercise_early_termination(
        n in 4usize..16,
        t in 1usize..4,
        seed in 0u64..500,
    ) {
        let g = random_t_plex(n, t, seed);
        let expected = naive_maximal_cliques(&g);
        let (got, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
        prop_assert_eq!(got, expected);
    }
}

#[test]
fn moon_moser_counts_match_formula_for_all_main_algorithms() {
    for k in 1..=5usize {
        let g = moon_moser(k);
        let expected = 3u64.pow(k as u32);
        for (name, config) in core_configs() {
            let (got, stats) = enumerate_collect(&g, &config);
            assert_eq!(got.len() as u64, expected, "{name} on Moon–Moser k={k}");
            assert_eq!(stats.maximal_cliques, expected, "{name} stats on k={k}");
        }
    }
}
