//! Verifies the allocation-free steady state of the enumeration hot path.
//!
//! A counting global allocator wraps the system allocator; the tests run the
//! solver once to warm an [`EnumerationState`]'s scratch buffers and then
//! re-run it on the *same* state, asserting that the warm run's allocation
//! count is a small constant — independent of the number of recursive calls.
//! (The warm run still allocates during the root-phase preprocessing: the
//! graph reduction and the vertex/edge ordering build `O(n + m)` vectors.
//! What must not allocate is the recursion itself, which performs orders of
//! magnitude more node visits than the asserted allocation budget.)
//!
//! The library crates `forbid(unsafe_code)`; the `GlobalAlloc` impl is
//! confined to this test crate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hbbmc::MaxCliqueState;
use hbbmc::{maximum_clique_bb_with_state, CountReporter, EnumerationState, Solver, SolverConfig};
use mce_gen::{erdos_renyi, moon_moser};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing Vec reallocates; that counts as allocator traffic too.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Warm-runs `config` on the graph, then measures the allocations of a
/// second run reusing the same state. Returns (warm-run allocations,
/// recursive calls of the warm run).
fn warm_run_allocations(g: &mce_graph::Graph, config: &SolverConfig) -> (u64, u64) {
    let solver = Solver::new(g, *config).expect("valid config");
    let mut state = EnumerationState::new();
    let mut reporter = CountReporter::new();
    solver.run_with_state(&mut state, &mut reporter);

    let mut reporter = CountReporter::new();
    let before = allocations();
    let stats = solver.run_with_state(&mut state, &mut reporter);
    let after = allocations();
    (after - before, stats.recursive_calls)
}

#[test]
fn steady_state_recursion_does_not_allocate() {
    // Moon–Moser K_{3,3,3,3,3,3}: 729 maximal cliques, thousands of recursive
    // calls, every branch dense. ET is disabled (t = 0) because the
    // early-termination emitter intentionally allocates proportional to its
    // output; the claim under test is the branching recursion itself.
    let g = moon_moser(6);
    let mut config = SolverConfig::hbbmc_plus(); // edge-oriented root, t = 0
    config.graph_reduction = false;
    let (allocs, calls) = warm_run_allocations(&g, &config);
    assert!(
        calls > 1_000,
        "expected a deep recursion, got {calls} calls"
    );
    // The per-run budget covers the root plan (edge ordering: a fixed number
    // of O(m) vectors) only. ~30 observed; 120 leaves slack without letting
    // per-node allocations (thousands) hide.
    assert!(
        allocs < 120,
        "warm run allocated {allocs} times over {calls} recursive calls"
    );
}

#[test]
fn steady_state_vertex_recursion_does_not_allocate() {
    let g = erdos_renyi(300, 4_500, 7);
    let mut config = SolverConfig::r_degen(); // vertex-oriented root, classic pivot
    config.graph_reduction = false;
    let (allocs, calls) = warm_run_allocations(&g, &config);
    assert!(
        calls > 5_000,
        "expected a deep recursion, got {calls} calls"
    );
    // The degeneracy ordering allocates one bucket vector per degree value
    // (~240 observed for this instance), so the vertex-root plan budget
    // scales with the max degree — but never with the recursion volume.
    assert!(
        allocs < 600 && allocs * 20 < calls,
        "warm run allocated {allocs} times over {calls} recursive calls"
    );
}

#[test]
fn steady_state_max_clique_search_does_not_allocate() {
    // The branch-and-bound engine shares the enumeration's scratch arena and
    // adds only two coloring bitsets: a warm re-run on the same
    // MaxCliqueState must allocate a small per-plan constant (the degeneracy
    // ordering's vectors and the returned clique), never per node.
    let g = erdos_renyi(300, 4_500, 7);
    let mut state = MaxCliqueState::new();
    let (_, warmup) = maximum_clique_bb_with_state(&g, &mut state);
    assert!(
        warmup.recursive_calls > 100,
        "expected a non-trivial search, got {} calls",
        warmup.recursive_calls
    );
    let before = allocations();
    let (best, stats) = maximum_clique_bb_with_state(&g, &mut state);
    let allocs = allocations() - before;
    assert!(!best.is_empty());
    // The degeneracy ordering allocates one bucket vector per degree value
    // (~240 for this instance, same budget as the vertex-root plan above);
    // the search itself must not add to it.
    assert!(
        allocs < 600,
        "warm B&B run allocated {allocs} times over {} recursive calls",
        stats.recursive_calls
    );
    // And the steady state is exactly steady: a third identical run costs
    // the same fixed plan allocations, not one more.
    let before = allocations();
    let _ = maximum_clique_bb_with_state(&g, &mut state);
    let allocs_again = allocations() - before;
    assert_eq!(
        allocs, allocs_again,
        "warm B&B runs must have a fixed allocation plan"
    );
}

#[test]
fn fused_kernels_are_allocation_free_on_every_backend() {
    // The SIMD arms must share the scalar path's zero-allocation property:
    // once the destination bitset and branch vector are warm, the fused
    // word kernels — pinned per backend through the `*_with` variants, so
    // one process covers scalar *and* the native SIMD arm — touch the
    // allocator exactly never.
    use mce_graph::{BitSet, KernelBackend};
    let mut a = BitSet::with_capacity(4096);
    let row: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1 << (i % 64))
        .collect();
    for i in (0..4096).step_by(3) {
        a.insert(i);
    }
    let mut out = BitSet::with_capacity(4096);
    let mut bits = Vec::with_capacity(4096);
    for backend in KernelBackend::available() {
        let k = backend.table().expect("available implies table");
        // Warm the destination buffers under this backend.
        a.intersect_into_count_with(k, &row, &mut out);
        a.difference_into_with(k, &row, &mut out);
        bits.clear();
        a.and_not_collect_with(k, &row, &mut bits);

        let before = allocations();
        for _ in 0..256 {
            a.intersect_into_count_with(k, &row, &mut out);
            a.difference_into_with(k, &row, &mut out);
            let _ = a.intersection_len_words_with(k, &row);
            bits.clear();
            a.and_not_collect_with(k, &row, &mut bits);
        }
        assert_eq!(
            allocations() - before,
            0,
            "{backend}: fused kernels allocated in the steady state"
        );
    }
}

#[test]
fn steady_state_top_k_search_reuses_its_worker() {
    // The dedicated top-k search rides the same WorkerState scratch slab as
    // plain enumeration: a warm re-run pays the per-plan vectors (root
    // ordering, degeneracy cores, the bound's k-entry heap) but never
    // allocates per node, even with the coloring bound firing.
    use hbbmc::{CollectReporter, Query, QuerySpec};
    let g = erdos_renyi(200, 3_000, 13);
    let run = |reporter: &mut CollectReporter| {
        hbbmc::run_query(&g, Query::new(QuerySpec::TopKBySize { k: 4 }), reporter)
            .expect("valid top-k query")
    };
    let mut reporter = CollectReporter::new();
    let warm = run(&mut reporter);
    assert!(warm.stats.recursive_calls > 100, "trivial search");
    let before = allocations();
    let mut reporter = CollectReporter::new();
    let rerun = run(&mut reporter);
    let allocs = allocations() - before;
    // The query layer rebuilds its per-run state (no cross-run cache), so
    // each run pays the per-plan vectors — but that cost is a constant of
    // the plan, never of the branch count: a second identical run costs
    // exactly the same, and the total stays far below the call volume.
    let before = allocations();
    let mut reporter = CollectReporter::new();
    let _ = run(&mut reporter);
    let allocs_again = allocations() - before;
    assert_eq!(
        allocs, allocs_again,
        "top-k runs must have a fixed allocation plan"
    );
    assert!(
        allocs < 1_200 && allocs * 4 < rerun.stats.recursive_calls,
        "top-k run allocated {allocs} times over {} recursive calls",
        rerun.stats.recursive_calls
    );
}

#[test]
fn allocations_stay_flat_as_recursion_grows() {
    // Tripling the recursion volume must not move the warm-run allocation
    // count beyond the constant root-phase budget: allocations are
    // per-plan, not per-node.
    let mut config = SolverConfig::hbbmc_plus();
    config.graph_reduction = false;
    let (small_allocs, small_calls) = warm_run_allocations(&moon_moser(5), &config);
    let (large_allocs, large_calls) = warm_run_allocations(&moon_moser(7), &config);
    assert!(
        large_calls > 2 * small_calls,
        "recursion did not grow: {small_calls} -> {large_calls}"
    );
    // Allow the small additive wiggle of the bigger plan's vectors, but no
    // proportionality to the call count.
    assert!(
        large_allocs < small_allocs + 60,
        "allocations grew with recursion: {small_allocs} -> {large_allocs} \
         (calls {small_calls} -> {large_calls})"
    );
}
