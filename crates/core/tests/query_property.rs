//! Property tests for the unified query engine: anchored queries against the
//! naive enumerate-then-filter reference, and the budget layer's byte-prefix
//! contract under every scheduler.

use hbbmc::{
    naive_maximal_cliques, run_query, Budget, CancelToken, CliqueLineFormat, CollectReporter,
    CountReporter, Outcome, Query, QuerySpec, QueryValue, RootScheduler, SolverConfig,
    TopKReporter, WriterReporter,
};
use mce_gen::{
    barabasi_albert, erdos_renyi_gnp, moon_moser, planted_communities, turan_graph, PlantedConfig,
};
use mce_graph::{Graph, VertexId};
use proptest::prelude::*;

/// Naive reference for anchored queries: full enumeration filtered by anchor
/// containment.
fn naive_filter(g: &Graph, anchor: &[VertexId]) -> Vec<Vec<VertexId>> {
    naive_maximal_cliques(g)
        .into_iter()
        .filter(|c| anchor.iter().all(|v| c.contains(v)))
        .collect()
}

/// Runs an anchored query and returns the canonically sorted result.
fn anchored(g: &Graph, anchor: &[VertexId], config: &SolverConfig) -> Vec<Vec<VertexId>> {
    let mut collector = CollectReporter::new();
    let result = run_query(
        g,
        Query::new(QuerySpec::Anchored {
            vertices: anchor.to_vec(),
        })
        .with_config(*config),
        &mut collector,
    )
    .expect("valid anchored query");
    assert_eq!(result.outcome, Outcome::Complete);
    collector.into_sorted()
}

/// Renders the full ordered stream of `g` under `query` to text bytes.
fn query_text(g: &Graph, query: Query) -> (Vec<u8>, Outcome) {
    let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
    let result = run_query(g, query, &mut reporter).expect("valid query");
    (reporter.finish().expect("in-memory sink"), result.outcome)
}

fn schedulers() -> [RootScheduler; 3] {
    [
        RootScheduler::Dynamic,
        RootScheduler::Static,
        RootScheduler::Splitting,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Anchored queries equal naive enumerate-then-filter on G(n, p),
    /// for anchors of size 1–3 drawn from the vertex set (clique or not).
    #[test]
    fn anchored_matches_naive_filter_on_gnp(
        n in 4usize..30,
        p in 0.05f64..0.7,
        seed in 0u64..1000,
        raw_anchor in proptest::collection::vec(0u32..30, 1..4),
    ) {
        let g = erdos_renyi_gnp(n, p, seed);
        let anchor: Vec<VertexId> = raw_anchor.into_iter().map(|v| v % n as u32).collect();
        let expected = naive_filter(&g, &anchor);
        let got = anchored(&g, &anchor, &SolverConfig::hbbmc_pp());
        prop_assert_eq!(got, expected, "anchor {:?} on G({}, {:.2})", anchor, n, p);
    }

    /// (a) Same on planted-community graphs, across structurally distinct
    /// presets (hybrid, vertex-oriented, Rcd recursion).
    #[test]
    fn anchored_matches_naive_filter_on_planted(
        n in 16usize..40,
        communities in 2usize..5,
        seed in 0u64..500,
        raw_anchor in proptest::collection::vec(0u32..40, 1..3),
    ) {
        let g = planted_communities(&PlantedConfig {
            n,
            communities,
            min_size: 3,
            max_size: 7,
            intra_probability: 1.0,
            background_edges: n,
            seed,
        });
        let anchor: Vec<VertexId> = raw_anchor.into_iter().map(|v| v % n as u32).collect();
        let expected = naive_filter(&g, &anchor);
        for config in [
            SolverConfig::hbbmc_pp(),
            SolverConfig::r_degen(),
            SolverConfig::r_rcd(),
        ] {
            let got = anchored(&g, &anchor, &config);
            prop_assert_eq!(&got, &expected, "anchor {:?} on planted n={}", anchor, n);
        }
    }

    /// (b) A clique-limit truncation is the exact N-clique byte-prefix of the
    /// unbudgeted ordered stream under all three schedulers at 1/2/4 threads.
    #[test]
    fn clique_limit_is_an_exact_prefix_under_all_schedulers(
        n in 8usize..28,
        p in 0.15f64..0.6,
        seed in 0u64..500,
        limit in 1u64..12,
    ) {
        let g = erdos_renyi_gnp(n, p, seed);
        let (full, _) = query_text(&g, Query::new(QuerySpec::Enumerate));
        let total = full.iter().filter(|&&b| b == b'\n').count() as u64;
        let expected_lines = limit.min(total) as usize;
        let prefix_end = if expected_lines == 0 {
            0
        } else {
            full.iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .nth(expected_lines - 1)
                .map(|(i, _)| i + 1)
                .unwrap()
        };
        for scheduler in schedulers() {
            let mut cfg = SolverConfig::hbbmc_pp();
            cfg.scheduler = scheduler;
            for threads in [1usize, 2, 4] {
                let (bytes, outcome) = query_text(
                    &g,
                    Query::new(QuerySpec::Enumerate)
                        .with_config(cfg)
                        .with_threads(threads)
                        .with_budget(Budget::cliques(limit)),
                );
                prop_assert_eq!(
                    &bytes[..],
                    &full[..prefix_end],
                    "{:?} x{}: limit {} of {} cliques",
                    scheduler, threads, limit, total
                );
                prop_assert_eq!(outcome.is_truncated(), limit < total);
            }
        }
    }

    /// (b) A step-limit or cancellation truncation still yields an exact
    /// byte-prefix (of a priori unknown length) under every scheduler.
    #[test]
    fn step_limit_truncation_is_a_byte_prefix_under_all_schedulers(
        n in 8usize..26,
        p in 0.2f64..0.6,
        seed in 0u64..500,
        max_steps in 0u64..40,
    ) {
        let g = erdos_renyi_gnp(n, p, seed);
        let (full, _) = query_text(&g, Query::new(QuerySpec::Enumerate));
        for scheduler in schedulers() {
            let mut cfg = SolverConfig::hbbmc_pp();
            cfg.scheduler = scheduler;
            for threads in [1usize, 2, 4] {
                let (bytes, outcome) = query_text(
                    &g,
                    Query::new(QuerySpec::Enumerate)
                        .with_config(cfg)
                        .with_threads(threads)
                        .with_budget(Budget::steps(max_steps)),
                );
                prop_assert!(
                    bytes.len() <= full.len() && full[..bytes.len()] == bytes[..],
                    "{:?} x{}: steps={} output must be a prefix",
                    scheduler, threads, max_steps
                );
                if outcome == Outcome::Complete {
                    prop_assert_eq!(&bytes, &full);
                }
            }
        }
    }

    /// The dedicated top-k search (core-number root pruning + candidate and
    /// coloring upper bounds) must select *exactly* the cliques an unbounded
    /// [`TopKReporter`] riding full enumeration selects — same cliques, same
    /// tie-breaks — while never evaluating more branches. Checked across four
    /// structurally distinct generator families: G(n, p), planted
    /// communities, Barabási–Albert and Moon–Moser.
    #[test]
    fn top_k_with_bounds_matches_unbounded_selection_on_four_families(
        n in 8usize..28,
        p in 0.1f64..0.6,
        seed in 0u64..500,
        k in 1usize..8,
    ) {
        let graphs = [
            erdos_renyi_gnp(n, p, seed),
            planted_communities(&PlantedConfig {
                n: n.max(16),
                communities: 3,
                min_size: 3,
                max_size: 6,
                intra_probability: 1.0,
                background_edges: n,
                seed,
            }),
            barabasi_albert(n, 3, seed),
            moon_moser((n / 6).max(1)),
        ];
        for g in &graphs {
            let mut riding = TopKReporter::new(k);
            let full = run_query(g, Query::new(QuerySpec::Enumerate), &mut riding)
                .expect("valid enumerate query");
            let expected = riding.into_cliques();

            let mut ignored = CountReporter::new();
            let result = run_query(g, Query::new(QuerySpec::TopKBySize { k }), &mut ignored)
                .expect("valid top-k query");
            prop_assert_eq!(result.outcome, Outcome::Complete);
            let QueryValue::TopK(got) = result.value else {
                panic!("TopKBySize yields a TopK value");
            };
            prop_assert_eq!(got, expected, "k={} n={}", k, g.n());
            prop_assert!(
                result.stats.recursive_calls <= full.stats.recursive_calls,
                "bounded search did more work: {} > {}",
                result.stats.recursive_calls,
                full.stats.recursive_calls
            );
        }
    }

    /// Same selection-equivalence on Turán graphs (many same-size maximal
    /// cliques — all ties, so this pins the earlier-arrival tie rule), with
    /// the bounded search's prune counters actually firing for small k.
    #[test]
    fn top_k_tie_handling_matches_on_turan(
        n in 6usize..30,
        r in 2usize..6,
        k in 1usize..5,
    ) {
        let g = turan_graph(n, r.min(n));
        let mut riding = TopKReporter::new(k);
        run_query(&g, Query::new(QuerySpec::Enumerate), &mut riding)
            .expect("valid enumerate query");
        let expected = riding.into_cliques();
        let mut ignored = CountReporter::new();
        let result = run_query(&g, Query::new(QuerySpec::TopKBySize { k }), &mut ignored)
            .expect("valid top-k query");
        let QueryValue::TopK(got) = result.value else {
            panic!("TopKBySize yields a TopK value");
        };
        prop_assert_eq!(got, expected, "k={} on T({}, {})", k, n, r);
    }

    /// Anchored queries respect budgets too: the truncated stream is a prefix
    /// of the anchored stream.
    #[test]
    fn anchored_budget_truncation_is_a_prefix(
        n in 6usize..24,
        p in 0.3f64..0.8,
        seed in 0u64..300,
        limit in 1u64..5,
    ) {
        let g = erdos_renyi_gnp(n, p, seed);
        let anchor = vec![(seed % n as u64) as VertexId];
        let spec = QuerySpec::Anchored { vertices: anchor };
        let (full, _) = query_text(&g, Query::new(spec.clone()));
        let (bytes, _) = query_text(
            &g,
            Query::new(spec).with_budget(Budget::cliques(limit)),
        );
        prop_assert!(bytes.len() <= full.len());
        prop_assert_eq!(&full[..bytes.len()], &bytes[..]);
    }
}

#[test]
fn pre_cancelled_sessions_truncate_under_every_scheduler() {
    let g = erdos_renyi_gnp(20, 0.4, 7);
    let (full, _) = query_text(&g, Query::new(QuerySpec::Enumerate));
    for scheduler in schedulers() {
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.scheduler = scheduler;
        let token = CancelToken::new();
        token.cancel();
        let (bytes, outcome) = query_text(
            &g,
            Query::new(QuerySpec::Enumerate)
                .with_config(cfg)
                .with_threads(4)
                .with_budget(Budget::unlimited().with_cancel(token)),
        );
        assert!(outcome.is_truncated(), "{scheduler:?}");
        assert_eq!(&full[..bytes.len()], &bytes[..], "{scheduler:?}");
    }
}
