//! Reference enumerator used as ground truth by the test-suite.
//!
//! A textbook Bron–Kerbosch recursion without pivoting, orderings or any of
//! the paper's optimisations, operating directly on sorted vertex vectors.
//! Deliberately simple and structurally unrelated to the optimised engine so
//! that agreement between the two is meaningful evidence of correctness.
//! Only intended for small graphs (tests use ≲ 60 vertices).

use mce_graph::{Graph, VertexId};

use crate::budget::{Budget, BudgetState, Outcome, TruncationReason};

/// Enumerates all maximal cliques of `g` with the unoptimised reference
/// algorithm. Returns them in canonical order (each clique sorted, cliques
/// sorted lexicographically).
pub fn naive_maximal_cliques(g: &Graph) -> Vec<Vec<VertexId>> {
    naive_maximal_cliques_budgeted(g, &Budget::unlimited())
        .expect("unlimited budget cannot truncate")
}

/// [`naive_maximal_cliques`] under a [`Budget`]: counts one branch step per
/// recursion-loop iteration and one emission per clique, and returns the
/// reason when a bound trips. A truncated reference result would be useless
/// for a completeness check, so no partial output is returned.
///
/// This is the shared budget path `mce verify` uses instead of a private
/// vertex-count cap: the exponential reference run is bounded by actual work
/// done, not by a proxy on the input size.
pub fn naive_maximal_cliques_budgeted(
    g: &Graph,
    budget: &Budget,
) -> Result<Vec<Vec<VertexId>>, TruncationReason> {
    if g.n() == 0 {
        return Ok(Vec::new());
    }
    let state = BudgetState::new(budget);
    let mut out = Vec::new();
    let candidates: Vec<VertexId> = g.vertices().collect();
    let mut partial = Vec::new();
    recurse(g, &mut partial, candidates, Vec::new(), &state, &mut out)?;
    match state.outcome() {
        Outcome::Complete => {
            out.sort();
            Ok(out)
        }
        // A token cancelled after the last step still truncates the result.
        Outcome::Truncated { reason } => Err(reason),
    }
}

fn emit(partial: &[VertexId], state: &BudgetState, out: &mut Vec<Vec<VertexId>>) -> bool {
    if !state.try_emit() {
        return false;
    }
    let mut clique = partial.to_vec();
    clique.sort_unstable();
    out.push(clique);
    true
}

fn recurse(
    g: &Graph,
    partial: &mut Vec<VertexId>,
    mut candidates: Vec<VertexId>,
    mut excluded: Vec<VertexId>,
    state: &BudgetState,
    out: &mut Vec<Vec<VertexId>>,
) -> Result<(), TruncationReason> {
    let truncated = || match state.outcome() {
        Outcome::Truncated { reason } => reason,
        Outcome::Complete => unreachable!("stop observed without a tripped bound"),
    };
    if candidates.is_empty() && excluded.is_empty() {
        if !emit(partial, state, out) {
            return Err(truncated());
        }
        return Ok(());
    }
    while let Some(v) = candidates.last().copied() {
        if state.note_step() {
            return Err(truncated());
        }
        let next_candidates: Vec<VertexId> = candidates
            .iter()
            .copied()
            .filter(|&u| g.has_edge(u, v))
            .collect();
        let next_excluded: Vec<VertexId> = excluded
            .iter()
            .copied()
            .filter(|&u| g.has_edge(u, v))
            .collect();
        partial.push(v);
        let result = recurse(g, partial, next_candidates, next_excluded, state, out);
        partial.pop();
        result?;
        candidates.pop();
        excluded.push(v);
    }
    Ok(())
}

/// Counts the maximal cliques of `g` with the reference algorithm.
pub fn naive_count(g: &Graph) -> u64 {
    naive_maximal_cliques(g).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_cliques() {
        assert!(naive_maximal_cliques(&Graph::empty(0)).is_empty());
    }

    #[test]
    fn edgeless_graph_has_singleton_cliques() {
        let cliques = naive_maximal_cliques(&Graph::empty(3));
        assert_eq!(cliques, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn complete_graph_has_one_clique() {
        let cliques = naive_maximal_cliques(&Graph::complete(5));
        assert_eq!(cliques, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn path_has_edge_cliques() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let cliques = naive_maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn diamond_graph() {
        // Two triangles sharing the edge (0,2).
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]).unwrap();
        let cliques = naive_maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![0, 2, 3]]);
    }

    #[test]
    fn moon_moser_count() {
        // K_{3,3,3} has 27 maximal cliques.
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(9, edges).unwrap();
        assert_eq!(naive_count(&g), 27);
    }

    #[test]
    fn budgeted_naive_truncates_and_completes() {
        let g = Graph::complete(6);
        assert_eq!(
            naive_maximal_cliques_budgeted(&g, &Budget::steps(2)),
            Err(TruncationReason::StepLimit)
        );
        assert_eq!(
            naive_maximal_cliques_budgeted(&g, &Budget::steps(1_000_000)).unwrap(),
            naive_maximal_cliques(&g)
        );
        // A clique cap below the result size also truncates.
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(
            naive_maximal_cliques_budgeted(&path, &Budget::cliques(1)),
            Err(TruncationReason::CliqueLimit)
        );
        // A pre-cancelled token truncates immediately.
        let token = crate::budget::CancelToken::new();
        token.cancel();
        assert_eq!(
            naive_maximal_cliques_budgeted(&g, &Budget::unlimited().with_cancel(token)),
            Err(TruncationReason::Cancelled)
        );
    }

    #[test]
    fn all_outputs_are_maximal_cliques() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
                (2, 4),
            ],
        )
        .unwrap();
        let cliques = naive_maximal_cliques(&g);
        for clique in &cliques {
            assert!(g.is_clique(clique));
            for v in g.vertices() {
                if !clique.contains(&v) {
                    assert!(!clique.iter().all(|&c| g.has_edge(c, v)));
                }
            }
        }
        // Every vertex is covered by at least one maximal clique.
        for v in g.vertices() {
            assert!(cliques.iter().any(|c| c.contains(&v)));
        }
    }
}
