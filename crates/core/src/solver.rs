//! The enumeration engine: initial branching, vertex-oriented recursion
//! (with every pivot variant), edge-oriented recursion and their hybrid.
//!
//! A single [`Solver`] drives every named algorithm of the paper — the choice
//! of initial branching, pivot strategy, early-termination level and graph
//! reduction is all carried by [`SolverConfig`]. The engine follows the
//! two-phase structure of the paper's Algorithms 1–4:
//!
//! 1. **Root phase.** The universal branch `(∅, G, ∅)` is partitioned either
//!    vertex-wise (Eq. 1, over a chosen vertex ordering) or edge-wise
//!    (Eq. 2 + Eq. 3, over a chosen edge ordering). The orderings and the
//!    graph reduction are computed **once** into a `RootPlan`; each root
//!    branch then extracts the relevant neighbourhood into a dense
//!    `LocalGraph` — bounded by the degeneracy δ (vertex roots) or the truss
//!    parameter τ (edge roots).
//! 2. **Recursive phase.** Inside the local graph the branch `(S, C, X)` is
//!    refined by vertex-oriented branching with pivoting (Algorithm 1), the
//!    `BK_Rcd` top-down rule, or — for hybrid depths `d ≥ 2` (Table IV) —
//!    further edge-oriented levels before switching.
//!
//! # Allocation-free hot path
//!
//! The recursive phase runs entirely inside per-worker scratch buffers: the
//! `(C, X)` sets and branch lists of a node at depth `d` live in frame `d` of
//! a depth-indexed `SearchScratch` arena, children are derived by fused
//! word-parallel kernels writing into frame `d + 1`, and the root-phase
//! `LocalGraph` matrices are rebuilt in place per root. Once the buffers have
//! warmed up, steady-state enumeration performs **zero heap allocations**
//! (the early-termination emitter, which materialises complement components
//! proportional to its output, is the one deliberate exception). Use
//! [`Solver::run_with_state`] to carry the warm buffers across runs.
//!
//! Early termination (Section IV) and graph reduction are hooked into both
//! phases exactly as the paper describes: the t-plex test rides along the
//! pivot scan, and reduction-removed vertices act as permanent exclusion
//! members of every branch they touch.

use std::time::{Duration, Instant};

use mce_graph::ordering::{edge_ordering, vertex_ordering, EdgeOrdering};
use mce_graph::{
    connected_components, degeneracy_ordering, BitsRef, Graph, GraphTopology, VertexId,
};

use crate::budget::BudgetState;
use crate::config::{
    ConfigError, InitialBranching, PivotStrategy, RecursionStrategy, RootScheduler, SolverConfig,
};
use crate::early_term::enumerate_plex_branch;
use crate::local::LocalGraph;
use crate::maxclique::{greedy_clique, TopKBound};
use crate::pivot::{plex_condition, scan_branch};
use crate::pool::{BranchTask, DonationSink, SeqKey, SPLIT_CHUNK};
use crate::reduction::{reduce, Reduction};
use crate::report::{CliqueReporter, CollectReporter, CountReporter};
use crate::scratch::{Frame, SearchScratch, SplitFrame, WorkerState};
use crate::stats::EnumerationStats;

/// Maximal clique enumeration driver for a fixed graph and configuration.
///
/// Generic over the global graph representation: `G` defaults to the sparse
/// CSR [`Graph`] (the production path, `O(n + m)` global memory) but any
/// [`GraphTopology`] — e.g. the dense [`mce_graph::AdjMatrix`] — works and
/// produces byte-identical output, because the engine's global phase only
/// reads degrees, sorted neighbour lists and adjacency tests through the
/// trait. The recursive phase never touches the global graph at all: it runs
/// on the per-root dense `LocalGraph`.
pub struct Solver<'g, G: GraphTopology = Graph> {
    graph: &'g G,
    config: SolverConfig,
}

/// The precomputed root phase: graph reduction plus the vertex or edge
/// ordering. Computed once per run (or once per parallel run, shared by all
/// workers) — recomputing it per worker used to dominate multi-threaded runs.
pub(crate) struct RootPlan {
    pub reduction: Reduction,
    pub kind: RootKind,
    pub ordering_time: Duration,
    /// Component-grouped claim chunks for the splitting scheduler; `None`
    /// under the pulling schedulers (which claim plain rank ranges).
    pub shards: Option<RootShards>,
}

/// Which initial branching the plan's root tasks follow.
pub(crate) enum RootKind {
    /// Vertex-oriented roots (Eq. 1): one task per vertex, in order.
    Vertex {
        order: Vec<VertexId>,
        position: Vec<usize>,
    },
    /// Edge-oriented roots (Eq. 2): one task per edge, in order.
    Edge { eo: EdgeOrdering, depth: usize },
}

impl RootPlan {
    /// Number of independent root tasks (one per vertex or per edge).
    pub fn root_count(&self) -> usize {
        match &self.kind {
            RootKind::Vertex { order, .. } => order.len(),
            RootKind::Edge { eo, .. } => eo.order.len(),
        }
    }
}

/// Root ranks grouped into per-connected-component claim chunks.
///
/// Components never share a clique, so each component's roots form an
/// independent, trivially parallel shard: a claim chunk never straddles a
/// component boundary, small components are claimed whole, and large ones
/// are cut into [`SPLIT_CHUNK`]-sized runs. Groups are ordered by each
/// component's first root rank (rank-ascending inside a group), so claim
/// order tracks rank order closely and the ordered sequencer's out-of-order
/// buffering stays small.
pub(crate) struct RootShards {
    /// Root ranks in claim order.
    claim_order: Vec<u32>,
    /// `(start, end)` index pairs into `claim_order`, one per chunk.
    chunks: Vec<(u32, u32)>,
    /// Number of connected components owning at least one root.
    shard_count: usize,
}

impl RootShards {
    /// Groups `root_component[rank]` assignments into claim chunks.
    fn build(root_component: &[usize]) -> Self {
        let total = root_component.len();
        let mut first_rank: Vec<usize> = Vec::new();
        for (rank, &c) in root_component.iter().enumerate() {
            if c >= first_rank.len() {
                first_rank.resize(c + 1, usize::MAX);
            }
            if first_rank[c] == usize::MAX {
                first_rank[c] = rank;
            }
        }
        let shard_count = first_rank.iter().filter(|&&r| r != usize::MAX).count();
        let mut claim_order: Vec<u32> = (0..total as u32).collect();
        claim_order.sort_unstable_by_key(|&r| (first_rank[root_component[r as usize]], r));
        let mut chunks = Vec::new();
        let mut start = 0usize;
        while start < total {
            let component = root_component[claim_order[start] as usize];
            let mut end = start + 1;
            while end < total
                && end - start < SPLIT_CHUNK
                && root_component[claim_order[end] as usize] == component
            {
                end += 1;
            }
            chunks.push((start as u32, end as u32));
            start = end;
        }
        RootShards {
            claim_order,
            chunks,
            shard_count,
        }
    }

    /// Number of claim chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The root ranks of chunk `i`, in rank-ascending order.
    pub fn chunk(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let (start, end) = self.chunks[i];
        self.claim_order[start as usize..end as usize]
            .iter()
            .map(|&r| r as usize)
    }

    /// Number of independent component shards.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }
}

/// Reusable enumeration state: the scratch arena, local-graph buffers and
/// root-phase vectors of one worker.
///
/// A fresh state starts empty and warms up during the first run; passing the
/// same state to [`Solver::run_with_state`] again lets subsequent runs reuse
/// every buffer, so repeated enumeration (serving workloads, benchmark loops)
/// stays allocation-free outside the ordering/reduction preprocessing.
#[derive(Clone, Debug, Default)]
pub struct EnumerationState {
    pub(crate) worker: WorkerState,
}

impl EnumerationState {
    /// Creates an empty state; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Donation state of one in-flight work item (a root branch or a resumed
/// [`BranchTask`]): the sink to push split-off work to, the item's sequence
/// key, its decreasing donation counter, the branch-step budget and the
/// stack of currently splittable loops.
pub(crate) struct Donor<'a> {
    sink: &'a dyn DonationSink,
    rank: usize,
    key: SeqKey,
    next_donation: u32,
    steps: u32,
    threshold: u32,
    stack: Vec<SplitFrame>,
}

impl<'a> Donor<'a> {
    fn new(sink: &'a dyn DonationSink) -> Self {
        Donor {
            sink,
            rank: 0,
            key: SeqKey::root(),
            next_donation: u32::MAX,
            steps: 0,
            threshold: sink.step_threshold(),
            stack: Vec::new(),
        }
    }

    /// Rearms the donor for a fresh root branch (buffers reused).
    fn reset_for_root(&mut self, rank: usize) {
        self.rank = rank;
        self.key.reset();
        self.next_donation = u32::MAX;
        self.steps = 0;
        self.stack.clear();
    }

    /// Rearms the donor for a resumed task (inherits the task's key).
    fn reset_for_task(&mut self, task: &BranchTask) {
        self.rank = task.rank;
        self.key.clone_from_key(&task.key);
        self.next_donation = u32::MAX;
        self.steps = 0;
        self.stack.clear();
    }
}

struct Ctx<'a> {
    config: SolverConfig,
    stats: EnumerationStats,
    reporter: &'a mut dyn CliqueReporter,
    /// `Some` only when running under the splitting scheduler.
    donor: Option<Donor<'a>>,
    /// `Some` only when running inside a budgeted session.
    budget: Option<&'a BudgetState>,
    /// `Some` only on the sequential `TopKBySize` path
    /// ([`Solver::run_topk`]): observes every emitted clique size and prunes
    /// branches that cannot change the retained top-k.
    topk: Option<&'a mut TopKBound>,
}

impl Ctx<'_> {
    fn report(&mut self, clique: &[VertexId]) {
        self.stats.maximal_cliques += 1;
        self.stats.max_clique_size = self.stats.max_clique_size.max(clique.len());
        if let Some(tb) = self.topk.as_deref_mut() {
            tb.observe(clique.len());
        }
        self.reporter.report(clique);
    }

    /// The `TopKBySize` bound check at one branch `(S, C, X)`: `true` when
    /// the branch cannot contain a clique large enough to change the
    /// retained top-k — first by the candidate count (`|S| + |C|`), then by
    /// the greedy-coloring upper bound on `C` — and was pruned (counted in
    /// [`EnumerationStats::branches_pruned_by_color`]). Always `false`
    /// outside a top-k run or before `k` cliques have been observed.
    fn topk_prunes(&mut self, lg: &LocalGraph, c: BitsRef<'_>, partial_len: usize) -> bool {
        let Some(tb) = self.topk.as_deref_mut() else {
            return false;
        };
        let Some(min) = tb.min_interesting() else {
            return false;
        };
        if partial_len.saturating_add(c.len()) < min {
            self.stats.branches_pruned_by_color += 1;
            return true;
        }
        let colors = tb.coloring.color_count(lg, c);
        if partial_len.saturating_add(colors) < min {
            self.stats.branches_pruned_by_color += 1;
            return true;
        }
        false
    }

    /// Accounts one branch step against the session budget; `true` means the
    /// enclosing loop must abandon its frame and unwind. Free (a single
    /// `Option` check) when no budget is attached.
    #[inline]
    fn budget_step_abort(&mut self) -> bool {
        match self.budget {
            Some(b) if b.note_step() => {
                self.stats.terminated_by_budget += 1;
                true
            }
            _ => false,
        }
    }

    /// Whether the session was stopped, without consuming a branch step
    /// (used between whole work items, e.g. root ranks).
    #[inline]
    fn budget_stopped(&self) -> bool {
        self.budget.is_some_and(BudgetState::should_stop)
    }

    /// Registers a splittable branch loop at `depth`; returns its stack slot.
    fn begin_branch_loop(&mut self, depth: usize, partial_len: usize) -> Option<usize> {
        let donor = self.donor.as_mut()?;
        donor.stack.push(SplitFrame {
            depth,
            partial_len,
            next_idx: 0,
            donated: false,
        });
        Some(donor.stack.len() - 1)
    }

    /// Records that the loop in `slot` is about to recurse into
    /// `branch[next_idx - 1]`, leaving `branch[next_idx..]` unexplored.
    fn advance_branch_loop(&mut self, slot: Option<usize>, next_idx: usize) {
        if let (Some(slot), Some(donor)) = (slot, self.donor.as_mut()) {
            donor.stack[slot].next_idx = next_idx;
        }
    }

    /// Whether the loop in `slot` donated its remaining siblings (the loop
    /// must stop once its current recursion returns).
    fn branch_loop_donated(&self, slot: Option<usize>) -> bool {
        match (slot, &self.donor) {
            (Some(slot), Some(donor)) => donor.stack[slot].donated,
            _ => false,
        }
    }

    /// Unregisters the loop in `slot` (its frame is being unwound).
    fn end_branch_loop(&mut self, slot: Option<usize>) {
        if let (Some(slot), Some(donor)) = (slot, self.donor.as_mut()) {
            debug_assert_eq!(donor.stack.len(), slot + 1, "unbalanced split stack");
            donor.stack.truncate(slot);
        }
    }
}

impl<'g, G: GraphTopology> Solver<'g, G> {
    /// Creates a solver after validating the configuration.
    pub fn new(graph: &'g G, config: SolverConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Solver { graph, config })
    }

    /// The configuration this solver runs with.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Enumerates every maximal clique of the graph, streaming them to
    /// `reporter`, and returns the run statistics.
    pub fn run(&self, reporter: &mut dyn CliqueReporter) -> EnumerationStats {
        let mut state = EnumerationState::new();
        self.run_with_state(&mut state, reporter)
    }

    /// Like [`Solver::run`], but reusing the caller's [`EnumerationState`]
    /// buffers: after the first (warming) run, repeated enumeration performs
    /// no steady-state heap allocations.
    pub fn run_with_state(
        &self,
        state: &mut EnumerationState,
        reporter: &mut dyn CliqueReporter,
    ) -> EnumerationStats {
        let plan = self.prepare();
        self.run_on_plan(
            &plan,
            0..plan.root_count(),
            true,
            &mut state.worker,
            None,
            reporter,
        )
    }

    /// Processes only the root branches whose rank `r` satisfies
    /// `r % parts == part` (plus, for `part == 0`, the cliques emitted by graph
    /// reduction and by isolated vertices). Running every part exactly once
    /// over the same graph and configuration — in any order or in parallel —
    /// reports every maximal clique exactly once. Used by the parallel driver
    /// when [static scheduling](crate::config::RootScheduler::Static) is
    /// requested.
    pub fn run_partition(
        &self,
        part: usize,
        parts: usize,
        reporter: &mut dyn CliqueReporter,
    ) -> EnumerationStats {
        assert!(
            parts > 0 && part < parts,
            "invalid partition {part}/{parts}"
        );
        let plan = self.prepare();
        let mut worker = WorkerState::new();
        let count = plan.root_count();
        let ranks = (part..count).step_by(parts);
        self.run_on_plan(&plan, ranks, part == 0, &mut worker, None, reporter)
    }

    // ------------------------------------------------------------------
    // Root phase
    // ------------------------------------------------------------------

    /// Computes the graph reduction and the root ordering once.
    pub(crate) fn prepare(&self) -> RootPlan {
        let g = self.graph;
        let reduction = if self.config.graph_reduction {
            reduce(g)
        } else {
            Reduction::disabled(g.n())
        };
        let ordering_start = Instant::now();
        let kind = match self.config.initial {
            InitialBranching::Vertex(kind) => {
                let order = vertex_ordering(g, kind);
                let mut position = vec![0usize; g.n()];
                for (i, &v) in order.iter().enumerate() {
                    position[v as usize] = i;
                }
                RootKind::Vertex { order, position }
            }
            InitialBranching::Edge { ordering, depth } => RootKind::Edge {
                eo: edge_ordering(g, ordering),
                depth,
            },
        };
        // The splitting scheduler claims roots in per-connected-component
        // chunks (components are independent shards); the pulling schedulers
        // claim plain rank ranges and skip the O(n + m) component pass.
        let shards = (self.config.scheduler == RootScheduler::Splitting).then(|| {
            let cc = connected_components(g);
            let root_component: Vec<usize> = match &kind {
                RootKind::Vertex { order, .. } => {
                    order.iter().map(|&v| cc.component_of[v as usize]).collect()
                }
                RootKind::Edge { eo, .. } => eo
                    .order
                    .iter()
                    .map(|&e| cc.component_of[eo.index.endpoints(e).0 as usize])
                    .collect(),
            };
            RootShards::build(&root_component)
        });
        RootPlan {
            reduction,
            kind,
            ordering_time: ordering_start.elapsed(),
            shards,
        }
    }

    /// Runs the given root ranks over a prepared plan. `with_static` selects
    /// whether this worker also emits the rank-independent output (graph
    /// reduction cliques, isolated vertices) — exactly one worker of a run
    /// must do so.
    pub(crate) fn run_on_plan(
        &self,
        plan: &RootPlan,
        ranks: impl IntoIterator<Item = usize>,
        with_static: bool,
        worker: &mut WorkerState,
        budget: Option<&BudgetState>,
        reporter: &mut dyn CliqueReporter,
    ) -> EnumerationStats {
        let start = Instant::now();
        let mut ctx = Ctx {
            config: self.config,
            stats: EnumerationStats::default(),
            reporter,
            donor: None,
            budget,
            topk: None,
        };
        worker.prepare_for(self.graph.n());
        if with_static {
            ctx.stats.ordering_time = plan.ordering_time;
            self.emit_static(plan, &mut ctx);
        }
        for rank in ranks {
            if ctx.budget_stopped() {
                break;
            }
            self.run_root(plan, rank, worker, &mut ctx);
        }
        ctx.stats.elapsed = start.elapsed();
        ctx.stats.busy_time = ctx.stats.elapsed;
        ctx.stats
    }

    /// Runs the given root ranks with donation enabled: whenever the shared
    /// pool reports starving workers and this worker has invested at least
    /// the sink's step threshold in its chunk, the unexplored siblings of the
    /// shallowest splittable frame are packaged into a [`BranchTask`] and
    /// pushed to `sink`. Used by the splitting scheduler only.
    pub(crate) fn run_ranks_donating(
        &self,
        plan: &RootPlan,
        ranks: impl IntoIterator<Item = usize>,
        worker: &mut WorkerState,
        sink: &dyn DonationSink,
        budget: Option<&BudgetState>,
        reporter: &mut dyn CliqueReporter,
    ) -> EnumerationStats {
        let start = Instant::now();
        let mut ctx = Ctx {
            config: self.config,
            stats: EnumerationStats::default(),
            reporter,
            donor: Some(Donor::new(sink)),
            budget,
            topk: None,
        };
        worker.prepare_for(self.graph.n());
        for rank in ranks {
            if ctx.budget_stopped() {
                break;
            }
            if let Some(donor) = ctx.donor.as_mut() {
                donor.reset_for_root(rank);
            }
            self.run_root(plan, rank, worker, &mut ctx);
        }
        ctx.stats.elapsed = start.elapsed();
        ctx.stats.busy_time = ctx.stats.elapsed;
        ctx.stats
    }

    /// Resumes a stolen [`BranchTask`] through the same allocation-free
    /// recursion (further splits included): loads the task's `(C, X)` sets
    /// and branch list into frame 0 of the worker's arena, adopts its
    /// [`LocalGraph`] snapshot and partial clique, and re-enters the branch
    /// loop the donor abandoned.
    pub(crate) fn run_branch_task(
        &self,
        task: BranchTask,
        worker: &mut WorkerState,
        sink: &dyn DonationSink,
        budget: Option<&BudgetState>,
        reporter: &mut dyn CliqueReporter,
    ) -> EnumerationStats {
        let start = Instant::now();
        let RecursionStrategy::Pivoting(strategy) = self.config.recursion else {
            unreachable!("donated tasks only exist under pivoting recursion")
        };
        let mut donor = Donor::new(sink);
        donor.reset_for_task(&task);
        let mut ctx = Ctx {
            config: self.config,
            stats: EnumerationStats::default(),
            reporter,
            donor: Some(donor),
            budget,
            topk: None,
        };
        let BranchTask {
            partial: prefix,
            c,
            x,
            branch,
            lg: task_lg,
            ..
        } = task;
        worker.lg = task_lg;
        worker.scratch.load_root(&c, &x, &branch);
        worker.partial.clear();
        worker.partial.extend_from_slice(&prefix);
        let WorkerState {
            scratch,
            lg,
            partial,
            ..
        } = worker;
        self.branch_on(lg, partial, 0, strategy, &mut ctx, scratch);
        ctx.stats.steals = 1;
        ctx.stats.elapsed = start.elapsed();
        ctx.stats.busy_time = ctx.stats.elapsed;
        ctx.stats
    }

    /// Runs an anchored query: streams exactly the maximal cliques of the
    /// graph that contain every vertex of `anchor` (which must be a
    /// non-empty clique of distinct vertices — the query layer validates
    /// this).
    ///
    /// Seeds `R` with the anchor, builds the anchor's common-neighbourhood
    /// subgraph once into the worker's [`LocalGraph`] and runs the configured
    /// recursion below it — no root phase, no graph reduction. Correctness:
    /// any vertex adjacent to every member of a clique `K ⊇ anchor` is
    /// adjacent to every anchor member and hence belongs to the common
    /// neighbourhood, so maximality inside the single branch `(anchor, C, ∅)`
    /// coincides with maximality in the full graph.
    pub(crate) fn run_anchored(
        &self,
        anchor: &[VertexId],
        worker: &mut WorkerState,
        budget: Option<&BudgetState>,
        reporter: &mut dyn CliqueReporter,
    ) -> EnumerationStats {
        let g = self.graph;
        let start = Instant::now();
        let mut ctx = Ctx {
            config: self.config,
            stats: EnumerationStats::default(),
            reporter,
            donor: None,
            budget,
            topk: None,
        };
        worker.prepare_for(g.n());
        // Common neighbourhood of the anchor, walked from its smallest
        // adjacency list.
        let pivot = *anchor
            .iter()
            .min_by_key(|&&v| g.degree(v))
            .expect("anchored queries require a non-empty anchor");
        worker.candidates.clear();
        worker.excluded.clear();
        for w in g.neighbors_iter(pivot) {
            if !anchor.contains(&w) && anchor.iter().all(|&a| a == pivot || g.has_edge(a, w)) {
                worker.candidates.push(w);
            }
        }
        ctx.stats.anchored_roots_skipped = (g.n() - anchor.len() - worker.candidates.len()) as u64;
        ctx.stats.initial_branches = 1;
        build_root_branch(g, worker, |_, _| true);
        worker.partial.clear();
        worker.partial.extend_from_slice(anchor);
        let WorkerState {
            scratch,
            lg,
            partial,
            ..
        } = worker;
        self.dispatch(lg, partial, 0, 0, None, &mut ctx, scratch);
        ctx.stats.elapsed = start.elapsed();
        ctx.stats.busy_time = ctx.stats.elapsed;
        ctx.stats
    }

    /// Runs a `TopKBySize { k }` query sequentially with the bound
    /// machinery of [`crate::maxclique`] extended to top-k selection: the
    /// core-number bound closes roots, and the candidate-count and
    /// greedy-coloring upper bounds close branches that cannot contain a
    /// clique large enough to change the retained top-k (counted in
    /// `branches_pruned_by_core` / `branches_pruned_by_color`). Emission
    /// follows the deterministic sequential stream order, so the retained
    /// ranking — larger first, ties by arrival — is byte-identical to riding
    /// the full ordered enumeration through a
    /// [`TopKReporter`](crate::TopKReporter), with strictly fewer branch
    /// evaluations whenever any bound fires. Like the anchored, k-clique and
    /// maximum-clique paths the search is sequential; the query's thread
    /// count does not affect it.
    pub(crate) fn run_topk(
        &self,
        k: usize,
        worker: &mut WorkerState,
        budget: Option<&BudgetState>,
        reporter: &mut dyn CliqueReporter,
    ) -> EnumerationStats {
        let g = self.graph;
        let start = Instant::now();
        let plan = self.prepare();
        // Core numbers bound every root: a clique through `v` has at most
        // core(v) + 1 members. For k == 1 the greedy clique along the
        // reverse degeneracy order seeds a proven size floor — the stream
        // contains a clique at least that large, and among equal sizes the
        // earlier arrival wins the tie.
        let deg = degeneracy_ordering(g);
        let seed_floor = if k == 1 {
            greedy_clique(g, &deg.order, &mut worker.partial);
            worker.partial.len()
        } else {
            0
        };
        let mut bound = TopKBound::new(k, seed_floor);
        let mut ctx = Ctx {
            config: self.config,
            stats: EnumerationStats::default(),
            reporter,
            donor: None,
            budget,
            topk: Some(&mut bound),
        };
        worker.prepare_for(g.n());
        ctx.stats.ordering_time = plan.ordering_time;
        self.emit_static(&plan, &mut ctx);
        for rank in 0..plan.root_count() {
            if ctx.budget_stopped() {
                break;
            }
            if let Some(min) = ctx.topk.as_deref().and_then(TopKBound::min_interesting) {
                let core_bound = match &plan.kind {
                    RootKind::Vertex { order, .. } => deg.core[order[rank] as usize] + 1,
                    RootKind::Edge { eo, .. } => {
                        let (u, v) = eo.index.endpoints(eo.order[rank]);
                        deg.core[u as usize].min(deg.core[v as usize]) + 1
                    }
                };
                if core_bound < min {
                    ctx.stats.branches_pruned_by_core += 1;
                    continue;
                }
            }
            self.run_root(&plan, rank, worker, &mut ctx);
        }
        ctx.stats.elapsed = start.elapsed();
        ctx.stats.busy_time = ctx.stats.elapsed;
        ctx.stats
    }

    /// The donation check, run once per branch step: after `threshold` steps,
    /// if anyone is starving, package the unexplored siblings of the
    /// *shallowest* splittable frame (the largest remaining piece of this
    /// subtree) into a self-contained task and push it to the pool. The
    /// donated loop is flagged so it stops once its current child returns.
    fn maybe_donate(
        &self,
        lg: &LocalGraph,
        partial: &[VertexId],
        ctx: &mut Ctx<'_>,
        scratch: &SearchScratch,
    ) {
        let Some(donor) = ctx.donor.as_mut() else {
            return;
        };
        donor.steps += 1;
        if donor.steps < donor.threshold || !donor.sink.hungry() {
            return;
        }
        for slot in 0..donor.stack.len() {
            let entry = donor.stack[slot];
            if entry.donated {
                continue;
            }
            debug_assert!(entry.next_idx > 0, "loop registered but never advanced");
            let f = scratch.frame(entry.depth);
            if entry.next_idx >= f.branch.len() {
                continue; // the current vertex is this loop's last
            }
            if !f.branch[entry.next_idx..]
                .iter()
                .any(|&w| f.c().contains(w))
            {
                continue;
            }
            // The loop is inside `branch[next_idx - 1]`'s subtree: in the
            // sequential order the donated siblings run *after* it finishes,
            // with the current vertex moved from C to X.
            let cur = f.branch[entry.next_idx - 1];
            let mut c = f.c().to_bitset();
            c.remove(cur);
            let mut x = f.x().to_bitset();
            x.insert(cur);
            let task = BranchTask {
                rank: donor.rank,
                key: donor.key.child(donor.next_donation),
                partial: partial[..entry.partial_len].to_vec(),
                c,
                x,
                branch: f.branch[entry.next_idx..].to_vec(),
                lg: lg.clone(),
            };
            donor.next_donation -= 1;
            donor.steps = 0;
            donor.stack[slot].donated = true;
            donor.sink.donate(task);
            ctx.stats.splits += 1;
            return;
        }
    }

    /// Emits the output that is independent of any root rank: the cliques
    /// reported by the graph reduction and — under edge-oriented branching —
    /// the isolated vertices of Eq. (3).
    fn emit_static(&self, plan: &RootPlan, ctx: &mut Ctx<'_>) {
        ctx.stats.gr_removed_vertices = plan.reduction.removed_count() as u64;
        for clique in &plan.reduction.cliques {
            ctx.stats.gr_cliques += 1;
            ctx.report(clique);
        }
        if matches!(plan.kind, RootKind::Edge { .. }) {
            for v in self.graph.vertices_iter() {
                if self.graph.degree(v) == 0 && !plan.reduction.removed[v as usize] {
                    ctx.stats.initial_branches += 1;
                    ctx.report(&[v]);
                }
            }
        }
    }

    /// Processes one root task.
    fn run_root(&self, plan: &RootPlan, rank: usize, worker: &mut WorkerState, ctx: &mut Ctx<'_>) {
        match &plan.kind {
            RootKind::Vertex { order, position } => {
                self.vertex_root(&plan.reduction, order, position, rank, worker, ctx)
            }
            RootKind::Edge { eo, depth } => {
                self.edge_root(&plan.reduction, eo, *depth, rank, worker, ctx)
            }
        }
    }

    /// Eq. (1): the root branch of the `rank`-th vertex of the ordering.
    fn vertex_root(
        &self,
        reduction: &Reduction,
        order: &[VertexId],
        position: &[usize],
        rank: usize,
        worker: &mut WorkerState,
        ctx: &mut Ctx<'_>,
    ) {
        let g = self.graph;
        let v = order[rank];
        if reduction.removed[v as usize] {
            return;
        }
        worker.candidates.clear();
        worker.excluded.clear();
        for u in g.neighbors_iter(v) {
            if reduction.removed[u as usize] || position[u as usize] < rank {
                worker.excluded.push(u);
            } else {
                worker.candidates.push(u);
            }
        }
        ctx.stats.initial_branches += 1;
        build_root_branch(g, worker, |_, _| true);
        worker.partial.clear();
        worker.partial.push(v);
        let WorkerState {
            scratch,
            lg,
            partial,
            ..
        } = worker;
        self.dispatch(lg, partial, 0, 0, None, ctx, scratch);
    }

    /// Eq. (2): the root branch of the `rank`-th edge of the ordering.
    fn edge_root(
        &self,
        reduction: &Reduction,
        eo: &EdgeOrdering,
        depth: usize,
        rank: usize,
        worker: &mut WorkerState,
        ctx: &mut Ctx<'_>,
    ) {
        let g = self.graph;
        let (u, v) = eo.index.endpoints(eo.order[rank]);
        if reduction.removed[u as usize] || reduction.removed[v as usize] {
            return;
        }
        g.common_neighbors_into(u, v, &mut worker.common);
        worker.candidates.clear();
        worker.excluded.clear();
        for i in 0..worker.common.len() {
            let w = worker.common[i];
            if reduction.removed[w as usize] {
                worker.excluded.push(w);
                continue;
            }
            let uw = eo.index.edge_id(u, w).expect("triangle edge (u,w) exists");
            let vw = eo.index.edge_id(v, w).expect("triangle edge (v,w) exists");
            if eo.position[uw as usize] > rank && eo.position[vw as usize] > rank {
                worker.candidates.push(w);
            } else {
                worker.excluded.push(w);
            }
        }
        ctx.stats.initial_branches += 1;
        // Eq. (2): edges already processed at the root are removed from the
        // candidate graph of this branch.
        build_root_branch(g, worker, |a, b| match eo.index.edge_id(a, b) {
            Some(e) => eo.position[e as usize] > rank,
            None => true,
        });
        worker.partial.clear();
        worker.partial.push(u);
        worker.partial.push(v);
        let WorkerState {
            scratch,
            lg,
            partial,
            ..
        } = worker;
        self.dispatch(
            lg,
            partial,
            0,
            depth.saturating_sub(1),
            Some(eo),
            ctx,
            scratch,
        );
    }

    // ------------------------------------------------------------------
    // Recursive phase (arena-based: the node at depth `d` owns frame `d`)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        depth: usize,
        edge_levels: usize,
        eo: Option<&EdgeOrdering>,
        ctx: &mut Ctx<'_>,
        scratch: &mut SearchScratch,
    ) {
        if edge_levels > 0 {
            if let Some(eo) = eo {
                self.edge_branch_step(lg, partial, depth, edge_levels, eo, ctx, scratch);
                return;
            }
        }
        match self.config.recursion {
            RecursionStrategy::Pivoting(strategy) => {
                self.pivot_rec(lg, partial, depth, strategy, ctx, scratch)
            }
            RecursionStrategy::Rcd => self.rcd_rec(lg, partial, depth, ctx, scratch),
        }
    }

    /// One edge-oriented branching level (Eq. 2 + Eq. 3) inside a local graph.
    ///
    /// Unlike the vertex-oriented steady state this step genuinely changes
    /// the candidate adjacency per child ([`LocalGraph::restrict_candidate`]),
    /// so it allocates fresh matrices; it only runs for the first
    /// `depth` levels of the tree (Table IV's `d ≤ 3`).
    #[allow(clippy::too_many_arguments)]
    fn edge_branch_step(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        depth: usize,
        edge_levels: usize,
        eo: &EdgeOrdering,
        ctx: &mut Ctx<'_>,
        scratch: &mut SearchScratch,
    ) {
        ctx.stats.recursive_calls += 1;
        {
            let f = scratch.frame(depth);
            if f.c().is_empty() && f.x().is_empty() {
                ctx.report(partial);
                return;
            }
        }
        if ctx.topk_prunes(lg, scratch.frame(depth).c(), partial.len()) {
            return;
        }

        // Members of C and their candidate edges, ordered by global position
        // (the branch inherits π_τ), collected into the frame's buffers.
        {
            let f = scratch.frame_mut(depth);
            f.branch_from_c();
            f.edges.clear();
            for (i, &a) in f.branch.iter().enumerate() {
                for &b in &f.branch[i + 1..] {
                    if lg.cand_contains(a, b) {
                        if let Some(e) = eo.index.edge_id(lg.orig[a], lg.orig[b]) {
                            f.edges.push((eo.position[e as usize], a, b));
                        }
                    }
                }
            }
            f.edges.sort_unstable();
        }

        let mut i = 0;
        while let Some(&(pos, a, b)) = scratch.frame(depth).edges.get(i) {
            i += 1;
            if ctx.budget_step_abort() {
                return;
            }
            // Earlier sibling edges of this level (and the current one) are
            // excluded from the child's candidate graph (Eq. 2), so candidacy
            // must be evaluated against the restricted adjacency: a common
            // neighbour whose edge to `a` or `b` was already processed belongs
            // to the exclusion side.
            let child_lg = lg.restrict_candidate(|pu, pv| match eo.index.edge_id(pu, pv) {
                Some(e) => eo.position[e as usize] > pos,
                None => true,
            });
            {
                let (parent, child) = scratch.pair(depth);
                child.set_cap(parent.cap());
                let (pc, px) = (parent.c(), parent.x());
                let (mut cc, mut cx) = child.cx_mut();
                cc.assign_and_count(pc, child_lg.cand(a));
                cc.intersect_with_words(child_lg.cand(b));
                cx.copy_from(pc);
                cx.union_with_words(px.words());
                cx.intersect_with_words(lg.gadj(a));
                cx.intersect_with_words(lg.gadj(b));
                cx.difference_with_words(cc.as_ref().words());
            }
            partial.push(lg.orig[a]);
            partial.push(lg.orig[b]);
            self.dispatch(
                &child_lg,
                partial,
                depth + 1,
                edge_levels.saturating_sub(1),
                Some(eo),
                ctx,
                scratch,
            );
            partial.truncate(partial.len() - 2);
        }

        // Eq. (3): candidates with no candidate edge can only extend S by themselves.
        let mut j = 0;
        while let Some(&w) = scratch.frame(depth).branch.get(j) {
            j += 1;
            if ctx.budget_step_abort() {
                return;
            }
            let f = scratch.frame(depth);
            if f.c().intersection_len_words(lg.cand(w)) == 0 {
                ctx.stats.recursive_calls += 1;
                let extendable = f.c().intersection_len_words(lg.gadj(w)) > 0
                    || f.x().intersection_len_words(lg.gadj(w)) > 0;
                if !extendable {
                    partial.push(lg.orig[w]);
                    ctx.report(partial);
                    partial.pop();
                }
            }
        }
    }

    /// Vertex-oriented branching with pivoting (Algorithm 1 with the strategy's
    /// pivot rule), plus the early-termination hook of Section IV.
    fn pivot_rec(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        depth: usize,
        strategy: PivotStrategy,
        ctx: &mut Ctx<'_>,
        scratch: &mut SearchScratch,
    ) {
        ctx.stats.recursive_calls += 1;
        let (c_len, x_empty) = {
            let f = scratch.frame(depth);
            if f.c().is_empty() {
                if f.x().is_empty() {
                    ctx.report(partial);
                }
                return;
            }
            (f.c().len(), f.x().is_empty())
        };
        if ctx.topk_prunes(lg, scratch.frame(depth).c(), partial.len()) {
            return;
        }
        let t = ctx.config.early_termination_t;
        let need_scan =
            t >= 1 || matches!(strategy, PivotStrategy::Classic | PivotStrategy::Refined);
        let scan = if need_scan {
            let f = scratch.frame(depth);
            Some(scan_branch(lg, f.c(), f.x()))
        } else {
            None
        };

        if let Some(scan) = &scan {
            if t >= 1 && plex_condition(scan, c_len, t) {
                ctx.stats.et_eligible += 1;
                if x_empty && self.try_early_terminate(lg, depth, partial, ctx, scratch) {
                    return;
                }
            }
        }

        match strategy {
            PivotStrategy::None => {
                scratch.frame_mut(depth).branch_from_c();
                self.branch_on(lg, partial, depth, strategy, ctx, scratch);
            }
            PivotStrategy::Classic => {
                let scan = scan.as_ref().expect("classic pivot requires a scan");
                prune_by_pivot_into(lg, scratch.frame_mut(depth), scan.pivot);
                self.branch_on(lg, partial, depth, strategy, ctx, scratch);
            }
            PivotStrategy::Refined => {
                let scan = scan.as_ref().expect("refined pivot requires a scan");
                if scan.dominated_by_exclusion {
                    return;
                }
                if let Some(u) = scan.universal_candidate {
                    // `u` is adjacent to every other candidate: it belongs to every
                    // maximal clique of this branch, so absorb it without branching.
                    {
                        let (parent, child) = scratch.pair(depth);
                        child.set_cap(parent.cap());
                        let (pc, px) = (parent.c(), parent.x());
                        let (mut cc, mut cx) = child.cx_mut();
                        cc.copy_from(pc);
                        cc.remove(u);
                        cx.copy_from(px);
                        cx.intersect_with_words(lg.gadj(u));
                    }
                    partial.push(lg.orig[u]);
                    self.pivot_rec(lg, partial, depth + 1, strategy, ctx, scratch);
                    partial.pop();
                    return;
                }
                prune_by_pivot_into(lg, scratch.frame_mut(depth), scan.pivot);
                self.branch_on(lg, partial, depth, strategy, ctx, scratch);
            }
            PivotStrategy::Factor => {
                self.factor_branching(lg, partial, depth, ctx, scratch);
            }
        }
    }

    /// Branches on every vertex of the frame's branch list, moving each to
    /// `X` afterwards.
    ///
    /// This loop is the splitting scheduler's donation point: it registers
    /// itself as a splittable frame, each iteration counts as one branch
    /// step, and when a (possibly deeper) [`Solver::maybe_donate`] gives this
    /// loop's remaining siblings away the loop stops after its current child
    /// returns — the thief continues exactly where the donor left off.
    fn branch_on(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        depth: usize,
        strategy: PivotStrategy,
        ctx: &mut Ctx<'_>,
        scratch: &mut SearchScratch,
    ) {
        let slot = ctx.begin_branch_loop(depth, partial.len());
        let mut i = 0;
        while let Some(&v) = scratch.frame(depth).branch.get(i) {
            i += 1;
            if !scratch.frame(depth).c().contains(v) {
                continue;
            }
            if ctx.budget_step_abort() {
                break;
            }
            ctx.advance_branch_loop(slot, i);
            self.maybe_donate(lg, partial, ctx, scratch);
            scratch.make_child(depth, lg, v);
            // Overlap the next sibling's adjacency fetch with this child's
            // whole subtree: by the time the loop comes back around, the rows
            // the next make_child intersects against are already in cache.
            if let Some(&next) = scratch.frame(depth).branch.get(i) {
                SearchScratch::prefetch_rows(lg, next);
            }
            partial.push(lg.orig[v]);
            self.pivot_rec(lg, partial, depth + 1, strategy, ctx, scratch);
            partial.pop();
            if ctx.branch_loop_donated(slot) {
                break;
            }
            let mut f = scratch.frame_mut(depth).parts();
            f.c.remove(v);
            f.x.insert(v);
        }
        ctx.end_branch_loop(slot);
    }

    /// The `BK_Fac` loop (Algorithm 10): start from an arbitrary pivot and shrink
    /// the branching set whenever a processed vertex offers a smaller one.
    fn factor_branching(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        depth: usize,
        ctx: &mut Ctx<'_>,
        scratch: &mut SearchScratch,
    ) {
        {
            let f = scratch.frame_mut(depth);
            let Some(v0) = f.c().first() else { return };
            f.branch_from_c_and_not(lg.cand(v0));
        }
        while let Some(&u) = scratch.frame(depth).branch.first() {
            if ctx.budget_step_abort() {
                return;
            }
            if scratch.frame(depth).c().contains(u) {
                scratch.make_child(depth, lg, u);
                partial.push(lg.orig[u]);
                self.pivot_rec(lg, partial, depth + 1, PivotStrategy::Factor, ctx, scratch);
                partial.pop();
                let mut f = scratch.frame_mut(depth).parts();
                f.c.remove(u);
                f.x.insert(u);
            }
            let f = scratch.frame_mut(depth).parts();
            let c = f.c.as_ref();
            f.branch.retain(|&w| w != u && c.contains(w));
            f.alt.clear();
            c.and_not_collect(lg.cand(u), f.alt);
            if f.alt.len() < f.branch.len() {
                std::mem::swap(f.branch, f.alt);
            }
        }
    }

    /// The `BK_Rcd` recursion (Algorithm 9): keep branching on the minimum-degree
    /// candidate until the candidate graph becomes a clique, then report directly.
    fn rcd_rec(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        depth: usize,
        ctx: &mut Ctx<'_>,
        scratch: &mut SearchScratch,
    ) {
        ctx.stats.recursive_calls += 1;
        {
            let f = scratch.frame(depth);
            if f.c().is_empty() && f.x().is_empty() {
                ctx.report(partial);
                return;
            }
        }
        let t = ctx.config.early_termination_t;
        loop {
            if ctx.budget_step_abort() {
                return;
            }
            let (c_len, x_empty) = {
                let f = scratch.frame(depth);
                if f.c().is_empty() {
                    return;
                }
                (f.c().len(), f.x().is_empty())
            };
            if ctx.topk_prunes(lg, scratch.frame(depth).c(), partial.len()) {
                return;
            }
            let scan = {
                let f = scratch.frame(depth);
                scan_branch(lg, f.c(), f.x())
            };
            if t >= 1 && plex_condition(&scan, c_len, t) {
                ctx.stats.et_eligible += 1;
                if x_empty && self.try_early_terminate(lg, depth, partial, ctx, scratch) {
                    return;
                }
            }
            let candidate_is_clique =
                scan.candidate_matches_graph && scan.min_candidate_gdegree + 1 == c_len;
            if candidate_is_clique {
                if !scan.dominated_by_exclusion {
                    let before = partial.len();
                    for v in scratch.frame(depth).c().iter() {
                        partial.push(lg.orig[v]);
                    }
                    ctx.report(partial);
                    partial.truncate(before);
                }
                return;
            }
            let v = scan.min_degree_candidate;
            scratch.make_child(depth, lg, v);
            partial.push(lg.orig[v]);
            self.rcd_rec(lg, partial, depth + 1, ctx, scratch);
            partial.pop();
            let mut f = scratch.frame_mut(depth).parts();
            f.c.remove(v);
            f.x.insert(v);
        }
    }

    /// Attempts to early-terminate the branch `(S, C, ∅)` at `depth`. Returns
    /// `true` when the cliques were emitted (the caller must then stop
    /// branching).
    fn try_early_terminate(
        &self,
        lg: &LocalGraph,
        depth: usize,
        partial: &mut Vec<VertexId>,
        ctx: &mut Ctx<'_>,
        scratch: &SearchScratch,
    ) -> bool {
        let c = scratch.frame(depth).c();
        // Split borrows: the emit closure updates clique statistics and streams to
        // the reporter while the remaining counters are updated afterwards.
        let stats = &mut ctx.stats;
        let reporter = &mut *ctx.reporter;
        let topk = &mut ctx.topk;
        let mut emitted_sizes_max = 0usize;
        let mut emit = |clique: &[VertexId]| {
            emitted_sizes_max = emitted_sizes_max.max(clique.len());
            if let Some(tb) = topk.as_deref_mut() {
                tb.observe(clique.len());
            }
            reporter.report(clique);
        };
        match enumerate_plex_branch(lg, c, partial, &mut emit) {
            Some(count) => {
                stats.et_terminated += 1;
                stats.et_cliques += count;
                stats.maximal_cliques += count;
                stats.max_clique_size = stats.max_clique_size.max(emitted_sizes_max);
                true
            }
            None => false,
        }
    }
}

/// Rebuilds the worker's local graph over `candidates ++ excluded` and fills
/// frame 0 of the arena with the root's `C`/`X` sets. Reuses every buffer.
/// Shared with the branch-and-bound engine in [`crate::maxclique`].
pub(crate) fn build_root_branch<G, F>(g: &G, worker: &mut WorkerState, keep_edge: F)
where
    G: GraphTopology,
    F: Fn(VertexId, VertexId) -> bool,
{
    let WorkerState {
        scratch,
        lg,
        position,
        candidates,
        excluded,
        vertices,
        ..
    } = worker;
    vertices.clear();
    vertices.extend_from_slice(candidates);
    vertices.extend_from_slice(excluded);
    lg.rebuild_filtered(g, vertices, keep_edge, position);
    let k = vertices.len();
    scratch.ensure(0);
    let f0 = scratch.frame_mut(0);
    f0.reset(k);
    let mut c = f0.c_mut();
    for i in 0..candidates.len() {
        c.insert(i);
    }
    let mut x = f0.x_mut();
    for i in candidates.len()..k {
        x.insert(i);
    }
}

/// Fills the frame's branch list with the candidates that survive pruning by
/// the pivot's candidate neighbourhood.
fn prune_by_pivot_into(lg: &LocalGraph, f: &mut Frame, pivot: usize) {
    if pivot == usize::MAX {
        f.branch_from_c();
        return;
    }
    let row = if f.c().contains(pivot) {
        lg.cand(pivot)
    } else {
        lg.gadj(pivot)
    };
    f.branch_from_c_and_not(row);
}

// ----------------------------------------------------------------------
// Convenience entry points
// ----------------------------------------------------------------------

/// Enumerates every maximal clique of `g` under `config`, streaming cliques to
/// `reporter`. Panics on invalid configurations (use [`Solver::new`] for a
/// fallible API).
pub fn enumerate<G: GraphTopology>(
    g: &G,
    config: &SolverConfig,
    reporter: &mut dyn CliqueReporter,
) -> EnumerationStats {
    Solver::new(g, *config)
        .expect("invalid solver configuration")
        .run(reporter)
}

/// Enumerates and collects every maximal clique (each sorted ascending).
pub fn enumerate_collect<G: GraphTopology>(
    g: &G,
    config: &SolverConfig,
) -> (Vec<Vec<VertexId>>, EnumerationStats) {
    let mut reporter = CollectReporter::new();
    let stats = enumerate(g, config, &mut reporter);
    (reporter.into_sorted(), stats)
}

/// Counts the maximal cliques of `g` without materialising them.
pub fn count_maximal_cliques<G: GraphTopology>(
    g: &G,
    config: &SolverConfig,
) -> (u64, EnumerationStats) {
    let mut reporter = CountReporter::new();
    let stats = enumerate(g, config, &mut reporter);
    (reporter.count, stats)
}

/// Returns one maximum clique of `g` (largest maximal clique), enumerated with
/// the given configuration.
pub fn maximum_clique<G: GraphTopology>(g: &G, config: &SolverConfig) -> Vec<VertexId> {
    let mut reporter = crate::report::MaximumCliqueReporter::new();
    enumerate(g, config, &mut reporter);
    reporter.best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_maximal_cliques;
    use crate::verify::verify_cliques;

    fn all_presets() -> Vec<(&'static str, SolverConfig)> {
        SolverConfig::named_presets()
    }

    fn check_graph(g: &Graph) {
        let expected = naive_maximal_cliques(g);
        for (name, config) in all_presets() {
            let (got, stats) = enumerate_collect(g, &config);
            assert_eq!(
                got,
                expected,
                "{name} differs from reference on n={}",
                g.n()
            );
            assert_eq!(
                stats.maximal_cliques as usize,
                expected.len(),
                "{name} count"
            );
            assert!(verify_cliques(g, &got).is_empty(), "{name} verification");
        }
    }

    /// The hybrid-layer equivalence proof: enumeration through the dense
    /// global [`mce_graph::AdjMatrix`] must produce the *identical* ordered
    /// clique stream as the sparse CSR path, for every named preset. The
    /// engine only reads the global graph through [`GraphTopology`], so any
    /// divergence here means a representation leaked into the output order.
    fn check_dense_sparse_identical(g: &Graph) {
        let dense = mce_graph::AdjMatrix::from_topology(g);
        for (name, config) in all_presets() {
            let mut sparse_out = crate::report::CollectReporter::new();
            let sparse_stats = enumerate(g, &config, &mut sparse_out);
            let mut dense_out = crate::report::CollectReporter::new();
            let dense_stats = enumerate(&dense, &config, &mut dense_out);
            // Raw emission order, not sorted: the streams must match
            // clique-for-clique, which is what makes the byte-level CLI
            // output representation-independent.
            assert_eq!(
                sparse_out.cliques,
                dense_out.cliques,
                "{name}: dense and sparse streams diverge on n={}",
                g.n()
            );
            assert_eq!(
                sparse_stats.maximal_cliques, dense_stats.maximal_cliques,
                "{name} counts"
            );
            assert_eq!(
                sparse_stats.initial_branches, dense_stats.initial_branches,
                "{name} root branches"
            );
        }
    }

    #[test]
    fn dense_and_sparse_global_layers_are_equivalent() {
        check_dense_sparse_identical(&Graph::empty(0));
        check_dense_sparse_identical(&Graph::empty(3));
        check_dense_sparse_identical(&Graph::complete(6));
        check_dense_sparse_identical(
            &Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap(),
        );
        check_dense_sparse_identical(
            &Graph::from_edges(
                8,
                [
                    (0, 1),
                    (0, 2),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (3, 5),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (4, 6),
                ],
            )
            .unwrap(),
        );
        // Moon–Moser K(3,3,3): many overlapping maximal cliques.
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        check_dense_sparse_identical(&Graph::from_edges(9, edges).unwrap());
    }

    #[test]
    fn empty_and_trivial_graphs() {
        check_graph(&Graph::empty(0));
        check_graph(&Graph::empty(1));
        check_graph(&Graph::empty(4));
        check_graph(&Graph::from_edges(2, [(0, 1)]).unwrap());
    }

    #[test]
    fn paths_cycles_and_stars() {
        check_graph(&Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap());
        check_graph(
            &Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap(),
        );
        check_graph(&Graph::from_edges(6, (1..6).map(|v| (0, v))).unwrap());
    }

    #[test]
    fn complete_graphs() {
        for n in 1..=7 {
            check_graph(&Graph::complete(n));
        }
    }

    #[test]
    fn moon_moser_k9() {
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(9, edges).unwrap();
        check_graph(&g);
        let (count, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(count, 27);
    }

    #[test]
    fn two_triangles_with_bridge() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
                (5, 3),
            ],
        )
        .unwrap();
        check_graph(&g);
    }

    #[test]
    fn clique_with_pendants_and_isolated_vertices() {
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (0, 6),
            ],
        )
        .unwrap();
        // vertices 7, 8 isolated
        check_graph(&g);
    }

    #[test]
    fn hybrid_depths_agree_with_reference() {
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 6),
            ],
        )
        .unwrap();
        let expected = naive_maximal_cliques(&g);
        for d in 1..=4 {
            let (got, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp_depth(d));
            assert_eq!(got, expected, "depth {d}");
        }
    }

    #[test]
    fn et_levels_agree_with_reference() {
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 6),
                (7, 8),
                (8, 9),
                (7, 9),
            ],
        )
        .unwrap();
        let expected = naive_maximal_cliques(&g);
        for t in 0..=3 {
            let (got, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_pp_et(t));
            assert_eq!(got, expected, "t = {t}");
            if t == 0 {
                assert_eq!(stats.et_terminated, 0);
            }
        }
    }

    #[test]
    fn stats_track_calls_and_branches() {
        let g = Graph::complete(6);
        let (_, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_bare());
        assert!(stats.recursive_calls > 0);
        assert!(stats.initial_branches > 0);
        assert_eq!(stats.maximal_cliques, 1);
        assert_eq!(stats.max_clique_size, 6);
    }

    #[test]
    fn graph_reduction_reports_pendant_cliques() {
        // Star: every maximal clique is an edge; all leaves are simplicial.
        let g = Graph::from_edges(5, (1..5).map(|v| (0, v))).unwrap();
        let (got, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(got.len(), 4);
        assert!(stats.gr_cliques > 0);
        assert!(stats.gr_removed_vertices > 0);
    }

    #[test]
    fn partitioned_runs_cover_all_cliques_exactly_once() {
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 6),
                (7, 8),
            ],
        )
        .unwrap();
        let expected = naive_maximal_cliques(&g);
        for parts in [1usize, 2, 3, 5] {
            let solver = Solver::new(&g, SolverConfig::hbbmc_pp()).unwrap();
            let mut all = Vec::new();
            for part in 0..parts {
                let mut collector = CollectReporter::new();
                solver.run_partition(part, parts, &mut collector);
                all.extend(collector.cliques);
            }
            all.sort();
            assert_eq!(all, expected, "parts = {parts}");
        }
    }

    #[test]
    fn run_with_state_reuses_buffers_across_runs() {
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
            ],
        )
        .unwrap();
        let solver = Solver::new(&g, SolverConfig::hbbmc_pp()).unwrap();
        let mut state = EnumerationState::new();
        let mut first = CollectReporter::new();
        solver.run_with_state(&mut state, &mut first);
        let mut second = CollectReporter::new();
        solver.run_with_state(&mut state, &mut second);
        assert_eq!(first.into_sorted(), second.into_sorted());
        // The warm state also works across different graphs.
        let g2 = Graph::complete(12);
        let solver2 = Solver::new(&g2, SolverConfig::hbbmc_pp()).unwrap();
        let mut third = CountReporter::new();
        solver2.run_with_state(&mut state, &mut third);
        assert_eq!(third.count, 1);
    }

    #[test]
    fn maximum_clique_helper() {
        let g =
            Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)]).unwrap();
        let best = maximum_clique(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(best.len(), 3);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let g = Graph::complete(3);
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.early_termination_t = 9;
        assert!(Solver::new(&g, cfg).is_err());
    }

    #[test]
    fn pulling_plans_skip_component_shards() {
        let g = Graph::complete(4);
        let solver = Solver::new(&g, SolverConfig::hbbmc_pp()).unwrap();
        assert!(solver.prepare().shards.is_none());
    }

    #[test]
    fn splitting_plan_builds_component_shards() {
        // Two triangles in separate components plus a pendant.
        let g =
            Graph::from_edges(8, [(0, 1), (1, 2), (0, 2), (4, 5), (5, 6), (4, 6), (6, 7)]).unwrap();
        let mut cfg = SolverConfig::hbbmc_bare();
        cfg.scheduler = RootScheduler::Splitting;
        let solver = Solver::new(&g, cfg).unwrap();
        let plan = solver.prepare();
        let shards = plan.shards.as_ref().expect("splitting plan has shards");
        assert_eq!(shards.shard_count(), 2);
        // Every rank is claimed exactly once across all chunks.
        let mut seen = vec![0usize; plan.root_count()];
        for chunk in 0..shards.chunk_count() {
            for rank in shards.chunk(chunk) {
                seen[rank] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn root_shards_group_by_component_and_cap_chunks() {
        // Interleaved component assignment: component 1 first appears at
        // rank 0, component 0 at rank 1.
        let shards = RootShards::build(&[1, 0, 1, 0, 0, 1]);
        assert_eq!(shards.shard_count(), 2);
        let claimed: Vec<Vec<usize>> = (0..shards.chunk_count())
            .map(|c| shards.chunk(c).collect())
            .collect();
        // Component 1's ranks (first seen at rank 0) come first, in rank
        // order; then component 0's.
        assert_eq!(claimed.concat(), vec![0, 2, 5, 1, 3, 4]);
        for chunk in &claimed {
            assert!(chunk.len() <= crate::pool::SPLIT_CHUNK);
        }
        // A chunk never straddles components.
        assert!(claimed.iter().all(|chunk| {
            let comps: Vec<usize> = chunk.iter().map(|&r| [1, 0, 1, 0, 0, 1][r]).collect();
            comps.windows(2).all(|w| w[0] == w[1])
        }));

        // A big single component is cut into SPLIT_CHUNK-sized runs.
        let big = RootShards::build(&[0; 20]);
        assert_eq!(big.shard_count(), 1);
        assert!(big.chunk_count() >= 20 / crate::pool::SPLIT_CHUNK);
        let all: Vec<usize> = (0..big.chunk_count()).flat_map(|c| big.chunk(c)).collect();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
