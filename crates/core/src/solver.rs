//! The enumeration engine: initial branching, vertex-oriented recursion
//! (with every pivot variant), edge-oriented recursion and their hybrid.
//!
//! A single [`Solver`] drives every named algorithm of the paper — the choice
//! of initial branching, pivot strategy, early-termination level and graph
//! reduction is all carried by [`SolverConfig`]. The engine follows the
//! two-phase structure of the paper's Algorithms 1–4:
//!
//! 1. **Root phase.** The universal branch `(∅, G, ∅)` is partitioned either
//!    vertex-wise (Eq. 1, over a chosen vertex ordering) or edge-wise
//!    (Eq. 2 + Eq. 3, over a chosen edge ordering). Each root branch extracts
//!    the relevant neighbourhood into a dense `LocalGraph` — bounded by the
//!    degeneracy δ (vertex roots) or the truss parameter τ (edge roots).
//! 2. **Recursive phase.** Inside the local graph the branch `(S, C, X)` is
//!    refined by vertex-oriented branching with pivoting (Algorithm 1), the
//!    `BK_Rcd` top-down rule, or — for hybrid depths `d ≥ 2` (Table IV) —
//!    further edge-oriented levels before switching.
//!
//! Early termination (Section IV) and graph reduction are hooked into both
//! phases exactly as the paper describes: the t-plex test rides along the
//! pivot scan, and reduction-removed vertices act as permanent exclusion
//! members of every branch they touch.

use std::time::Instant;

use mce_graph::ordering::{edge_ordering, vertex_ordering, EdgeOrdering};
use mce_graph::{BitSet, Graph, VertexId};

use crate::config::{InitialBranching, PivotStrategy, RecursionStrategy, SolverConfig};
use crate::early_term::enumerate_plex_branch;
use crate::local::LocalGraph;
use crate::pivot::{plex_condition, scan_branch};
use crate::reduction::{reduce, Reduction};
use crate::report::{CliqueReporter, CollectReporter, CountReporter};
use crate::stats::EnumerationStats;

/// Maximal clique enumeration driver for a fixed graph and configuration.
pub struct Solver<'g> {
    graph: &'g Graph,
    config: SolverConfig,
}

struct Ctx<'a> {
    config: SolverConfig,
    stats: EnumerationStats,
    reporter: &'a mut dyn CliqueReporter,
}

impl Ctx<'_> {
    fn report(&mut self, clique: &[VertexId]) {
        self.stats.maximal_cliques += 1;
        self.stats.max_clique_size = self.stats.max_clique_size.max(clique.len());
        self.reporter.report(clique);
    }
}

impl<'g> Solver<'g> {
    /// Creates a solver after validating the configuration.
    pub fn new(graph: &'g Graph, config: SolverConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Solver { graph, config })
    }

    /// The configuration this solver runs with.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Enumerates every maximal clique of the graph, streaming them to
    /// `reporter`, and returns the run statistics.
    pub fn run(&self, reporter: &mut dyn CliqueReporter) -> EnumerationStats {
        self.run_partition(0, 1, reporter)
    }

    /// Processes only the root branches whose rank `r` satisfies
    /// `r % parts == part` (plus, for `part == 0`, the cliques emitted by graph
    /// reduction and by isolated vertices). Running every part exactly once
    /// over the same graph and configuration — in any order or in parallel —
    /// reports every maximal clique exactly once. Used by the parallel driver.
    pub fn run_partition(
        &self,
        part: usize,
        parts: usize,
        reporter: &mut dyn CliqueReporter,
    ) -> EnumerationStats {
        assert!(
            parts > 0 && part < parts,
            "invalid partition {part}/{parts}"
        );
        let start = Instant::now();
        let mut ctx = Ctx {
            config: self.config,
            stats: EnumerationStats::default(),
            reporter,
        };
        let g = self.graph;

        let reduction = if self.config.graph_reduction {
            reduce(g)
        } else {
            Reduction::disabled(g.n())
        };
        ctx.stats.gr_removed_vertices = reduction.removed_count() as u64;
        if part == 0 {
            for clique in &reduction.cliques {
                ctx.stats.gr_cliques += 1;
                ctx.report(clique);
            }
        }

        match self.config.initial {
            InitialBranching::Vertex(kind) => {
                self.run_vertex_root(kind, &reduction, part, parts, &mut ctx)
            }
            InitialBranching::Edge { ordering, depth } => {
                self.run_edge_root(ordering, depth, &reduction, part, parts, &mut ctx)
            }
        }

        ctx.stats.elapsed = start.elapsed();
        ctx.stats
    }

    // ------------------------------------------------------------------
    // Root phase
    // ------------------------------------------------------------------

    fn run_vertex_root(
        &self,
        kind: mce_graph::VertexOrderingKind,
        reduction: &Reduction,
        part: usize,
        parts: usize,
        ctx: &mut Ctx<'_>,
    ) {
        let g = self.graph;
        let ordering_start = Instant::now();
        let order = vertex_ordering(g, kind);
        let mut position = vec![0usize; g.n()];
        for (i, &v) in order.iter().enumerate() {
            position[v as usize] = i;
        }
        ctx.stats.ordering_time = ordering_start.elapsed();

        for (rank, &v) in order.iter().enumerate() {
            if rank % parts != part || reduction.removed[v as usize] {
                continue;
            }
            let mut candidates = Vec::new();
            let mut excluded = Vec::new();
            for &u in g.neighbors(v) {
                if reduction.removed[u as usize] || position[u as usize] < rank {
                    excluded.push(u);
                } else {
                    candidates.push(u);
                }
            }
            ctx.stats.initial_branches += 1;
            let (lg, c, x) = build_branch(g, &candidates, &excluded, |_, _| true);
            let mut partial = vec![v];
            self.dispatch(&lg, &mut partial, c, x, 0, None, ctx);
        }
    }

    fn run_edge_root(
        &self,
        kind: mce_graph::EdgeOrderingKind,
        depth: usize,
        reduction: &Reduction,
        part: usize,
        parts: usize,
        ctx: &mut Ctx<'_>,
    ) {
        let g = self.graph;
        let ordering_start = Instant::now();
        let eo = edge_ordering(g, kind);
        ctx.stats.ordering_time = ordering_start.elapsed();

        let mut common = Vec::new();
        for (rank, &edge) in eo.order.iter().enumerate() {
            if rank % parts != part {
                continue;
            }
            let (u, v) = eo.index.endpoints(edge);
            if reduction.removed[u as usize] || reduction.removed[v as usize] {
                continue;
            }
            g.common_neighbors_into(u, v, &mut common);
            let mut candidates = Vec::new();
            let mut excluded = Vec::new();
            for &w in &common {
                if reduction.removed[w as usize] {
                    excluded.push(w);
                    continue;
                }
                let uw = eo.index.edge_id(u, w).expect("triangle edge (u,w) exists");
                let vw = eo.index.edge_id(v, w).expect("triangle edge (v,w) exists");
                if eo.position[uw as usize] > rank && eo.position[vw as usize] > rank {
                    candidates.push(w);
                } else {
                    excluded.push(w);
                }
            }
            ctx.stats.initial_branches += 1;
            // Eq. (2): edges already processed at the root are removed from the
            // candidate graph of this branch.
            let (lg, c, x) = build_branch(g, &candidates, &excluded, |a, b| {
                match eo.index.edge_id(a, b) {
                    Some(e) => eo.position[e as usize] > rank,
                    None => true,
                }
            });
            let mut partial = vec![u, v];
            self.dispatch(
                &lg,
                &mut partial,
                c,
                x,
                depth.saturating_sub(1),
                Some(&eo),
                ctx,
            );
        }

        // Eq. (3) at the root: isolated vertices are maximal 1-cliques.
        if part == 0 {
            for v in g.vertices() {
                if g.degree(v) == 0 && !reduction.removed[v as usize] {
                    ctx.stats.initial_branches += 1;
                    ctx.report(&[v]);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Recursive phase
    // ------------------------------------------------------------------

    fn dispatch(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        c: BitSet,
        x: BitSet,
        edge_levels: usize,
        eo: Option<&EdgeOrdering>,
        ctx: &mut Ctx<'_>,
    ) {
        if edge_levels > 0 {
            if let Some(eo) = eo {
                self.edge_branch_step(lg, partial, c, x, edge_levels, eo, ctx);
                return;
            }
        }
        match self.config.recursion {
            RecursionStrategy::Pivoting(strategy) => {
                self.pivot_rec(lg, partial, c, x, strategy, ctx)
            }
            RecursionStrategy::Rcd => self.rcd_rec(lg, partial, c, x, ctx),
        }
    }

    /// One edge-oriented branching level (Eq. 2 + Eq. 3) inside a local graph.
    fn edge_branch_step(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        c: BitSet,
        x: BitSet,
        edge_levels: usize,
        eo: &EdgeOrdering,
        ctx: &mut Ctx<'_>,
    ) {
        ctx.stats.recursive_calls += 1;
        if c.is_empty() && x.is_empty() {
            ctx.report(partial);
            return;
        }

        let members: Vec<usize> = c.iter().collect();
        // Candidate edges, ordered by their global position (the branch inherits π_τ).
        let mut edges: Vec<(usize, usize, usize)> = Vec::new();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if lg.cand(a).contains(b) {
                    if let Some(e) = eo.index.edge_id(lg.orig[a], lg.orig[b]) {
                        edges.push((eo.position[e as usize], a, b));
                    }
                }
            }
        }
        edges.sort_unstable();

        for &(pos, a, b) in &edges {
            // Earlier sibling edges of this level (and the current one) are
            // excluded from the child's candidate graph (Eq. 2), so candidacy
            // must be evaluated against the restricted adjacency: a common
            // neighbour whose edge to `a` or `b` was already processed belongs
            // to the exclusion side.
            let child_lg = lg.restrict_candidate(|pu, pv| match eo.index.edge_id(pu, pv) {
                Some(e) => eo.position[e as usize] > pos,
                None => true,
            });
            let mut c_child = c.clone();
            c_child.intersect_with(child_lg.cand(a));
            c_child.intersect_with(child_lg.cand(b));
            let mut x_child = c.clone();
            x_child.union_with(&x);
            x_child.intersect_with(lg.gadj(a));
            x_child.intersect_with(lg.gadj(b));
            x_child.difference_with(&c_child);
            partial.push(lg.orig[a]);
            partial.push(lg.orig[b]);
            self.dispatch(
                &child_lg,
                partial,
                c_child,
                x_child,
                edge_levels.saturating_sub(1),
                Some(eo),
                ctx,
            );
            partial.truncate(partial.len() - 2);
        }

        // Eq. (3): candidates with no candidate edge can only extend S by themselves.
        for &w in &members {
            if lg.cand(w).intersection_len(&c) == 0 {
                ctx.stats.recursive_calls += 1;
                let extendable =
                    lg.gadj(w).intersection_len(&c) > 0 || lg.gadj(w).intersection_len(&x) > 0;
                if !extendable {
                    partial.push(lg.orig[w]);
                    ctx.report(partial);
                    partial.pop();
                }
            }
        }
    }

    /// Vertex-oriented branching with pivoting (Algorithm 1 with the strategy's
    /// pivot rule), plus the early-termination hook of Section IV.
    fn pivot_rec(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        c: BitSet,
        x: BitSet,
        strategy: PivotStrategy,
        ctx: &mut Ctx<'_>,
    ) {
        ctx.stats.recursive_calls += 1;
        if c.is_empty() {
            if x.is_empty() {
                ctx.report(partial);
            }
            return;
        }
        let t = ctx.config.early_termination_t;
        let need_scan =
            t >= 1 || matches!(strategy, PivotStrategy::Classic | PivotStrategy::Refined);
        let scan = if need_scan {
            Some(scan_branch(lg, &c, &x))
        } else {
            None
        };

        if let Some(scan) = &scan {
            if t >= 1 && plex_condition(scan, c.len(), t) {
                ctx.stats.et_eligible += 1;
                if x.is_empty() && self.try_early_terminate(lg, &c, partial, ctx) {
                    return;
                }
            }
        }

        let mut c = c;
        let mut x = x;
        match strategy {
            PivotStrategy::None => {
                let branch_set: Vec<usize> = c.iter().collect();
                self.branch_on(lg, partial, &mut c, &mut x, &branch_set, strategy, ctx);
            }
            PivotStrategy::Classic => {
                let scan = scan.as_ref().expect("classic pivot requires a scan");
                let branch_set = prune_by_pivot(lg, &c, scan.pivot);
                self.branch_on(lg, partial, &mut c, &mut x, &branch_set, strategy, ctx);
            }
            PivotStrategy::Refined => {
                let scan = scan.as_ref().expect("refined pivot requires a scan");
                if scan.dominated_by_exclusion {
                    return;
                }
                if let Some(u) = scan.universal_candidate {
                    // `u` is adjacent to every other candidate: it belongs to every
                    // maximal clique of this branch, so absorb it without branching.
                    partial.push(lg.orig[u]);
                    let mut c_child = c.clone();
                    c_child.remove(u);
                    let mut x_child = x.clone();
                    x_child.intersect_with(lg.gadj(u));
                    self.pivot_rec(lg, partial, c_child, x_child, strategy, ctx);
                    partial.pop();
                    return;
                }
                let branch_set = prune_by_pivot(lg, &c, scan.pivot);
                self.branch_on(lg, partial, &mut c, &mut x, &branch_set, strategy, ctx);
            }
            PivotStrategy::Factor => {
                self.factor_branching(lg, partial, &mut c, &mut x, ctx);
            }
        }
    }

    /// Branches on every vertex of `branch_set`, moving each to `X` afterwards.
    fn branch_on(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        c: &mut BitSet,
        x: &mut BitSet,
        branch_set: &[usize],
        strategy: PivotStrategy,
        ctx: &mut Ctx<'_>,
    ) {
        for &v in branch_set {
            if !c.contains(v) {
                continue;
            }
            let (c_child, x_child) = make_child(lg, c, x, v);
            partial.push(lg.orig[v]);
            self.pivot_rec(lg, partial, c_child, x_child, strategy, ctx);
            partial.pop();
            c.remove(v);
            x.insert(v);
        }
    }

    /// The `BK_Fac` loop (Algorithm 10): start from an arbitrary pivot and shrink
    /// the branching set whenever a processed vertex offers a smaller one.
    fn factor_branching(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        c: &mut BitSet,
        x: &mut BitSet,
        ctx: &mut Ctx<'_>,
    ) {
        let Some(v0) = c.iter().next() else { return };
        let mut branching: Vec<usize> = c.iter().filter(|&w| !lg.cand(v0).contains(w)).collect();
        while let Some(&u) = branching.first() {
            if c.contains(u) {
                let (c_child, x_child) = make_child(lg, c, x, u);
                partial.push(lg.orig[u]);
                self.pivot_rec(lg, partial, c_child, x_child, PivotStrategy::Factor, ctx);
                partial.pop();
                c.remove(u);
                x.insert(u);
            }
            branching.retain(|&w| w != u && c.contains(w));
            let alternative: Vec<usize> = c.iter().filter(|&w| !lg.cand(u).contains(w)).collect();
            if alternative.len() < branching.len() {
                branching = alternative;
            }
        }
    }

    /// The `BK_Rcd` recursion (Algorithm 9): keep branching on the minimum-degree
    /// candidate until the candidate graph becomes a clique, then report directly.
    fn rcd_rec(
        &self,
        lg: &LocalGraph,
        partial: &mut Vec<VertexId>,
        c: BitSet,
        x: BitSet,
        ctx: &mut Ctx<'_>,
    ) {
        ctx.stats.recursive_calls += 1;
        if c.is_empty() && x.is_empty() {
            ctx.report(partial);
            return;
        }
        let t = ctx.config.early_termination_t;
        let mut c = c;
        let mut x = x;
        loop {
            if c.is_empty() {
                return;
            }
            let scan = scan_branch(lg, &c, &x);
            if t >= 1 && plex_condition(&scan, c.len(), t) {
                ctx.stats.et_eligible += 1;
                if x.is_empty() && self.try_early_terminate(lg, &c, partial, ctx) {
                    return;
                }
            }
            let candidate_is_clique =
                scan.candidate_matches_graph && scan.min_candidate_gdegree + 1 == c.len();
            if candidate_is_clique {
                if !scan.dominated_by_exclusion {
                    let before = partial.len();
                    for v in c.iter() {
                        partial.push(lg.orig[v]);
                    }
                    ctx.report(partial);
                    partial.truncate(before);
                }
                return;
            }
            let v = scan.min_degree_candidate;
            let (c_child, x_child) = make_child(lg, &c, &x, v);
            partial.push(lg.orig[v]);
            self.rcd_rec(lg, partial, c_child, x_child, ctx);
            partial.pop();
            c.remove(v);
            x.insert(v);
        }
    }

    /// Attempts to early-terminate the branch `(S, C, ∅)`. Returns `true` when
    /// the cliques were emitted (the caller must then stop branching).
    fn try_early_terminate(
        &self,
        lg: &LocalGraph,
        c: &BitSet,
        partial: &mut Vec<VertexId>,
        ctx: &mut Ctx<'_>,
    ) -> bool {
        // Split borrows: the emit closure updates clique statistics and streams to
        // the reporter while the remaining counters are updated afterwards.
        let stats = &mut ctx.stats;
        let reporter = &mut *ctx.reporter;
        let mut emitted_sizes_max = 0usize;
        let mut emit = |clique: &[VertexId]| {
            emitted_sizes_max = emitted_sizes_max.max(clique.len());
            reporter.report(clique);
        };
        match enumerate_plex_branch(lg, c, partial, &mut emit) {
            Some(count) => {
                stats.et_terminated += 1;
                stats.et_cliques += count;
                stats.maximal_cliques += count;
                stats.max_clique_size = stats.max_clique_size.max(emitted_sizes_max);
                true
            }
            None => false,
        }
    }
}

/// Builds the local graph and the `C`/`X` bitsets of a root branch.
fn build_branch<F>(
    g: &Graph,
    candidates: &[VertexId],
    excluded: &[VertexId],
    keep_edge: F,
) -> (LocalGraph, BitSet, BitSet)
where
    F: Fn(VertexId, VertexId) -> bool,
{
    let mut vertices = Vec::with_capacity(candidates.len() + excluded.len());
    vertices.extend_from_slice(candidates);
    vertices.extend_from_slice(excluded);
    let lg = LocalGraph::from_vertices_filtered(g, &vertices, keep_edge);
    let k = vertices.len();
    let mut c = BitSet::with_capacity(k);
    for i in 0..candidates.len() {
        c.insert(i);
    }
    let mut x = BitSet::with_capacity(k);
    for i in candidates.len()..k {
        x.insert(i);
    }
    (lg, c, x)
}

/// Creates the child branch obtained by adding local vertex `v` to the partial
/// clique: `C' = C ∩ N_cand(v)`, `X' = ((C ∪ X) ∩ N_G(v)) \ C'`.
///
/// Candidates that are graph-adjacent but candidate-non-adjacent to `v` (their
/// edge was excluded by an edge-oriented ancestor) move to the exclusion side,
/// preserving maximality checks against the original graph.
fn make_child(lg: &LocalGraph, c: &BitSet, x: &BitSet, v: usize) -> (BitSet, BitSet) {
    let mut c_child = c.clone();
    c_child.intersect_with(lg.cand(v));
    let mut x_child = c.clone();
    x_child.union_with(x);
    x_child.intersect_with(lg.gadj(v));
    x_child.difference_with(&c_child);
    (c_child, x_child)
}

/// Candidates to branch on after pruning the pivot's candidate neighbourhood.
fn prune_by_pivot(lg: &LocalGraph, c: &BitSet, pivot: usize) -> Vec<usize> {
    if pivot == usize::MAX {
        return c.iter().collect();
    }
    let adjacency = if c.contains(pivot) {
        lg.cand(pivot)
    } else {
        lg.gadj(pivot)
    };
    c.iter().filter(|&w| !adjacency.contains(w)).collect()
}

// ----------------------------------------------------------------------
// Convenience entry points
// ----------------------------------------------------------------------

/// Enumerates every maximal clique of `g` under `config`, streaming cliques to
/// `reporter`. Panics on invalid configurations (use [`Solver::new`] for a
/// fallible API).
pub fn enumerate(
    g: &Graph,
    config: &SolverConfig,
    reporter: &mut dyn CliqueReporter,
) -> EnumerationStats {
    Solver::new(g, *config)
        .expect("invalid solver configuration")
        .run(reporter)
}

/// Enumerates and collects every maximal clique (each sorted ascending).
pub fn enumerate_collect(
    g: &Graph,
    config: &SolverConfig,
) -> (Vec<Vec<VertexId>>, EnumerationStats) {
    let mut reporter = CollectReporter::new();
    let stats = enumerate(g, config, &mut reporter);
    (reporter.into_sorted(), stats)
}

/// Counts the maximal cliques of `g` without materialising them.
pub fn count_maximal_cliques(g: &Graph, config: &SolverConfig) -> (u64, EnumerationStats) {
    let mut reporter = CountReporter::new();
    let stats = enumerate(g, config, &mut reporter);
    (reporter.count, stats)
}

/// Returns one maximum clique of `g` (largest maximal clique), enumerated with
/// the given configuration.
pub fn maximum_clique(g: &Graph, config: &SolverConfig) -> Vec<VertexId> {
    let mut reporter = crate::report::MaximumCliqueReporter::new();
    enumerate(g, config, &mut reporter);
    reporter.best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_maximal_cliques;
    use crate::verify::verify_cliques;

    fn all_presets() -> Vec<(&'static str, SolverConfig)> {
        SolverConfig::named_presets()
    }

    fn check_graph(g: &Graph) {
        let expected = naive_maximal_cliques(g);
        for (name, config) in all_presets() {
            let (got, stats) = enumerate_collect(g, &config);
            assert_eq!(
                got,
                expected,
                "{name} differs from reference on n={}",
                g.n()
            );
            assert_eq!(
                stats.maximal_cliques as usize,
                expected.len(),
                "{name} count"
            );
            assert!(verify_cliques(g, &got).is_empty(), "{name} verification");
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        check_graph(&Graph::empty(0));
        check_graph(&Graph::empty(1));
        check_graph(&Graph::empty(4));
        check_graph(&Graph::from_edges(2, [(0, 1)]).unwrap());
    }

    #[test]
    fn paths_cycles_and_stars() {
        check_graph(&Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap());
        check_graph(
            &Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap(),
        );
        check_graph(&Graph::from_edges(6, (1..6).map(|v| (0, v))).unwrap());
    }

    #[test]
    fn complete_graphs() {
        for n in 1..=7 {
            check_graph(&Graph::complete(n));
        }
    }

    #[test]
    fn moon_moser_k9() {
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(9, edges).unwrap();
        check_graph(&g);
        let (count, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(count, 27);
    }

    #[test]
    fn two_triangles_with_bridge() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
                (5, 3),
            ],
        )
        .unwrap();
        check_graph(&g);
    }

    #[test]
    fn clique_with_pendants_and_isolated_vertices() {
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (0, 6),
            ],
        )
        .unwrap();
        // vertices 7, 8 isolated
        check_graph(&g);
    }

    #[test]
    fn hybrid_depths_agree_with_reference() {
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 6),
            ],
        )
        .unwrap();
        let expected = naive_maximal_cliques(&g);
        for d in 1..=4 {
            let (got, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp_depth(d));
            assert_eq!(got, expected, "depth {d}");
        }
    }

    #[test]
    fn et_levels_agree_with_reference() {
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 6),
                (7, 8),
                (8, 9),
                (7, 9),
            ],
        )
        .unwrap();
        let expected = naive_maximal_cliques(&g);
        for t in 0..=3 {
            let (got, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_pp_et(t));
            assert_eq!(got, expected, "t = {t}");
            if t == 0 {
                assert_eq!(stats.et_terminated, 0);
            }
        }
    }

    #[test]
    fn stats_track_calls_and_branches() {
        let g = Graph::complete(6);
        let (_, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_bare());
        assert!(stats.recursive_calls > 0);
        assert!(stats.initial_branches > 0);
        assert_eq!(stats.maximal_cliques, 1);
        assert_eq!(stats.max_clique_size, 6);
    }

    #[test]
    fn graph_reduction_reports_pendant_cliques() {
        // Star: every maximal clique is an edge; all leaves are simplicial.
        let g = Graph::from_edges(5, (1..5).map(|v| (0, v))).unwrap();
        let (got, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(got.len(), 4);
        assert!(stats.gr_cliques > 0);
        assert!(stats.gr_removed_vertices > 0);
    }

    #[test]
    fn partitioned_runs_cover_all_cliques_exactly_once() {
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 6),
                (7, 8),
            ],
        )
        .unwrap();
        let expected = naive_maximal_cliques(&g);
        for parts in [1usize, 2, 3, 5] {
            let solver = Solver::new(&g, SolverConfig::hbbmc_pp()).unwrap();
            let mut all = Vec::new();
            for part in 0..parts {
                let mut collector = CollectReporter::new();
                solver.run_partition(part, parts, &mut collector);
                all.extend(collector.cliques);
            }
            all.sort();
            assert_eq!(all, expected, "parts = {parts}");
        }
    }

    #[test]
    fn maximum_clique_helper() {
        let g =
            Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)]).unwrap();
        let best = maximum_clique(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(best.len(), 3);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let g = Graph::complete(3);
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.early_termination_t = 9;
        assert!(Solver::new(&g, cfg).is_err());
    }
}
