//! Query budgets, cooperative cancellation and run outcomes.
//!
//! The paper's early-termination machinery (Section IV) stops *branches*;
//! this module is the layer that stops *queries*. A [`Budget`] bounds an
//! enumeration session three ways:
//!
//! * **`max_cliques`** — stop after this many cliques have been emitted to
//!   the caller's reporter. Enforced at the *ordered output point* (after the
//!   deterministic sequencer), so a capped run emits exactly the first `N`
//!   cliques of the deterministic stream regardless of thread count or
//!   scheduler — an exact byte-prefix of the unbudgeted run.
//! * **`max_steps`** — abort after this many branch steps summed across all
//!   workers. A branch step is one iteration of a branching loop (the same
//!   granularity the splitting scheduler's donation check uses), so the bound
//!   tracks actual work, not wall clock.
//! * **`cancel`** — a cooperative [`CancelToken`] that any thread may trip.
//!   Workers observe it between branch steps and unwind promptly.
//! * **`deadline`** — a wall-clock bound. The clock is polled on the same
//!   relaxed-atomic branch-step cadence the step cap uses (every
//!   `DEADLINE_CHECK_INTERVAL` steps, so the hot loop stays monotonic
//!   loads), surfacing as `Outcome::Truncated(DeadlineExceeded)`.
//!
//! Whatever trips first, the ordered output stream is cut at a *clean* point:
//! the sequencer never emits a rank assembled from partially-aborted parts,
//! so a truncated run's bytes are always an exact prefix of the full
//! deterministic stream (see `parallel`). The final [`Outcome`] reports
//! whether the run ran to completion or was truncated, and why.
//!
//! Internally every budget compiles into a crate-private `BudgetState`: a handful of
//! shared atomics that cost one relaxed load per branch step when armed and
//! nothing at all when no budget is attached (the solver carries an
//! `Option<&BudgetState>` and skips the checks entirely for `None`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mce_graph::VertexId;

use crate::report::CliqueReporter;

/// Cooperative cancellation handle for an enumeration session.
///
/// Cloning shares the underlying flag: cancel any clone and every worker of
/// the session observes it between branch steps. Cancellation is a latch —
/// once tripped it stays tripped.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token; every session holding a clone stops at its next
    /// branch-step check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resource bounds of one enumeration session. The default is unlimited.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Stop after this many cliques have been emitted to the caller.
    pub max_cliques: Option<u64>,
    /// Abort after this many branch steps summed across all workers.
    pub max_steps: Option<u64>,
    /// External cooperative cancellation.
    pub cancel: Option<CancelToken>,
    /// Abort once this much wall-clock time has elapsed since the session's
    /// budget state was compiled (i.e. since admission).
    pub deadline: Option<Duration>,
}

impl Budget {
    /// A budget with no limits (the classic fire-and-forget run).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget capping only the number of emitted cliques.
    pub fn cliques(max: u64) -> Self {
        Budget {
            max_cliques: Some(max),
            ..Self::default()
        }
    }

    /// A budget capping only the number of branch steps.
    pub fn steps(max: u64) -> Self {
        Budget {
            max_steps: Some(max),
            ..Self::default()
        }
    }

    /// A budget capping only the wall-clock time.
    pub fn within(deadline: Duration) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Whether any bound or token is attached.
    pub fn is_limited(&self) -> bool {
        self.max_cliques.is_some()
            || self.max_steps.is_some()
            || self.cancel.is_some()
            || self.deadline.is_some()
    }

    /// Returns this budget with the given cancellation token attached.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Returns this budget with the given wall-clock deadline attached.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a truncated run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TruncationReason {
    /// [`Budget::max_cliques`] was reached.
    CliqueLimit,
    /// [`Budget::max_steps`] was exhausted.
    StepLimit,
    /// The session's [`CancelToken`] was tripped.
    Cancelled,
    /// [`Budget::deadline`] elapsed before the run finished.
    DeadlineExceeded,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruncationReason::CliqueLimit => write!(f, "clique limit"),
            TruncationReason::StepLimit => write!(f, "step limit"),
            TruncationReason::Cancelled => write!(f, "cancelled"),
            TruncationReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// How an enumeration session ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The full result was produced.
    Complete,
    /// The run stopped early; the emitted stream is an exact prefix of the
    /// complete deterministic stream.
    Truncated {
        /// Which bound tripped first.
        reason: TruncationReason,
    },
}

impl Outcome {
    /// Whether the run was cut short.
    pub fn is_truncated(&self) -> bool {
        matches!(self, Outcome::Truncated { .. })
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Complete => write!(f, "complete"),
            Outcome::Truncated { reason } => write!(f, "truncated ({reason})"),
        }
    }
}

// Encoding of the first-tripped reason in `BudgetState::reason`.
const REASON_NONE: u8 = 0;
const REASON_CLIQUES: u8 = 1;
const REASON_STEPS: u8 = 2;
const REASON_CANCELLED: u8 = 3;
const REASON_DEADLINE: u8 = 4;

/// Branch steps between wall-clock polls of an armed deadline. Keeps the hot
/// loop at one relaxed `fetch_add` per step (the same cadence the step cap
/// pays) while bounding deadline-detection latency to this many steps per
/// worker.
pub(crate) const DEADLINE_CHECK_INTERVAL: u64 = 64;

/// Shared runtime state of one budgeted session: the compiled [`Budget`]
/// plus the atomics every worker consults between branch steps.
#[derive(Debug)]
pub(crate) struct BudgetState {
    /// Latched stop signal (set by whichever bound trips first).
    stop: AtomicBool,
    /// First reason that tripped (`REASON_*`), set exactly once.
    reason: AtomicU8,
    /// Branch steps consumed across all workers.
    steps: AtomicU64,
    /// Step bound (`u64::MAX` when unlimited).
    max_steps: u64,
    /// Cliques emitted through [`BudgetReporter`] so far.
    emitted: AtomicU64,
    /// Emission bound (`u64::MAX` when unlimited).
    max_cliques: u64,
    /// External cancellation, polled alongside the latch.
    token: Option<CancelToken>,
    /// Wall-clock bound, compiled to an absolute instant at admission.
    deadline: Option<Instant>,
}

impl BudgetState {
    /// Compiles a budget into its shared runtime state.
    pub fn new(budget: &Budget) -> Self {
        BudgetState {
            stop: AtomicBool::new(false),
            reason: AtomicU8::new(REASON_NONE),
            steps: AtomicU64::new(0),
            max_steps: budget.max_steps.unwrap_or(u64::MAX),
            emitted: AtomicU64::new(0),
            max_cliques: budget.max_cliques.unwrap_or(u64::MAX),
            token: budget.cancel.clone(),
            deadline: budget.deadline.map(|d| Instant::now() + d),
        }
    }

    /// Latches the stop signal with `reason` (the first caller wins).
    fn trip(&self, reason: u8) {
        let _ =
            self.reason
                .compare_exchange(REASON_NONE, reason, Ordering::Relaxed, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether workers must stop, polling the external token as a side
    /// effect. Does not consume a branch step.
    #[inline]
    pub fn should_stop(&self) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                self.trip(REASON_CANCELLED);
                return true;
            }
        }
        false
    }

    /// Whether the armed deadline has passed, tripping the latch when so.
    fn check_deadline(&self) -> bool {
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.trip(REASON_DEADLINE);
                true
            }
            _ => false,
        }
    }

    /// Accounts one branch step; returns `true` when the caller must abort
    /// (budget exhausted, deadline passed or session cancelled).
    #[inline]
    pub fn note_step(&self) -> bool {
        if self.should_stop() {
            return true;
        }
        let taken = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if taken > self.max_steps {
            self.trip(REASON_STEPS);
            return true;
        }
        // Poll the clock on the first step and every interval thereafter: the
        // common (deadline-free) case pays only the `Option` discriminant.
        if self.deadline.is_some() && taken % DEADLINE_CHECK_INTERVAL == 1 && self.check_deadline()
        {
            return true;
        }
        false
    }

    /// Emission gate of the ordered output point: `true` means "forward this
    /// clique", `false` means the clique cap is reached (the stop signal is
    /// latched and the clique is dropped).
    #[inline]
    pub fn try_emit(&self) -> bool {
        if self.max_cliques == u64::MAX {
            return true;
        }
        if self.emitted.load(Ordering::Relaxed) >= self.max_cliques {
            self.trip(REASON_CLIQUES);
            return false;
        }
        self.emitted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Branch steps consumed so far across all workers (the counter
    /// [`Self::note_step`] advances). Serving layers read this after a run to
    /// charge per-client step quotas.
    pub fn steps_taken(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// The session's outcome so far: `Complete` until a bound trips.
    pub fn outcome(&self) -> Outcome {
        // A cancelled token (or an expired deadline) may not have been polled
        // since the last worker exited; surface both.
        if !self.should_stop() {
            self.check_deadline();
        }
        match self.reason.load(Ordering::Relaxed) {
            REASON_CLIQUES => Outcome::Truncated {
                reason: TruncationReason::CliqueLimit,
            },
            REASON_STEPS => Outcome::Truncated {
                reason: TruncationReason::StepLimit,
            },
            REASON_CANCELLED => Outcome::Truncated {
                reason: TruncationReason::Cancelled,
            },
            REASON_DEADLINE => Outcome::Truncated {
                reason: TruncationReason::DeadlineExceeded,
            },
            _ => Outcome::Complete,
        }
    }

    /// Latches the stop signal without a budget reason — used by the fault
    /// containment in `parallel` to drain the remaining workers quickly after
    /// a panic was caught. The reason latch is left to whatever (if anything)
    /// tripped first; callers that stop a run this way report the fault
    /// through a typed error, not through the outcome.
    pub(crate) fn halt_for_fault(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Reporter adapter enforcing [`Budget::max_cliques`] at the deterministic
/// output point: forwards cliques until the cap, then latches the stop signal
/// and drops the rest. Because it sits *after* the ordered sequencer, the
/// forwarded cliques are exactly the first `N` of the deterministic stream at
/// any thread count.
pub(crate) struct BudgetReporter<'a, R: CliqueReporter + Send + ?Sized> {
    inner: &'a mut R,
    state: &'a BudgetState,
}

impl<'a, R: CliqueReporter + Send + ?Sized> BudgetReporter<'a, R> {
    /// Wraps `inner` under the session's budget state.
    pub fn new(inner: &'a mut R, state: &'a BudgetState) -> Self {
        BudgetReporter { inner, state }
    }
}

impl<R: CliqueReporter + Send + ?Sized> CliqueReporter for BudgetReporter<'_, R> {
    fn report(&mut self, clique: &[VertexId]) {
        if self.state.try_emit() {
            self.inner.report(clique);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CountReporter;

    #[test]
    fn unlimited_budget_never_stops() {
        let state = BudgetState::new(&Budget::unlimited());
        for _ in 0..1000 {
            assert!(!state.note_step());
            assert!(state.try_emit());
        }
        assert_eq!(state.outcome(), Outcome::Complete);
        assert!(!Budget::unlimited().is_limited());
    }

    #[test]
    fn step_budget_trips_exactly_at_the_bound() {
        let state = BudgetState::new(&Budget::steps(3));
        assert!(!state.note_step());
        assert!(!state.note_step());
        assert!(!state.note_step());
        assert!(state.note_step(), "fourth step exceeds the bound");
        assert!(state.should_stop());
        assert_eq!(
            state.outcome(),
            Outcome::Truncated {
                reason: TruncationReason::StepLimit
            }
        );
    }

    #[test]
    fn clique_budget_forwards_exactly_the_cap() {
        let state = BudgetState::new(&Budget::cliques(2));
        let mut counter = CountReporter::new();
        {
            let mut reporter = BudgetReporter::new(&mut counter, &state);
            for _ in 0..5 {
                reporter.report(&[1, 2]);
            }
        }
        assert_eq!(counter.count, 2);
        assert!(state.should_stop());
        assert_eq!(
            state.outcome(),
            Outcome::Truncated {
                reason: TruncationReason::CliqueLimit
            }
        );
    }

    #[test]
    fn exact_cap_without_overflow_stays_complete() {
        // Emitting exactly max_cliques cliques never trips the cap: a graph
        // with exactly N cliques under --limit N reports Complete.
        let state = BudgetState::new(&Budget::cliques(2));
        assert!(state.try_emit());
        assert!(state.try_emit());
        assert_eq!(state.outcome(), Outcome::Complete);
    }

    #[test]
    fn cancel_token_is_shared_and_latched() {
        let token = CancelToken::new();
        let state = BudgetState::new(&Budget::unlimited().with_cancel(token.clone()));
        assert!(!state.should_stop());
        token.cancel();
        assert!(state.should_stop());
        assert!(state.note_step());
        assert_eq!(
            state.outcome(),
            Outcome::Truncated {
                reason: TruncationReason::Cancelled
            }
        );
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancellation_is_observed_even_without_a_step_check() {
        // A token tripped after the last branch step must still surface in
        // the outcome.
        let token = CancelToken::new();
        let state = BudgetState::new(&Budget::unlimited().with_cancel(token.clone()));
        assert_eq!(state.outcome(), Outcome::Complete);
        token.cancel();
        assert!(state.outcome().is_truncated());
    }

    #[test]
    fn first_reason_wins() {
        let state = BudgetState::new(&Budget {
            max_cliques: Some(0),
            max_steps: Some(0),
            cancel: None,
            deadline: None,
        });
        assert!(!state.try_emit(), "cap 0 drops everything");
        assert!(state.note_step());
        assert_eq!(
            state.outcome(),
            Outcome::Truncated {
                reason: TruncationReason::CliqueLimit
            }
        );
    }

    #[test]
    fn expired_deadline_trips_on_the_step_cadence() {
        let state = BudgetState::new(&Budget::within(Duration::ZERO));
        // The first step polls the clock (the check interval is anchored at
        // step 1), so an already-expired deadline stops the run immediately.
        assert!(state.note_step());
        assert!(state.should_stop());
        assert_eq!(
            state.outcome(),
            Outcome::Truncated {
                reason: TruncationReason::DeadlineExceeded
            }
        );
    }

    #[test]
    fn expired_deadline_surfaces_without_any_step() {
        // A deadline that passes after the last branch step (or before the
        // first) must still show in the outcome.
        let state = BudgetState::new(&Budget::within(Duration::ZERO));
        assert_eq!(
            state.outcome(),
            Outcome::Truncated {
                reason: TruncationReason::DeadlineExceeded
            }
        );
    }

    #[test]
    fn distant_deadline_never_trips() {
        let state = BudgetState::new(&Budget::within(Duration::from_secs(3600)));
        for _ in 0..(3 * DEADLINE_CHECK_INTERVAL) {
            assert!(!state.note_step());
        }
        assert_eq!(state.outcome(), Outcome::Complete);
    }

    #[test]
    fn halt_for_fault_stops_without_a_reason() {
        let state = BudgetState::new(&Budget::unlimited());
        state.halt_for_fault();
        assert!(state.should_stop());
        assert_eq!(state.outcome(), Outcome::Complete);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Outcome::Complete.to_string(), "complete");
        assert_eq!(
            Outcome::Truncated {
                reason: TruncationReason::StepLimit
            }
            .to_string(),
            "truncated (step limit)"
        );
        assert_eq!(
            Outcome::Truncated {
                reason: TruncationReason::DeadlineExceeded
            }
            .to_string(),
            "truncated (deadline exceeded)"
        );
        assert!(!Outcome::Complete.is_truncated());
    }

    #[test]
    fn budget_constructors() {
        assert_eq!(Budget::cliques(5).max_cliques, Some(5));
        assert_eq!(Budget::steps(7).max_steps, Some(7));
        assert_eq!(
            Budget::within(Duration::from_millis(9)).deadline,
            Some(Duration::from_millis(9))
        );
        assert!(Budget::cliques(1).is_limited());
        assert!(Budget::within(Duration::from_secs(1)).is_limited());
        assert!(Budget::unlimited()
            .with_cancel(CancelToken::new())
            .is_limited());
        assert!(Budget::unlimited()
            .with_deadline(Duration::from_secs(1))
            .deadline
            .is_some());
    }
}
