//! Enumeration statistics: the `#Calls` and early-termination ratio columns of
//! the paper's Tables IV and V, plus bookkeeping for the other experiments.

use std::time::Duration;

/// Counters collected during an enumeration run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnumerationStats {
    /// Number of maximal cliques reported.
    pub maximal_cliques: u64,
    /// Size of the largest maximal clique reported.
    pub max_clique_size: usize,
    /// Number of recursive branch evaluations (the paper's `#Calls`).
    pub recursive_calls: u64,
    /// Number of branches created by the initial (root) branching step.
    pub initial_branches: u64,
    /// Branches whose candidate graph was a t-plex (the paper's `b`).
    pub et_eligible: u64,
    /// Branches that were actually early-terminated, i.e. candidate graph a
    /// t-plex *and* exclusion graph empty (the paper's `b0`).
    pub et_terminated: u64,
    /// Maximal cliques emitted directly by early termination.
    pub et_cliques: u64,
    /// Maximal cliques emitted directly by the graph-reduction preprocessing.
    pub gr_cliques: u64,
    /// Vertices removed by the graph-reduction preprocessing.
    pub gr_removed_vertices: u64,
    /// Sub-branch tasks donated to the shared pool by the splitting scheduler
    /// (0 unless [`RootScheduler::Splitting`](crate::RootScheduler) ran).
    pub splits: u64,
    /// Donated tasks stolen from the pool and resumed by a worker (equals
    /// `splits` after a completed run — every donated task is eventually
    /// executed).
    pub steals: u64,
    /// Recursion frames abandoned because the session's [`Budget`]
    /// (clique/step limit or cancellation) tripped — 0 on a complete run,
    /// and at least 1 on any truncated one: when the budget trips *between*
    /// frames (between root ranks, or at the output gate after the last
    /// frame) the budgeted entry points charge the run itself, so
    /// `mce query --stats` and the serve metrics report truncation
    /// consistently for every spec, including `Count` and `TopKBySize`.
    ///
    /// [`Budget`]: crate::Budget
    pub terminated_by_budget: u64,
    /// Root branches an anchored query never had to open: the vertices
    /// outside the anchor and its common neighbourhood (each would be a root
    /// of a full vertex-oriented enumeration). 0 for non-anchored runs.
    pub anchored_roots_skipped: u64,
    /// Branch-and-bound nodes pruned by the greedy-coloring upper bound:
    /// `|R| + colors(C) ≤ lb` proved the subtree cannot beat the incumbent
    /// (see [`maxclique`](crate::maxclique)). 0 for plain enumeration runs.
    pub branches_pruned_by_color: u64,
    /// Branch-and-bound root branches skipped by the core-number bound:
    /// every clique through vertex `v` has at most `core(v) + 1` vertices,
    /// so roots with `core(v) + 1 ≤ lb` never open. 0 for plain enumeration.
    pub branches_pruned_by_core: u64,
    /// Times the branch-and-bound incumbent (lower bound) improved, counting
    /// the initial greedy clique when it is non-empty. 0 for plain
    /// enumeration runs.
    pub lb_updates: u64,
    /// Wall-clock time of the whole run (ordering + reduction + enumeration).
    pub elapsed: Duration,
    /// Wall-clock time spent computing the vertex/edge ordering of the root.
    pub ordering_time: Duration,
    /// Summed per-worker wall time spent executing enumeration work (as
    /// opposed to waiting for work). `busy_time / (elapsed × threads)` is the
    /// utilisation of a parallel run; sequential runs report
    /// `busy_time == elapsed`. Measured as wall time per work item, so on a
    /// machine with fewer cores than threads it includes descheduled time.
    pub busy_time: Duration,
}

impl EnumerationStats {
    /// Ratio `b0 / b` of Table V: how often an eligible (t-plex) branch could
    /// actually be early-terminated because its exclusion graph was empty.
    /// Returns 0.0 when no branch was eligible.
    pub fn et_ratio(&self) -> f64 {
        if self.et_eligible == 0 {
            0.0
        } else {
            self.et_terminated as f64 / self.et_eligible as f64
        }
    }

    /// Merges the counters of another run into this one (used by the parallel
    /// driver to combine per-worker statistics). Durations are summed except
    /// `elapsed`, which takes the maximum (workers run concurrently).
    pub fn merge(&mut self, other: &EnumerationStats) {
        self.maximal_cliques += other.maximal_cliques;
        self.max_clique_size = self.max_clique_size.max(other.max_clique_size);
        self.recursive_calls += other.recursive_calls;
        self.initial_branches += other.initial_branches;
        self.et_eligible += other.et_eligible;
        self.et_terminated += other.et_terminated;
        self.et_cliques += other.et_cliques;
        self.gr_cliques += other.gr_cliques;
        self.gr_removed_vertices += other.gr_removed_vertices;
        self.splits += other.splits;
        self.steals += other.steals;
        self.terminated_by_budget += other.terminated_by_budget;
        self.anchored_roots_skipped += other.anchored_roots_skipped;
        self.branches_pruned_by_color += other.branches_pruned_by_color;
        self.branches_pruned_by_core += other.branches_pruned_by_core;
        self.lb_updates += other.lb_updates;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.ordering_time += other.ordering_time;
        self.busy_time += other.busy_time;
    }
}

impl std::fmt::Display for EnumerationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} maximal cliques (max size {}) in {:.3}s — {} calls, {} root branches, \
             ET {}/{} (ratio {:.1}%), GR reported {} over {} removed vertices, \
             {} splits / {} steals, {} budget-terminated, {} anchored-skipped, \
             B&B {} color-pruned / {} core-pruned / {} lb updates, busy {:.3}s",
            self.maximal_cliques,
            self.max_clique_size,
            self.elapsed.as_secs_f64(),
            self.recursive_calls,
            self.initial_branches,
            self.et_terminated,
            self.et_eligible,
            100.0 * self.et_ratio(),
            self.gr_cliques,
            self.gr_removed_vertices,
            self.splits,
            self.steals,
            self.terminated_by_budget,
            self.anchored_roots_skipped,
            self.branches_pruned_by_color,
            self.branches_pruned_by_core,
            self.lb_updates,
            self.busy_time.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_eligible() {
        let s = EnumerationStats::default();
        assert_eq!(s.et_ratio(), 0.0);
    }

    #[test]
    fn ratio_computes_fraction() {
        let s = EnumerationStats {
            et_eligible: 10,
            et_terminated: 7,
            ..Default::default()
        };
        assert!((s.et_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_counters() {
        let mut a = EnumerationStats {
            maximal_cliques: 5,
            max_clique_size: 4,
            recursive_calls: 100,
            elapsed: Duration::from_millis(30),
            ..Default::default()
        };
        let b = EnumerationStats {
            maximal_cliques: 7,
            max_clique_size: 6,
            recursive_calls: 50,
            elapsed: Duration::from_millis(20),
            gr_cliques: 2,
            branches_pruned_by_color: 11,
            branches_pruned_by_core: 3,
            lb_updates: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.maximal_cliques, 12);
        assert_eq!(a.max_clique_size, 6);
        assert_eq!(a.recursive_calls, 150);
        assert_eq!(a.gr_cliques, 2);
        assert_eq!(a.elapsed, Duration::from_millis(30));
        assert_eq!(a.branches_pruned_by_color, 11);
        assert_eq!(a.branches_pruned_by_core, 3);
        assert_eq!(a.lb_updates, 2);
    }

    #[test]
    fn display_contains_key_figures() {
        let s = EnumerationStats {
            maximal_cliques: 42,
            recursive_calls: 7,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("42"));
        assert!(text.contains("7 calls"));
    }
}
