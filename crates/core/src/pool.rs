//! The shared task pool behind [`RootScheduler::Splitting`]: self-contained
//! sub-branch tasks, their deterministic sequence keys, and the std-only
//! injector that moves them between workers.
//!
//! The pulling schedulers distribute whole *root* branches, so a run can
//! never finish faster than its largest root subtree. The splitting scheduler
//! removes that bound with **mid-branch work donation**: a worker that has
//! been grinding one root for a while (and observes starving peers) packages
//! the unexplored sibling candidates of its shallowest recursion frame into a
//! [`BranchTask`] — the `R` prefix, the `(C, X)` bitsets, the remaining
//! branch list and a snapshot of the root's [`LocalGraph`] — and pushes it to
//! the shared [`TaskPool`]. Idle workers steal those tasks and resume them
//! through the same allocation-free recursion (and may split them again).
//!
//! Everything here is `std`-only by design: the pool is a `Mutex<VecDeque>`
//! plus a `Condvar`, with one relaxed atomic (`starving`) that lets the
//! donation check in the enumeration hot loop stay a single load. The build
//! environment vendors no lock-free queue crates, and donations are rare
//! enough (one per [`PoolConfig::step_threshold`] branch steps at most) that
//! a mutex injector is nowhere near the bottleneck.
//!
//! # Why donated output can still be ordered deterministically
//!
//! [`par_enumerate_ordered`](crate::par_enumerate_ordered) must emit a byte
//! stream that is independent of the thread count. Root ranks provide the
//! coarse order; within one root, every task carries a [`SeqKey`] that
//! linearises the donation tree:
//!
//! * the root's own task has the empty key;
//! * a donor's `i`-th donation (counting from 0) gets the donor's key with
//!   `u32::MAX - i` appended.
//!
//! Keys compare lexicographically with the *shorter-prefix-first* rule, which
//! encodes exactly the sequential emission order: a donor's retained work is
//! always a prefix of what it would have emitted sequentially (its key, a
//! strict prefix, sorts first), donated siblings come after the subtree the
//! donor keeps, and a *later* donation is always carved from *deeper* in the
//! tree than an earlier one — i.e. it precedes the earlier donation in
//! sequential order, which the decreasing counter encodes. Sorting a
//! completed rank's task buffers by key therefore reproduces the sequential
//! stream exactly; see the sequencer in [`parallel`](crate::parallel).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use mce_graph::{BitSet, VertexId};

use crate::local::LocalGraph;

/// Default number of branch steps a worker invests in its current chunk
/// before it considers donating (see [`PoolConfig::step_threshold`]).
pub(crate) const DEFAULT_STEP_THRESHOLD: u32 = 512;

/// Root ranks claimed per pool chunk. Smaller than the dynamic scheduler's
/// chunk because the splitting pool takes a lock per claim and donation
/// already smooths intra-chunk imbalance.
pub(crate) const SPLIT_CHUNK: usize = 8;

/// Position of a task's output within its root rank's sequential stream.
///
/// Compares lexicographically (shorter prefix first), which matches the
/// sequential emission order of the donation tree — see the module docs.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SeqKey(Vec<u32>);

impl SeqKey {
    /// The key of a root's own task: the empty sequence.
    pub fn root() -> Self {
        SeqKey(Vec::new())
    }

    /// The key of a donation made by the task holding `self`, given the
    /// donor's decreasing donation counter.
    pub fn child(&self, counter: u32) -> Self {
        let mut path = Vec::with_capacity(self.0.len() + 1);
        path.extend_from_slice(&self.0);
        path.push(counter);
        SeqKey(path)
    }

    /// Resets this key to the root key in place (buffer reuse across ranks).
    pub fn reset(&mut self) {
        self.0.clear();
    }

    /// Copies `other` into this key in place.
    pub fn clone_from_key(&mut self, other: &SeqKey) {
        self.0.clear();
        self.0.extend_from_slice(&other.0);
    }
}

/// A self-contained, stealable continuation of one recursion frame: "branch
/// on each of `branch` under `(partial, c, x)` inside `lg`".
///
/// Everything a worker needs to resume the donated siblings is carried by
/// value — no references into the donor's scratch arena — so the task can
/// cross threads and outlive the donor's frames.
#[derive(Clone, Debug)]
pub(crate) struct BranchTask {
    /// Root rank the donated work belongs to (coarse sequencing key).
    pub rank: usize,
    /// Position of this task's output within the rank (fine sequencing key).
    pub key: SeqKey,
    /// The partial clique `R` at the donated frame (original vertex ids).
    pub partial: Vec<VertexId>,
    /// Candidate set of the donated frame, current vertex already excluded.
    pub c: BitSet,
    /// Exclusion set of the donated frame, current vertex already included.
    pub x: BitSet,
    /// The unexplored sibling candidates, in branching order (local ids).
    pub branch: Vec<usize>,
    /// Snapshot of the root branch's dense local graph.
    pub lg: LocalGraph,
}

/// Where a donating solver pushes split-off work. Implemented by the plain
/// pool (unordered drivers) and by the ordered driver's wrapper that also
/// registers the donation with the output sequencer.
pub(crate) trait DonationSink: Sync {
    /// Cheap check consulted once per branch step: is anyone starving?
    fn hungry(&self) -> bool;
    /// Branch steps a worker invests in its chunk before donating.
    fn step_threshold(&self) -> u32;
    /// Hands a packaged task over to the pool.
    fn donate(&self, task: BranchTask);
}

/// Tunables of a [`TaskPool`], separated out so tests can force aggressive
/// splitting on tiny graphs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PoolConfig {
    /// Branch steps between donation attempts.
    pub step_threshold: u32,
    /// Ignore the starvation signal and donate at every opportunity
    /// (test-only: maximises task fragmentation).
    pub always_hungry: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            step_threshold: DEFAULT_STEP_THRESHOLD,
            always_hungry: false,
        }
    }
}

/// One unit of work handed to a splitting worker.
pub(crate) enum PoolWork {
    /// Process the root-rank chunk with this index (see
    /// [`RootShards::chunk`](crate::solver::RootShards)).
    Chunk(usize),
    /// Resume a donated sub-branch.
    Task(Box<BranchTask>),
}

struct PoolState {
    /// Donated tasks, stolen FIFO (oldest donations carry the shallowest —
    /// largest — subtrees and belong to the earliest ranks).
    tasks: VecDeque<BranchTask>,
    /// Next unclaimed root chunk index.
    next_chunk: usize,
    /// Workers currently executing claimed work (a donor counts as active,
    /// so the pool can only drain once every potential producer is done).
    active: usize,
}

/// The shared injector of the splitting scheduler.
///
/// Claiming prefers donated tasks over fresh root chunks: donated work
/// belongs to already-started (earliest) ranks, so finishing it first keeps
/// the ordered sequencer's head moving and bounds buffering.
pub(crate) struct TaskPool {
    state: Mutex<PoolState>,
    /// Signalled when work arrives or the pool drains.
    ready: Condvar,
    /// Number of workers currently blocked in [`TaskPool::claim`]. Read with
    /// a relaxed load by the donation check in the enumeration hot loop.
    starving: AtomicUsize,
    chunk_count: usize,
    config: PoolConfig,
}

impl TaskPool {
    /// A pool over `chunk_count` root chunks.
    pub fn new(chunk_count: usize, config: PoolConfig) -> Self {
        TaskPool {
            state: Mutex::new(PoolState {
                tasks: VecDeque::new(),
                next_chunk: 0,
                active: 0,
            }),
            ready: Condvar::new(),
            starving: AtomicUsize::new(0),
            chunk_count,
            config,
        }
    }

    /// Blocks until work is available or the run is complete. Returns `None`
    /// exactly once per worker, when no work remains *and* no active worker
    /// could still donate more.
    pub fn claim(&self) -> Option<PoolWork> {
        // Poison recovery throughout: worker panics are caught and contained
        // by the drivers in [`parallel`](crate::parallel), and the drain
        // protocol they run after a fault needs the pool to stay usable.
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(task) = state.tasks.pop_front() {
                state.active += 1;
                return Some(PoolWork::Task(Box::new(task)));
            }
            if state.next_chunk < self.chunk_count {
                let chunk = state.next_chunk;
                state.next_chunk += 1;
                state.active += 1;
                return Some(PoolWork::Chunk(chunk));
            }
            if state.active == 0 {
                // Termination: every chunk claimed, every task executed, no
                // producer left. Wake the other sleepers so they exit too.
                self.ready.notify_all();
                return None;
            }
            self.starving.fetch_add(1, Ordering::Relaxed);
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            self.starving.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Marks one previously claimed unit of work as finished.
    pub fn complete(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.active -= 1;
        let drained =
            state.active == 0 && state.tasks.is_empty() && state.next_chunk >= self.chunk_count;
        drop(state);
        if drained {
            self.ready.notify_all();
        }
    }

    /// Pushes a donated task and wakes one starving worker.
    pub fn push(&self, task: BranchTask) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.tasks.push_back(task);
        drop(state);
        self.ready.notify_one();
    }
}

impl DonationSink for TaskPool {
    fn hungry(&self) -> bool {
        self.config.always_hungry || self.starving.load(Ordering::Relaxed) > 0
    }

    fn step_threshold(&self) -> u32 {
        self.config.step_threshold
    }

    fn donate(&self, task: BranchTask) {
        self.push(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(rank: usize) -> BranchTask {
        BranchTask {
            rank,
            key: SeqKey::root(),
            partial: Vec::new(),
            c: BitSet::with_capacity(0),
            x: BitSet::with_capacity(0),
            branch: Vec::new(),
            lg: LocalGraph::new(),
        }
    }

    #[test]
    fn seq_keys_order_like_the_sequential_stream() {
        let root = SeqKey::root();
        let first_donation = root.child(u32::MAX);
        let second_donation = root.child(u32::MAX - 1);
        let nested = first_donation.child(u32::MAX);
        // Donor's retained output before everything it donated.
        assert!(root < first_donation);
        assert!(root < second_donation);
        // Later donations are deeper in the tree, i.e. sequentially earlier.
        assert!(second_donation < first_donation);
        // A thief's own retained output precedes its re-donations.
        assert!(first_donation < nested);
        // And a re-donation of the first donation still follows the donor's
        // second (deeper) donation.
        assert!(second_donation < nested);
    }

    #[test]
    fn seq_key_reuse_helpers() {
        let mut k = SeqKey::root().child(7);
        k.reset();
        assert_eq!(k, SeqKey::root());
        let other = SeqKey::root().child(3).child(9);
        k.clone_from_key(&other);
        assert_eq!(k, other);
    }

    #[test]
    fn pool_hands_out_chunks_then_terminates() {
        let pool = TaskPool::new(2, PoolConfig::default());
        let Some(PoolWork::Chunk(a)) = pool.claim() else {
            panic!("expected a chunk")
        };
        let Some(PoolWork::Chunk(b)) = pool.claim() else {
            panic!("expected a chunk")
        };
        assert_eq!((a, b), (0, 1));
        pool.complete();
        pool.complete();
        assert!(pool.claim().is_none());
    }

    #[test]
    fn pool_prefers_donated_tasks_fifo() {
        let pool = TaskPool::new(1, PoolConfig::default());
        pool.push(task(3));
        pool.push(task(5));
        match pool.claim() {
            Some(PoolWork::Task(t)) => assert_eq!(t.rank, 3),
            _ => panic!("expected the oldest donated task"),
        }
        match pool.claim() {
            Some(PoolWork::Task(t)) => assert_eq!(t.rank, 5),
            _ => panic!("expected the second donated task"),
        }
    }

    #[test]
    fn starving_workers_wake_on_donation() {
        let pool = TaskPool::new(1, PoolConfig::default());
        // A "donor" holds the only chunk, keeping the pool active.
        assert!(matches!(pool.claim(), Some(PoolWork::Chunk(0))));
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| pool.claim());
            // Give the consumer a moment to block on the condvar, then donate.
            std::thread::sleep(std::time::Duration::from_millis(10));
            pool.push(task(1));
            let got = consumer.join().expect("consumer panicked");
            assert!(matches!(got, Some(PoolWork::Task(t)) if t.rank == 1));
        });
        pool.complete(); // the stolen task
        pool.complete(); // the donor's chunk
        assert!(pool.claim().is_none());
    }

    #[test]
    fn empty_pool_terminates_immediately() {
        let pool = TaskPool::new(0, PoolConfig::default());
        assert!(pool.claim().is_none());
    }

    #[test]
    fn hungry_reflects_starvation_and_test_override() {
        let pool = TaskPool::new(0, PoolConfig::default());
        assert!(!pool.hungry());
        let aggressive = TaskPool::new(
            0,
            PoolConfig {
                always_hungry: true,
                step_threshold: 0,
            },
        );
        assert!(aggressive.hungry());
        assert_eq!(aggressive.step_threshold(), 0);
    }
}
