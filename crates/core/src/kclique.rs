//! k-clique listing with edge-oriented branching (EBBkC-style).
//!
//! The paper's edge-oriented branching strategy originates from the k-clique
//! listing problem (Wang, Yu & Long, SIGMOD'24) and Section III-B contrasts
//! the two problems at length. This module provides the k-clique side as a
//! companion feature: listing/counting all cliques of exactly `k` vertices
//! using the same truss-ordered edge branching as the MCE root phase, with the
//! candidate subgraph of each edge branch restricted to edges ordered after
//! the branching edge (so every k-clique is produced exactly once, at its
//! earliest edge).

use mce_graph::ordering::{edge_ordering, EdgeOrderingKind};
use mce_graph::{BitSet, Graph, VertexId};

use crate::budget::{Budget, BudgetState, Outcome};
use crate::local::LocalGraph;

/// Lists every k-clique of `g` (each clique sorted ascending, cliques in
/// canonical order). Intended for moderate outputs; use [`count_k_cliques`]
/// when only the number is needed.
pub fn list_k_cliques(g: &Graph, k: usize) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    for_each_k_clique(g, k, |clique| {
        let mut c = clique.to_vec();
        c.sort_unstable();
        out.push(c);
    });
    out.sort();
    out
}

/// Counts the k-cliques of `g` without materialising them.
pub fn count_k_cliques(g: &Graph, k: usize) -> u64 {
    let mut count = 0u64;
    for_each_k_clique(g, k, |_| count += 1);
    count
}

/// Counts the cliques of every size `1..=max_k`; index `i` of the returned
/// vector holds the number of `(i+1)`-cliques.
pub fn k_clique_census(g: &Graph, max_k: usize) -> Vec<u64> {
    (1..=max_k).map(|k| count_k_cliques(g, k)).collect()
}

/// Streams every k-clique to `visit` exactly once.
pub fn for_each_k_clique<F: FnMut(&[VertexId])>(g: &Graph, k: usize, mut visit: F) {
    let state = BudgetState::new(&Budget::unlimited());
    let _ = for_each_k_clique_with_state(g, k, &state, &mut |clique| visit(clique));
}

/// [`for_each_k_clique`] under a [`Budget`]: stops streaming when the
/// emission cap, step bound or cancellation trips, and returns the run's
/// [`Outcome`]. The stream order is deterministic, so a truncated run emits
/// an exact prefix of the unbudgeted stream.
pub fn for_each_k_clique_budgeted<F: FnMut(&[VertexId])>(
    g: &Graph,
    k: usize,
    budget: &Budget,
    mut visit: F,
) -> Outcome {
    let state = BudgetState::new(budget);
    let _ = for_each_k_clique_with_state(g, k, &state, &mut |clique| visit(clique));
    state.outcome()
}

/// The shared driver: streams k-cliques under an existing session
/// [`BudgetState`] (the query layer passes its own so the session's cancel
/// token applies). Returns the number of branching frames abandoned because
/// the budget tripped — 0 on a complete run — so the query layer can fill
/// `EnumerationStats::terminated_by_budget` honestly.
pub(crate) fn for_each_k_clique_with_state(
    g: &Graph,
    k: usize,
    state: &BudgetState,
    visit: &mut dyn FnMut(&[VertexId]),
) -> u64 {
    let mut gated = |clique: &[VertexId]| {
        if state.try_emit() {
            visit(clique);
        }
    };
    match k {
        0 => return 0,
        1 => {
            for v in g.vertices() {
                if state.should_stop() {
                    return 1;
                }
                gated(&[v]);
            }
            return 0;
        }
        2 => {
            for (u, v) in g.edges() {
                if state.should_stop() {
                    return 1;
                }
                gated(&[u, v]);
            }
            return 0;
        }
        _ => {}
    }

    let mut aborted = 0u64;
    let eo = edge_ordering(g, EdgeOrderingKind::Truss);
    let mut common = Vec::new();
    for (rank, &edge) in eo.order.iter().enumerate() {
        if state.note_step() {
            return aborted + 1;
        }
        let (u, v) = eo.index.endpoints(edge);
        g.common_neighbors_into(u, v, &mut common);
        // Candidates: common neighbours whose edges to both endpoints come
        // after the branching edge in the truss ordering.
        let candidates: Vec<VertexId> = common
            .iter()
            .copied()
            .filter(|&w| {
                let uw = eo.index.edge_id(u, w).expect("triangle edge (u,w)");
                let vw = eo.index.edge_id(v, w).expect("triangle edge (v,w)");
                eo.position[uw as usize] > rank && eo.position[vw as usize] > rank
            })
            .collect();
        if candidates.len() + 2 < k {
            continue;
        }
        // Inside the branch only edges ordered after the branching edge count,
        // so a k-clique is visited exactly once: at its earliest edge.
        let lg = LocalGraph::from_vertices_filtered(g, &candidates, |a, b| {
            match eo.index.edge_id(a, b) {
                Some(e) => eo.position[e as usize] > rank,
                None => true,
            }
        });
        let mut c = BitSet::with_capacity(lg.len());
        for i in 0..lg.len() {
            c.insert(i);
        }
        let mut partial = vec![u, v];
        aborted += extend_clique(&lg, &c, 0, k - 2, &mut partial, state, &mut gated);
    }
    aborted
}

/// Extends the partial clique by `remaining` vertices chosen from `c`, only
/// considering local ids `>= from` so each combination is produced once.
/// Returns the number of frames abandoned to a tripped budget.
fn extend_clique<F: FnMut(&[VertexId])>(
    lg: &LocalGraph,
    c: &BitSet,
    from: usize,
    remaining: usize,
    partial: &mut Vec<VertexId>,
    state: &BudgetState,
    visit: &mut F,
) -> u64 {
    if remaining == 0 {
        visit(partial);
        return 0;
    }
    if c.len() < remaining {
        return 0;
    }
    let mut aborted = 0u64;
    for v in c.iter() {
        if v < from {
            continue;
        }
        if state.note_step() {
            return aborted + 1;
        }
        let mut next = c.clone();
        next.intersect_with_words(lg.cand(v));
        partial.push(lg.orig[v]);
        aborted += extend_clique(lg, &next, v + 1, remaining - 1, partial, state, visit);
        partial.pop();
    }
    aborted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: all k-subsets that induce cliques (tiny graphs only).
    fn brute_force(g: &Graph, k: usize) -> Vec<Vec<VertexId>> {
        let n = g.n();
        let mut out = Vec::new();
        if k == 0 || k > n {
            return out;
        }
        let mut indices: Vec<usize> = (0..k).collect();
        loop {
            let set: Vec<VertexId> = indices.iter().map(|&i| i as VertexId).collect();
            if g.is_clique(&set) {
                out.push(set);
            }
            // next combination
            let mut i = k;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if indices[i] != i + n - k {
                    indices[i] += 1;
                    for j in i + 1..k {
                        indices[j] = indices[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    fn sample() -> Graph {
        // K5 plus a tail and a disjoint triangle.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        edges.extend([(4, 5), (5, 6), (7, 8), (8, 9), (7, 9)]);
        Graph::from_edges(10, edges).unwrap()
    }

    #[test]
    fn trivial_sizes() {
        let g = sample();
        assert_eq!(count_k_cliques(&g, 0), 0);
        assert_eq!(count_k_cliques(&g, 1), 10);
        assert_eq!(count_k_cliques(&g, 2), g.m() as u64);
    }

    #[test]
    fn triangle_count_matches_substrate() {
        let g = sample();
        assert_eq!(count_k_cliques(&g, 3), mce_graph::triangle_count(&g));
    }

    #[test]
    fn listing_matches_brute_force_for_all_k() {
        let g = sample();
        for k in 1..=6usize {
            let got = list_k_cliques(&g, k);
            let want = brute_force(&g, k);
            assert_eq!(got, want, "k = {k}");
        }
    }

    #[test]
    fn complete_graph_counts_are_binomials() {
        let g = Graph::complete(7);
        // C(7, k)
        let binom = [7u64, 21, 35, 35, 21, 7, 1];
        for (i, &expected) in binom.iter().enumerate() {
            assert_eq!(count_k_cliques(&g, i + 1), expected, "k = {}", i + 1);
        }
        assert_eq!(count_k_cliques(&g, 8), 0);
    }

    #[test]
    fn census_accumulates_counts() {
        let g = sample();
        let census = k_clique_census(&g, 5);
        assert_eq!(census.len(), 5);
        assert_eq!(census[0], 10);
        assert_eq!(census[1], g.m() as u64);
        assert_eq!(census[4], 1, "exactly one 5-clique");
    }

    #[test]
    fn moon_moser_k_cliques() {
        // K_{3,3,3}: number of 3-cliques = 27 (one vertex per part).
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(9, edges).unwrap();
        assert_eq!(count_k_cliques(&g, 3), 27);
        assert_eq!(count_k_cliques(&g, 4), 0);
    }

    #[test]
    fn empty_graph_has_no_cliques_of_positive_size() {
        let g = Graph::empty(4);
        assert_eq!(count_k_cliques(&g, 1), 4);
        assert_eq!(count_k_cliques(&g, 2), 0);
        assert_eq!(count_k_cliques(&g, 3), 0);
    }
}
