//! Working representation of a branch's vertex universe.
//!
//! After the initial (root) branching step the recursion only ever touches the
//! vertices of `C ∪ X` of that root branch — a set bounded by the degeneracy δ
//! (vertex-oriented roots) or the truss parameter τ (edge-oriented roots),
//! plus the exclusion side. The crate-private `LocalGraph` relabels those vertices to a dense
//! `0..k` id space and stores their adjacency as bitset rows, so that branch
//! refinement (`C ∩ N(v)`), pivot scoring and the early-termination check are
//! all word-parallel.
//!
//! Two adjacency relations are kept:
//!
//! * `g_adj` — the true adjacency of the input graph restricted to the local
//!   vertices. Used for maximality checking (moving vertices to `X`) and for
//!   the early-termination plex test.
//! * `cand_adj` — the *candidate* adjacency: `g_adj` minus the edges excluded
//!   by earlier sibling branches of an edge-oriented branching step (Eq. 2 of
//!   the paper removes processed edges from the candidate graph). When no edge
//!   has been excluded this is exactly `g_adj` and is not materialised.

use mce_graph::{BitSet, Graph, VertexId};

/// Dense local view of a branch's vertex universe (`C ∪ X` of the root branch).
#[derive(Clone, Debug)]
pub(crate) struct LocalGraph {
    /// Local id → original vertex id.
    pub orig: Vec<VertexId>,
    /// True graph adjacency between local vertices.
    pub g_adj: Vec<BitSet>,
    /// Candidate adjacency (excluded edges removed); `None` means identical to
    /// [`LocalGraph::g_adj`].
    pub cand_adj: Option<Vec<BitSet>>,
}

impl LocalGraph {
    /// Number of local vertices.
    pub fn len(&self) -> usize {
        self.orig.len()
    }

    /// Candidate adjacency row of local vertex `v`.
    #[inline]
    pub fn cand(&self, v: usize) -> &BitSet {
        match &self.cand_adj {
            Some(adj) => &adj[v],
            None => &self.g_adj[v],
        }
    }

    /// True-graph adjacency row of local vertex `v`.
    #[inline]
    pub fn gadj(&self, v: usize) -> &BitSet {
        &self.g_adj[v]
    }

    /// Builds the local graph over `vertices` (in the given order) using the
    /// plain graph adjacency for both relations.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn from_vertices(g: &Graph, vertices: &[VertexId]) -> Self {
        Self::from_vertices_filtered(g, vertices, |_, _| true)
    }

    /// Builds the local graph over `vertices`, keeping in the *candidate*
    /// adjacency only those edges for which `keep(u, v)` returns `true`
    /// (`u`/`v` are original vertex ids). The true adjacency always contains
    /// every edge of the input graph.
    pub fn from_vertices_filtered<F>(g: &Graph, vertices: &[VertexId], keep: F) -> Self
    where
        F: Fn(VertexId, VertexId) -> bool,
    {
        let k = vertices.len();
        let orig = vertices.to_vec();
        let mut g_adj: Vec<BitSet> = (0..k).map(|_| BitSet::with_capacity(k)).collect();
        let mut cand_adj: Vec<BitSet> = (0..k).map(|_| BitSet::with_capacity(k)).collect();
        let mut filtered_any = false;
        for i in 0..k {
            for j in (i + 1)..k {
                if g.has_edge(orig[i], orig[j]) {
                    g_adj[i].insert(j);
                    g_adj[j].insert(i);
                    if keep(orig[i], orig[j]) {
                        cand_adj[i].insert(j);
                        cand_adj[j].insert(i);
                    } else {
                        filtered_any = true;
                    }
                }
            }
        }
        LocalGraph {
            orig,
            g_adj,
            cand_adj: if filtered_any { Some(cand_adj) } else { None },
        }
    }

    /// Returns a copy of this local graph whose candidate adjacency
    /// additionally drops every edge for which `keep(u, v)` is `false`
    /// (`u`/`v` original ids). Used when descending another edge-oriented
    /// branching level: the sub-branch must exclude the sibling edges already
    /// processed at the current level.
    pub fn restrict_candidate<F>(&self, keep: F) -> Self
    where
        F: Fn(VertexId, VertexId) -> bool,
    {
        let k = self.len();
        let mut cand_adj: Vec<BitSet> = (0..k).map(|_| BitSet::with_capacity(k)).collect();
        let mut filtered_any = self.cand_adj.is_some();
        for i in 0..k {
            for j in self.cand(i).iter() {
                if j <= i {
                    continue;
                }
                if keep(self.orig[i], self.orig[j]) {
                    cand_adj[i].insert(j);
                    cand_adj[j].insert(i);
                } else {
                    filtered_any = true;
                }
            }
        }
        LocalGraph {
            orig: self.orig.clone(),
            g_adj: self.g_adj.clone(),
            cand_adj: if filtered_any { Some(cand_adj) } else { None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1-2-3 cycle plus chord (0,2).
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap()
    }

    #[test]
    fn from_vertices_builds_relabelled_adjacency() {
        let g = diamond();
        let lg = LocalGraph::from_vertices(&g, &[2, 0, 3]);
        assert_eq!(lg.len(), 3);
        assert_eq!(lg.orig, vec![2, 0, 3]);
        // local 0=orig2, 1=orig0, 2=orig3: edges (2,0),(2,3),(0,3) all exist.
        assert!(lg.gadj(0).contains(1));
        assert!(lg.gadj(0).contains(2));
        assert!(lg.gadj(1).contains(2));
        assert!(lg.cand_adj.is_none());
        assert_eq!(lg.cand(0), lg.gadj(0));
    }

    #[test]
    fn filtered_construction_separates_candidate_from_graph_adjacency() {
        let g = diamond();
        // Drop the chord (0,2) from the candidate adjacency only.
        let lg = LocalGraph::from_vertices_filtered(&g, &[0, 1, 2, 3], |u, v| {
            !((u, v) == (0, 2) || (u, v) == (2, 0))
        });
        assert!(lg.cand_adj.is_some());
        assert!(lg.gadj(0).contains(2));
        assert!(!lg.cand(0).contains(2));
        assert!(lg.cand(0).contains(1));
    }

    #[test]
    fn no_filtering_keeps_shared_adjacency() {
        let g = diamond();
        let lg = LocalGraph::from_vertices_filtered(&g, &[0, 1, 2], |_, _| true);
        assert!(lg.cand_adj.is_none());
    }

    #[test]
    fn restrict_candidate_composes_filters() {
        let g = Graph::complete(4);
        let lg = LocalGraph::from_vertices_filtered(&g, &[0, 1, 2, 3], |u, v| {
            (u, v) != (0, 1) && (v, u) != (0, 1)
        });
        let lg2 = lg.restrict_candidate(|u, v| (u, v) != (2, 3) && (v, u) != (2, 3));
        // Both (0,1) and (2,3) are gone from the candidate adjacency…
        assert!(!lg2.cand(0).contains(1));
        assert!(!lg2.cand(2).contains(3));
        // …but the true adjacency still has them.
        assert!(lg2.gadj(0).contains(1));
        assert!(lg2.gadj(2).contains(3));
        // Untouched edges survive.
        assert!(lg2.cand(0).contains(2));
    }

    #[test]
    fn empty_local_graph() {
        let g = Graph::complete(3);
        let lg = LocalGraph::from_vertices(&g, &[]);
        assert_eq!(lg.len(), 0);
    }
}
