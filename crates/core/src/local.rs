//! Working representation of a branch's vertex universe.
//!
//! After the initial (root) branching step the recursion only ever touches the
//! vertices of `C ∪ X` of that root branch — a set bounded by the degeneracy δ
//! (vertex-oriented roots) or the truss parameter τ (edge-oriented roots),
//! plus the exclusion side. The crate-private `LocalGraph` relabels those
//! vertices to a dense `0..k` id space and stores their adjacency as the rows
//! of a contiguous [`AdjMatrix`] (one flat `Vec<u64>` with row stride), so
//! that branch refinement (`C ∩ N(v)`), pivot scoring and the
//! early-termination check are all word-parallel over cache-adjacent rows.
//!
//! Two adjacency relations are kept:
//!
//! * `g_adj` — the true adjacency of the input graph restricted to the local
//!   vertices. Used for maximality checking (moving vertices to `X`) and for
//!   the early-termination plex test.
//! * `cand_adj` — the *candidate* adjacency: `g_adj` minus the edges excluded
//!   by earlier sibling branches of an edge-oriented branching step (Eq. 2 of
//!   the paper removes processed edges from the candidate graph). When no
//!   edge has been excluded the candidate rows are bit-identical to the true
//!   rows and `LocalGraph::is_filtered` reports `false`.
//!
//! A `LocalGraph` is designed to be **rebuilt in place**
//! (`LocalGraph::rebuild_filtered`): the per-worker enumeration state keeps
//! one instance whose matrix buffers are reused across all root branches, so
//! steady-state root processing does not allocate.

use mce_graph::{AdjMatrix, GraphTopology, VertexId};

/// Dense local view of a branch's vertex universe (`C ∪ X` of the root branch).
#[derive(Clone, Debug, Default)]
pub(crate) struct LocalGraph {
    /// Local id → original vertex id.
    pub orig: Vec<VertexId>,
    /// True graph adjacency between local vertices.
    g_adj: AdjMatrix,
    /// Candidate adjacency. Kept bit-identical to `g_adj` when no edge has
    /// been filtered so `cand` can always return a valid row.
    cand_adj: AdjMatrix,
    /// Whether any candidate edge has actually been filtered out.
    filtered: bool,
}

impl LocalGraph {
    /// An empty local graph whose buffers can be reused via
    /// [`LocalGraph::rebuild_filtered`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of local vertices.
    pub fn len(&self) -> usize {
        self.orig.len()
    }

    /// Words per adjacency row (`len().div_ceil(64)`).
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn stride(&self) -> usize {
        self.g_adj.stride()
    }

    /// Candidate adjacency row of local vertex `v` as a word slice.
    #[inline]
    pub fn cand(&self, v: usize) -> &[u64] {
        self.cand_adj.row(v)
    }

    /// True-graph adjacency row of local vertex `v` as a word slice.
    #[inline]
    pub fn gadj(&self, v: usize) -> &[u64] {
        self.g_adj.row(v)
    }

    /// Whether local vertices `v` and `w` are adjacent in the candidate graph.
    #[inline]
    pub fn cand_contains(&self, v: usize, w: usize) -> bool {
        self.cand_adj.contains(v, w)
    }

    /// Whether local vertices `v` and `w` are adjacent in the true graph.
    #[inline]
    pub fn gadj_contains(&self, v: usize, w: usize) -> bool {
        self.g_adj.contains(v, w)
    }

    /// Whether any candidate edge differs from the true adjacency.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_filtered(&self) -> bool {
        self.filtered
    }

    /// Builds the local graph over `vertices` (in the given order) using the
    /// plain graph adjacency for both relations.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn from_vertices<G: GraphTopology>(g: &G, vertices: &[VertexId]) -> Self {
        Self::from_vertices_filtered(g, vertices, |_, _| true)
    }

    /// Builds a fresh local graph over `vertices`; see
    /// [`LocalGraph::rebuild_filtered`] for the buffer-reusing variant.
    pub fn from_vertices_filtered<G, F>(g: &G, vertices: &[VertexId], keep: F) -> Self
    where
        G: GraphTopology,
        F: Fn(VertexId, VertexId) -> bool,
    {
        let mut lg = Self::new();
        let mut position = vec![u32::MAX; g.n()];
        lg.rebuild_filtered(g, vertices, keep, &mut position);
        lg
    }

    /// Rebuilds this local graph in place over `vertices`, keeping in the
    /// *candidate* adjacency only those edges for which `keep(u, v)` returns
    /// `true` (`u`/`v` are original vertex ids). The true adjacency always
    /// contains every edge of the input graph.
    ///
    /// `position` is caller-provided scratch of length `g.n()`, holding
    /// `u32::MAX` outside this call; it maps original ids to local ids so the
    /// rebuild walks adjacency lists (`O(Σ deg)`) instead of testing all
    /// `O(k²)` pairs with binary searches.
    pub fn rebuild_filtered<G, F>(
        &mut self,
        g: &G,
        vertices: &[VertexId],
        keep: F,
        position: &mut [u32],
    ) -> &mut Self
    where
        G: GraphTopology,
        F: Fn(VertexId, VertexId) -> bool,
    {
        debug_assert_eq!(position.len(), g.n());
        debug_assert!(position.iter().all(|&p| p == u32::MAX));
        let k = vertices.len();
        self.orig.clear();
        self.orig.extend_from_slice(vertices);
        self.g_adj.reset(k);
        self.cand_adj.reset(k);
        self.filtered = false;

        for (i, &v) in vertices.iter().enumerate() {
            position[v as usize] = i as u32;
        }
        for (i, &v) in vertices.iter().enumerate() {
            for u in g.neighbors_iter(v) {
                let j = position[u as usize];
                if j == u32::MAX || (j as usize) <= i {
                    continue; // not local, or the (j, i) direction handles it
                }
                let j = j as usize;
                self.g_adj.insert_sym(i, j);
                if keep(v, u) {
                    self.cand_adj.insert_sym(i, j);
                } else {
                    self.filtered = true;
                }
            }
        }
        for &v in vertices {
            position[v as usize] = u32::MAX;
        }
        self
    }

    /// Returns a copy of this local graph whose candidate adjacency
    /// additionally drops every edge for which `keep(u, v)` is `false`
    /// (`u`/`v` original ids). Used when descending another edge-oriented
    /// branching level: the sub-branch must exclude the sibling edges already
    /// processed at the current level. Allocates fresh buffers — this only
    /// runs in the shallow edge-oriented phase, never in the vertex-oriented
    /// steady state.
    pub fn restrict_candidate<F>(&self, keep: F) -> Self
    where
        F: Fn(VertexId, VertexId) -> bool,
    {
        let k = self.len();
        let mut cand_adj = AdjMatrix::new(k);
        let mut filtered = self.filtered;
        for i in 0..k {
            for j in self.cand_adj.row_iter(i) {
                if j <= i {
                    continue;
                }
                if keep(self.orig[i], self.orig[j]) {
                    cand_adj.insert_sym(i, j);
                } else {
                    filtered = true;
                }
            }
        }
        LocalGraph {
            orig: self.orig.clone(),
            g_adj: self.g_adj.clone(),
            cand_adj,
            filtered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::Graph;

    fn diamond() -> Graph {
        // 0-1-2-3 cycle plus chord (0,2).
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap()
    }

    #[test]
    fn from_vertices_builds_relabelled_adjacency() {
        let g = diamond();
        let lg = LocalGraph::from_vertices(&g, &[2, 0, 3]);
        assert_eq!(lg.len(), 3);
        assert_eq!(lg.orig, vec![2, 0, 3]);
        // local 0=orig2, 1=orig0, 2=orig3: edges (2,0),(2,3),(0,3) all exist.
        assert!(lg.gadj_contains(0, 1));
        assert!(lg.gadj_contains(0, 2));
        assert!(lg.gadj_contains(1, 2));
        assert!(!lg.is_filtered());
        assert_eq!(lg.cand(0), lg.gadj(0));
        assert_eq!(lg.stride(), 1);
    }

    #[test]
    fn filtered_construction_separates_candidate_from_graph_adjacency() {
        let g = diamond();
        // Drop the chord (0,2) from the candidate adjacency only.
        let lg = LocalGraph::from_vertices_filtered(&g, &[0, 1, 2, 3], |u, v| {
            !((u, v) == (0, 2) || (u, v) == (2, 0))
        });
        assert!(lg.is_filtered());
        assert!(lg.gadj_contains(0, 2));
        assert!(!lg.cand_contains(0, 2));
        assert!(lg.cand_contains(0, 1));
    }

    #[test]
    fn no_filtering_keeps_identical_rows() {
        let g = diamond();
        let lg = LocalGraph::from_vertices_filtered(&g, &[0, 1, 2], |_, _| true);
        assert!(!lg.is_filtered());
        for v in 0..lg.len() {
            assert_eq!(lg.cand(v), lg.gadj(v));
        }
    }

    #[test]
    fn restrict_candidate_composes_filters() {
        let g = Graph::complete(4);
        let lg = LocalGraph::from_vertices_filtered(&g, &[0, 1, 2, 3], |u, v| {
            (u, v) != (0, 1) && (v, u) != (0, 1)
        });
        let lg2 = lg.restrict_candidate(|u, v| (u, v) != (2, 3) && (v, u) != (2, 3));
        // Both (0,1) and (2,3) are gone from the candidate adjacency…
        assert!(!lg2.cand_contains(0, 1));
        assert!(!lg2.cand_contains(2, 3));
        // …but the true adjacency still has them.
        assert!(lg2.gadj_contains(0, 1));
        assert!(lg2.gadj_contains(2, 3));
        // Untouched edges survive.
        assert!(lg2.cand_contains(0, 2));
    }

    #[test]
    fn rebuild_reuses_buffers_across_roots() {
        let g = Graph::complete(5);
        let mut position = vec![u32::MAX; g.n()];
        let mut lg = LocalGraph::new();
        lg.rebuild_filtered(&g, &[0, 1, 2, 3], |_, _| true, &mut position);
        assert_eq!(lg.len(), 4);
        assert!(lg.gadj_contains(0, 3));
        // Rebuild over a different (smaller) universe: stale bits must be gone.
        lg.rebuild_filtered(&g, &[4, 1], |_, _| true, &mut position);
        assert_eq!(lg.len(), 2);
        assert_eq!(lg.orig, vec![4, 1]);
        assert!(lg.gadj_contains(0, 1));
        assert!(!lg.is_filtered());
        // The position scratch is restored to all-MAX for the next rebuild.
        assert!(position.iter().all(|&p| p == u32::MAX));
    }

    #[test]
    fn empty_local_graph() {
        let g = Graph::complete(3);
        let lg = LocalGraph::from_vertices(&g, &[]);
        assert_eq!(lg.len(), 0);
    }
}
