//! Dedicated branch-and-bound **maximum clique** engine.
//!
//! [`QuerySpec::MaximumClique`](crate::QuerySpec) used to ride the full
//! enumeration and keep the largest clique a [`MaximumCliqueReporter`] saw —
//! exponentially more work than a bounded search needs, since every maximal
//! clique of the graph was materialised. This module implements the classic
//! bounded search instead, on the same allocation-free scratch-arena and
//! local-graph machinery the enumeration uses and generic over
//! [`GraphTopology`], so it runs unchanged on the dense and the CSR
//! representation:
//!
//! 1. **Greedy lower bound** — one reverse-degeneracy-order pass builds an
//!    initial clique; its size seeds the incumbent `lb`.
//! 2. **Core-number bound** (Pattabiraman et al.) — every clique through `v`
//!    has at most `core(v) + 1` vertices, so a root with
//!    `core(v) + 1 ≤ lb` never opens, and candidates with that property are
//!    dropped from root candidate sets ([`EnumerationStats::branches_pruned_by_core`]).
//! 3. **Greedy-coloring upper bound** (San Segundo style, bit-parallel) — a
//!    branch whose candidate set colors with `k` colors cannot extend the
//!    partial clique by more than `k`, so `|R| + k ≤ lb` prunes the subtree
//!    ([`EnumerationStats::branches_pruned_by_color`]). When the coloring
//!    uses `|C|` colors the candidate graph is complete and the branch
//!    closes immediately with `R ∪ C` — the bound-machinery form of the
//!    paper's early-termination test (counted in
//!    [`EnumerationStats::et_terminated`]).
//!
//! # Canonical winner
//!
//! The engine returns the **canonical** maximum clique: among all maximum
//! cliques, the one whose ascending-sorted member list is lexicographically
//! smallest — the same winner [`MaximumCliqueReporter`] extracts from the
//! enumeration stream, so the two paths agree byte-for-byte. The search runs
//! in two phases: the bounded search above establishes the maximum size
//! `s*`, then a lexicographic descent (ascending vertex ids, pruned by the
//! same core and coloring bounds against the now-tight target `s*`) finds
//! the first — hence lexicographically smallest — clique of that size.
//!
//! # Budgets
//!
//! Both phases charge one budget step per branch step, honoring
//! [`Budget`](crate::Budget)/[`CancelToken`](crate::CancelToken) with the
//! enumeration's semantics: a truncated run reports
//! `terminated_by_budget ≥ 1`, returns the best clique found so far and
//! never claims optimality (the outcome is `Truncated`). For a fixed step
//! budget the truncation point — and therefore the returned clique — is
//! deterministic. The search itself is sequential (like anchored and
//! k-clique queries); the thread count of a query does not affect it.
//!
//! [`MaximumCliqueReporter`]: crate::MaximumCliqueReporter
//! [`EnumerationStats::branches_pruned_by_core`]: crate::EnumerationStats::branches_pruned_by_core
//! [`EnumerationStats::branches_pruned_by_color`]: crate::EnumerationStats::branches_pruned_by_color
//! [`EnumerationStats::et_terminated`]: crate::EnumerationStats::et_terminated

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use mce_graph::{degeneracy_ordering, BitSet, BitsRef, GraphTopology, VertexId};

use crate::budget::{BudgetState, Outcome};
use crate::local::LocalGraph;
use crate::scratch::{SearchScratch, WorkerState};
use crate::solver::build_root_branch;
use crate::stats::EnumerationStats;

/// Reusable state of the branch-and-bound engine: the worker buffers shared
/// with the enumeration (scratch arena, local graph, position map) plus the
/// two coloring bitsets. Steady-state searches over same-sized graphs do not
/// allocate once the buffers have grown.
#[derive(Debug, Default)]
pub struct MaxCliqueState {
    worker: WorkerState,
    /// Scratch of the greedy-coloring upper bound.
    coloring: ColoringScratch,
    /// Incumbent clique (original vertex ids, ascending).
    best: Vec<VertexId>,
}

/// Reusable scratch of the bit-parallel greedy coloring — the two bitsets the
/// class construction sweeps. Shared by the branch-and-bound engine and the
/// size bound of `TopKBySize` queries ([`TopKBound`]); steady-state colorings
/// over same-sized candidate sets do not allocate.
#[derive(Clone, Debug, Default)]
pub(crate) struct ColoringScratch {
    /// Vertices not yet assigned a color class.
    uncolored: BitSet,
    /// Vertices still assignable to the class currently being built.
    avail: BitSet,
}

impl ColoringScratch {
    /// Greedy coloring of `c` over the candidate adjacency of `lg`: returns
    /// the number of color classes — an upper bound on the largest clique
    /// inside `c`, and exactly `|c|` iff the candidate graph is complete.
    /// Each class is an independent set built by repeatedly taking the
    /// smallest still-available vertex and discarding its neighbours.
    pub(crate) fn color_count(&mut self, lg: &LocalGraph, c: BitsRef<'_>) -> usize {
        self.uncolored.copy_from_view(c);
        let mut colors = 0usize;
        while !self.uncolored.is_empty() {
            colors += 1;
            self.avail.copy_from(&self.uncolored);
            while let Some(v) = self.avail.first() {
                self.uncolored.remove(v);
                self.avail.remove(v);
                self.avail.difference_with_words(lg.cand(v));
            }
        }
        colors
    }
}

/// The pruning state of a `TopKBySize` query: the sizes of the `k` largest
/// cliques observed so far (a min-heap, so the current k-th size is the
/// peek), an optional seeded size floor, and the coloring scratch of the
/// upper bound. The enumeration observes every emitted clique through
/// [`TopKBound::observe`] and asks [`TopKBound::min_interesting`] before
/// opening a branch: a subtree whose size upper bound (candidate count, then
/// greedy-coloring count) falls below that threshold cannot change the
/// retained top-k — every clique under it either loses on size or ties with
/// an earlier-arrived retained clique and loses the tie — so it is skipped
/// and counted in `branches_pruned_by_color` / `branches_pruned_by_core`.
#[derive(Debug, Default)]
pub(crate) struct TopKBound {
    k: usize,
    /// Min-heap over the sizes of the `k` largest cliques observed so far.
    sizes: BinaryHeap<Reverse<usize>>,
    /// Cliques smaller than this can never rank: for `k == 1` the greedy
    /// lower bound witnesses a clique at least this large somewhere in the
    /// stream, so nothing smaller can be the single largest. Zero when no
    /// floor is proven (`k > 1`).
    seed_floor: usize,
    /// Scratch of the greedy-coloring upper bound.
    pub(crate) coloring: ColoringScratch,
}

impl TopKBound {
    /// A bound for a top-`k` query; `seed_floor` is zero or a proven size
    /// floor (see [`TopKBound::seed_floor`]).
    pub(crate) fn new(k: usize, seed_floor: usize) -> Self {
        TopKBound {
            k,
            sizes: BinaryHeap::new(),
            seed_floor,
            coloring: ColoringScratch::default(),
        }
    }

    /// Records one emitted clique size (same retention rule as
    /// `TopKReporter`: sizes only, ties keep the incumbent).
    pub(crate) fn observe(&mut self, size: usize) {
        if self.k == 0 {
            return;
        }
        if self.sizes.len() < self.k {
            self.sizes.push(Reverse(size));
        } else if self.sizes.peek().is_some_and(|&Reverse(kth)| size > kth) {
            self.sizes.pop();
            self.sizes.push(Reverse(size));
        }
    }

    /// The smallest clique size that could still change the result: once `k`
    /// cliques are retained, anything not strictly larger than the k-th size
    /// loses (equal sizes lose the arrival tie-break), and anything below the
    /// seeded floor always loses. `None` while every size is still
    /// interesting (fewer than `k` cliques seen, no floor).
    pub(crate) fn min_interesting(&self) -> Option<usize> {
        if self.k == 0 {
            // Top-0 retains nothing; every branch is prunable.
            return Some(usize::MAX);
        }
        let full = (self.sizes.len() == self.k)
            .then(|| self.sizes.peek().map_or(0, |&Reverse(kth)| kth + 1));
        match (full, self.seed_floor) {
            (Some(f), s) if s > 0 => Some(f.max(s)),
            (Some(f), _) => Some(f),
            (None, s) if s > 0 => Some(s),
            (None, _) => None,
        }
    }
}

impl MaxCliqueState {
    /// Fresh state; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Which bound machinery ended a branch-and-bound maximum-clique search.
///
/// Derived from the run's counters: a truncated outcome means the budget
/// ended the search; otherwise the search exhausted the tree and the bound
/// that closed the most branches is reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminatingBound {
    /// The greedy-coloring upper bound closed the most branches.
    Color,
    /// The core-number bound closed the most branches.
    Core,
    /// The session budget (step limit, deadline or cancellation) truncated
    /// the search before exhaustion; the result is not claimed optimal.
    Budget,
    /// The tree was exhausted without any bound pruning (tiny inputs).
    Exhausted,
}

impl TerminatingBound {
    /// Classifies a finished run from its statistics and outcome.
    pub fn from_run(stats: &EnumerationStats, outcome: Outcome) -> Self {
        if outcome.is_truncated() {
            TerminatingBound::Budget
        } else if stats.branches_pruned_by_color == 0 && stats.branches_pruned_by_core == 0 {
            TerminatingBound::Exhausted
        } else if stats.branches_pruned_by_color >= stats.branches_pruned_by_core {
            TerminatingBound::Color
        } else {
            TerminatingBound::Core
        }
    }
}

impl std::fmt::Display for TerminatingBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TerminatingBound::Color => "color bound",
            TerminatingBound::Core => "core bound",
            TerminatingBound::Budget => "budget",
            TerminatingBound::Exhausted => "exhausted",
        })
    }
}

/// Returns the canonical maximum clique of `g` via branch and bound, with
/// the run's statistics (branch counts and the `branches_pruned_by_*` /
/// `lb_updates` pruning evidence).
pub fn maximum_clique_bb<G: GraphTopology>(g: &G) -> (Vec<VertexId>, EnumerationStats) {
    let mut state = MaxCliqueState::new();
    maximum_clique_bb_with_state(g, &mut state)
}

/// [`maximum_clique_bb`] with caller-owned reusable state: repeated searches
/// reuse every buffer (the allocation-free steady state the counting-
/// allocator gate checks).
pub fn maximum_clique_bb_with_state<G: GraphTopology>(
    g: &G,
    state: &mut MaxCliqueState,
) -> (Vec<VertexId>, EnumerationStats) {
    solve(g, state, None)
}

/// A cheap, valid lower bound on the maximum clique size of `g`: the size of
/// the greedy clique grown along the reverse degeneracy order. Exposed so
/// other query paths (the `k = 1` size floor of
/// [`QuerySpec::TopKBySize`](crate::QuerySpec)) can reuse the bound
/// machinery without running the full search.
pub fn greedy_lower_bound<G: GraphTopology>(g: &G) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let deg = degeneracy_ordering(g);
    let mut clique = Vec::new();
    greedy_clique(g, &deg.order, &mut clique);
    clique.len()
}

/// Grows a greedy clique along the reverse of `order` into `clique`
/// (original ids, ascending after the final sort). Deterministic and
/// representation-independent, since the degeneracy ordering is.
pub(crate) fn greedy_clique<G: GraphTopology>(
    g: &G,
    order: &[VertexId],
    clique: &mut Vec<VertexId>,
) {
    clique.clear();
    for &v in order.iter().rev() {
        if clique.iter().all(|&u| g.has_edge(u, v)) {
            clique.push(v);
        }
    }
    clique.sort_unstable();
}

/// The budgeted entry point the query engine routes
/// [`QuerySpec::MaximumClique`](crate::QuerySpec) through.
pub(crate) fn solve<G: GraphTopology>(
    g: &G,
    state: &mut MaxCliqueState,
    budget: Option<&BudgetState>,
) -> (Vec<VertexId>, EnumerationStats) {
    let start = Instant::now();
    let mut stats = EnumerationStats::default();
    let MaxCliqueState {
        worker,
        coloring,
        best,
    } = state;
    best.clear();
    if g.n() == 0 {
        stats.elapsed = start.elapsed();
        return (Vec::new(), stats);
    }

    let ordering_start = Instant::now();
    let deg = degeneracy_ordering(g);
    stats.ordering_time = ordering_start.elapsed();

    // Phase 0: greedy initial clique — the incumbent every bound prunes
    // against.
    greedy_clique(g, &deg.order, best);
    if !best.is_empty() {
        stats.lb_updates += 1;
    }

    worker.prepare_for(g.n());
    let mut bb = Bb {
        stats: &mut stats,
        budget,
        coloring,
        best,
        aborted: false,
    };

    // Phase 1: bounded search for the maximum size, over degeneracy-ordered
    // vertex roots (each root's candidate set is its later neighbourhood,
    // bounded by the degeneracy δ).
    for (rank, &v) in deg.order.iter().enumerate() {
        if bb.should_stop() {
            bb.aborted = true;
            break;
        }
        let lb = bb.best.len();
        if deg.core[v as usize] < lb {
            bb.stats.branches_pruned_by_core += 1;
            continue;
        }
        worker.candidates.clear();
        worker.excluded.clear();
        for u in g.neighbors_iter(v) {
            if deg.position[u as usize] > rank && deg.core[u as usize] + 1 > lb {
                worker.candidates.push(u);
            }
        }
        if worker.candidates.len() < lb {
            bb.stats.branches_pruned_by_color += 1;
            continue;
        }
        bb.stats.initial_branches += 1;
        build_root_branch(g, worker, |_, _| true);
        worker.partial.clear();
        worker.partial.push(v);
        let root_c_len = worker.candidates.len();
        let WorkerState {
            scratch,
            lg,
            partial,
            ..
        } = worker;
        bb.search_max(lg, scratch, partial, 0, root_c_len);
        if bb.aborted {
            break;
        }
    }

    // Phase 2: lexicographic descent for the canonical witness — the first
    // (hence lexicographically smallest) clique of the proven maximum size,
    // found by trying ascending vertex ids under the same bounds, now tight
    // against the target. Skipped when phase 1 was truncated: the incumbent
    // is then only a lower-bound witness and the outcome says so.
    if !bb.aborted && !bb.best.is_empty() {
        let target = bb.best.len();
        for v in 0..g.n() as VertexId {
            if bb.should_stop() {
                break;
            }
            if deg.core[v as usize] + 1 < target {
                bb.stats.branches_pruned_by_core += 1;
                continue;
            }
            worker.candidates.clear();
            worker.excluded.clear();
            for u in g.neighbors_iter(v) {
                if u > v && deg.core[u as usize] + 1 >= target {
                    worker.candidates.push(u);
                }
            }
            if 1 + worker.candidates.len() < target {
                bb.stats.branches_pruned_by_color += 1;
                continue;
            }
            bb.stats.initial_branches += 1;
            build_root_branch(g, worker, |_, _| true);
            worker.partial.clear();
            worker.partial.push(v);
            let root_c_len = worker.candidates.len();
            let WorkerState {
                scratch,
                lg,
                partial,
                ..
            } = worker;
            if bb.search_lex(lg, scratch, partial, 0, root_c_len, target) || bb.aborted {
                break;
            }
        }
    }

    if let Some(b) = budget {
        if b.outcome().is_truncated() && stats.terminated_by_budget == 0 {
            stats.terminated_by_budget = 1;
        }
    }
    stats.max_clique_size = best.len();
    stats.elapsed = start.elapsed();
    stats.busy_time = stats.elapsed;
    (best.clone(), stats)
}

/// The recursion context of one solve: counters, budget, coloring scratch
/// and the incumbent.
struct Bb<'a> {
    stats: &'a mut EnumerationStats,
    budget: Option<&'a BudgetState>,
    coloring: &'a mut ColoringScratch,
    best: &'a mut Vec<VertexId>,
    aborted: bool,
}

impl Bb<'_> {
    /// Polls the budget's latched stop signal (no step charged).
    fn should_stop(&self) -> bool {
        self.budget.is_some_and(|b| b.should_stop())
    }

    /// Charges one branch step; `true` means the search must unwind.
    fn step_aborts(&mut self) -> bool {
        match self.budget {
            Some(b) if b.note_step() => {
                self.stats.terminated_by_budget += 1;
                self.aborted = true;
                true
            }
            _ => false,
        }
    }

    /// Greedy-coloring upper bound over `c` (see
    /// [`ColoringScratch::color_count`]).
    fn color_count(&mut self, lg: &LocalGraph, c: BitsRef<'_>) -> usize {
        self.coloring.color_count(lg, c)
    }

    /// Phase-1 node: bounded descent maximising the clique size. Reads its
    /// candidate set from frame `depth`, writes children into `depth + 1`.
    fn search_max(
        &mut self,
        lg: &LocalGraph,
        scratch: &mut SearchScratch,
        partial: &mut Vec<VertexId>,
        depth: usize,
        c_len: usize,
    ) {
        self.stats.recursive_calls += 1;
        if c_len == 0 {
            if partial.len() > self.best.len() {
                self.best.clear();
                self.best.extend_from_slice(partial);
                self.best.sort_unstable();
                self.stats.lb_updates += 1;
            }
            return;
        }
        if partial.len() + c_len <= self.best.len() {
            self.stats.branches_pruned_by_color += 1;
            return;
        }
        let colors = self.color_count(lg, scratch.frame(depth).c());
        if partial.len() + colors <= self.best.len() {
            self.stats.branches_pruned_by_color += 1;
            return;
        }
        if colors == c_len {
            // Complete candidate graph: R ∪ C is a clique, strictly larger
            // than the incumbent (the coloring bound just said so). This is
            // the early-termination test expressed through the bound
            // machinery: the branch closes without opening |C| children.
            self.stats.et_eligible += 1;
            self.stats.et_terminated += 1;
            let f = scratch.frame_mut(depth);
            f.branch_from_c();
            self.best.clear();
            self.best.extend_from_slice(partial);
            self.best.extend(f.branch.iter().map(|&i| lg.orig[i]));
            self.best.sort_unstable();
            self.stats.lb_updates += 1;
            return;
        }
        // Branch on every candidate in ascending local-id order (canonical),
        // removing each from C afterwards so later siblings exclude it.
        scratch.frame_mut(depth).branch_from_c();
        let mut remaining = c_len;
        for bi in 0..c_len {
            if self.step_aborts() {
                return;
            }
            if partial.len() + remaining <= self.best.len() {
                self.stats.branches_pruned_by_color += 1;
                return;
            }
            let v = scratch.frame(depth).branch[bi];
            let child_len = scratch.make_child_c(depth, lg.cand(v));
            partial.push(lg.orig[v]);
            self.search_max(lg, scratch, partial, depth + 1, child_len);
            partial.pop();
            if self.aborted {
                return;
            }
            scratch.frame_mut(depth).c_mut().remove(v);
            remaining -= 1;
        }
    }

    /// Phase-2 node: lexicographic descent for the first clique of exactly
    /// `target` vertices. Returns `true` once found (the incumbent then
    /// holds the canonical witness). `partial` grows along ascending
    /// original ids (ascending local ids map to ascending original ids —
    /// candidates are pushed in sorted-neighbour order), so the first clique
    /// this DFS completes is the lexicographically smallest one.
    fn search_lex(
        &mut self,
        lg: &LocalGraph,
        scratch: &mut SearchScratch,
        partial: &mut Vec<VertexId>,
        depth: usize,
        c_len: usize,
        target: usize,
    ) -> bool {
        self.stats.recursive_calls += 1;
        if partial.len() == target {
            self.best.clear();
            self.best.extend_from_slice(partial);
            return true;
        }
        if partial.len() + c_len < target {
            self.stats.branches_pruned_by_color += 1;
            return false;
        }
        let colors = self.color_count(lg, scratch.frame(depth).c());
        if partial.len() + colors < target {
            self.stats.branches_pruned_by_color += 1;
            return false;
        }
        if colors == c_len {
            // Complete candidate graph: the lexicographically smallest
            // completion takes the smallest `target - |R|` candidates.
            self.stats.et_eligible += 1;
            self.stats.et_terminated += 1;
            let f = scratch.frame_mut(depth);
            f.branch_from_c();
            let take = target - partial.len();
            self.best.clear();
            self.best.extend_from_slice(partial);
            self.best
                .extend(f.branch.iter().take(take).map(|&i| lg.orig[i]));
            return true;
        }
        scratch.frame_mut(depth).branch_from_c();
        let mut remaining = c_len;
        for bi in 0..c_len {
            if self.step_aborts() {
                return false;
            }
            if partial.len() + remaining < target {
                self.stats.branches_pruned_by_color += 1;
                return false;
            }
            let v = scratch.frame(depth).branch[bi];
            let child_len = scratch.make_child_c(depth, lg.cand(v));
            partial.push(lg.orig[v]);
            let found = self.search_lex(lg, scratch, partial, depth + 1, child_len, target);
            partial.pop();
            if found || self.aborted {
                return found;
            }
            scratch.frame_mut(depth).c_mut().remove(v);
            remaining -= 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::{AdjMatrix, Graph};

    fn two_triangles_and_k4() -> Graph {
        // K4 on {4,5,6,7}, triangle on {0,1,2}, pendant 3.
        Graph::from_edges(
            8,
            vec![
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (4, 5),
                (4, 6),
                (4, 7),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn finds_the_maximum_clique() {
        let g = two_triangles_and_k4();
        let (best, stats) = maximum_clique_bb(&g);
        assert_eq!(best, vec![4, 5, 6, 7]);
        assert_eq!(stats.max_clique_size, 4);
        assert!(stats.lb_updates >= 1);
    }

    #[test]
    fn csr_and_dense_agree_byte_for_byte() {
        let g = two_triangles_and_k4();
        let mut dense = AdjMatrix::new(g.n());
        for v in g.vertices() {
            for u in g.neighbors(v) {
                dense.insert_sym(v as usize, *u as usize);
            }
        }
        assert_eq!(maximum_clique_bb(&g).0, maximum_clique_bb(&dense).0);
    }

    #[test]
    fn tie_break_is_lexicographic() {
        // Two disjoint triangles; {1, 5, 8} sorts lexicographically before
        // {2, 3, 9} regardless of vertex degrees or stream order.
        let g =
            Graph::from_edges(10, vec![(5, 8), (1, 5), (1, 8), (2, 3), (3, 9), (2, 9)]).unwrap();
        let (best, _) = maximum_clique_bb(&g);
        assert_eq!(best, vec![1, 5, 8]);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::from_edges(0, Vec::new()).unwrap();
        assert_eq!(maximum_clique_bb(&g).0, Vec::<VertexId>::new());
        let g = Graph::from_edges(3, Vec::new()).unwrap();
        // A single vertex is a clique of size 1; vertex 0 is canonical.
        assert_eq!(maximum_clique_bb(&g).0, vec![0]);
    }

    #[test]
    fn greedy_lower_bound_is_a_valid_bound() {
        let g = two_triangles_and_k4();
        let lb = greedy_lower_bound(&g);
        assert!((1..=4).contains(&lb));
    }

    #[test]
    fn state_reuse_returns_identical_results() {
        let g = two_triangles_and_k4();
        let mut state = MaxCliqueState::new();
        let first = maximum_clique_bb_with_state(&g, &mut state);
        let second = maximum_clique_bb_with_state(&g, &mut state);
        assert_eq!(first.0, second.0);
        assert_eq!(
            first.1.recursive_calls, second.1.recursive_calls,
            "reused state must not change the search"
        );
    }

    #[test]
    fn terminating_bound_classification() {
        let mut stats = EnumerationStats::default();
        assert_eq!(
            TerminatingBound::from_run(&stats, Outcome::Complete),
            TerminatingBound::Exhausted
        );
        stats.branches_pruned_by_core = 3;
        assert_eq!(
            TerminatingBound::from_run(&stats, Outcome::Complete),
            TerminatingBound::Core
        );
        stats.branches_pruned_by_color = 3;
        assert_eq!(
            TerminatingBound::from_run(&stats, Outcome::Complete),
            TerminatingBound::Color
        );
    }
}
