//! Branch scanning: pivot scores and the early-termination precondition.
//!
//! Every pivoting branch performs a single pass over `C ∪ X` computing, for
//! each vertex, the number of its candidate neighbours inside `C`. That one
//! pass yields everything the different strategies need:
//!
//! * the **classic pivot** (vertex of `C ∪ X` with the most candidate
//!   neighbours in `C`, Tomita et al.),
//! * the **refined** special cases (an exclusion vertex dominating all of `C`
//!   ⇒ prune; a candidate adjacent to all other candidates ⇒ absorb),
//! * the **early-termination precondition** (minimum degree inside `C` at
//!   least `|C| − t`, and no candidate edge removed inside `C`), which the
//!   paper explicitly piggybacks on the pivot scan so its overhead is `O(|C|)`.

use mce_graph::BitsRef;

use crate::local::LocalGraph;

/// Result of scanning a branch `(C, X)`.
#[derive(Clone, Debug, Default)]
pub(crate) struct BranchScan {
    /// Local id of the best pivot (vertex of `C ∪ X` with most candidate
    /// neighbours in `C`); `usize::MAX` when `C ∪ X` is empty.
    pub pivot: usize,
    /// Number of candidate neighbours of the pivot inside `C`.
    pub pivot_score: usize,
    /// Minimum over `v ∈ C` of `|N_G(v) ∩ C|` (true-graph degrees).
    pub min_candidate_gdegree: usize,
    /// Candidate vertex with the fewest candidate neighbours inside `C`
    /// (the branching vertex of the `BK_Rcd` recursion); `usize::MAX` when `C`
    /// is empty.
    pub min_degree_candidate: usize,
    /// Candidate-graph degree of [`BranchScan::min_degree_candidate`].
    pub min_candidate_cdegree: usize,
    /// Whether, for every `v ∈ C`, candidate degree equals true-graph degree
    /// inside `C` (i.e. no excluded edge joins two candidates).
    pub candidate_matches_graph: bool,
    /// Some exclusion vertex is adjacent (in G) to every candidate ⇒ the branch
    /// cannot contain any maximal clique.
    pub dominated_by_exclusion: bool,
    /// A candidate adjacent (in the candidate graph) to every other candidate,
    /// if one exists: it belongs to every maximal clique of the branch.
    pub universal_candidate: Option<usize>,
}

/// Scans the branch `(C, X)` over `lg`.
pub(crate) fn scan_branch(lg: &LocalGraph, c: BitsRef<'_>, x: BitsRef<'_>) -> BranchScan {
    let c_len = c.len();
    let mut scan = BranchScan {
        pivot: usize::MAX,
        pivot_score: 0,
        min_candidate_gdegree: usize::MAX,
        min_degree_candidate: usize::MAX,
        min_candidate_cdegree: usize::MAX,
        candidate_matches_graph: true,
        dominated_by_exclusion: false,
        universal_candidate: None,
    };
    let mut have_pivot = false;

    for v in c.iter() {
        let cand_deg = c.intersection_len_words(lg.cand(v));
        let g_deg = c.intersection_len_words(lg.gadj(v));
        if !have_pivot || cand_deg > scan.pivot_score {
            scan.pivot = v;
            scan.pivot_score = cand_deg;
            have_pivot = true;
        }
        if cand_deg < scan.min_candidate_cdegree {
            scan.min_candidate_cdegree = cand_deg;
            scan.min_degree_candidate = v;
        }
        if g_deg < scan.min_candidate_gdegree {
            scan.min_candidate_gdegree = g_deg;
        }
        if cand_deg != g_deg {
            scan.candidate_matches_graph = false;
        }
        if cand_deg + 1 == c_len && scan.universal_candidate.is_none() {
            scan.universal_candidate = Some(v);
        }
    }
    for v in x.iter() {
        let g_deg = c.intersection_len_words(lg.gadj(v));
        if !have_pivot || g_deg > scan.pivot_score {
            scan.pivot = v;
            scan.pivot_score = g_deg;
            have_pivot = true;
        }
        if g_deg == c_len && c_len > 0 {
            scan.dominated_by_exclusion = true;
        }
    }
    if scan.min_candidate_gdegree == usize::MAX {
        scan.min_candidate_gdegree = 0;
    }
    scan
}

/// Whether the early-termination precondition of the paper holds for the
/// scanned branch: the candidate graph is a `t`-plex (every candidate misses
/// at most `t` candidates, itself included) and no candidate edge has been
/// excluded by an edge-oriented ancestor (so the plex really is a subgraph of
/// the input graph).
pub(crate) fn plex_condition(scan: &BranchScan, c_len: usize, t: usize) -> bool {
    if t == 0 || c_len == 0 {
        return false;
    }
    scan.candidate_matches_graph && scan.min_candidate_gdegree + t >= c_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::{BitSet, Graph};

    fn set(ids: &[usize], cap: usize) -> BitSet {
        let mut s = BitSet::with_capacity(cap);
        for &i in ids {
            s.insert(i);
        }
        s
    }

    #[test]
    fn scan_finds_classic_pivot() {
        // Star centred at 0 inside the local graph: 0 adjacent to 1,2,3; 1-2 edge.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let lg = crate::local::LocalGraph::from_vertices(&g, &[0, 1, 2, 3]);
        let c = set(&[0, 1, 2, 3], 4);
        let x = set(&[], 4);
        let scan = scan_branch(&lg, c.view(), x.view());
        assert_eq!(scan.pivot, 0);
        assert_eq!(scan.pivot_score, 3);
        assert_eq!(scan.min_candidate_gdegree, 1); // vertex 3 only sees 0
        assert!(scan.candidate_matches_graph);
        assert!(!scan.dominated_by_exclusion);
    }

    #[test]
    fn scan_detects_domination_by_exclusion_vertex() {
        let g = Graph::complete(4);
        let lg = crate::local::LocalGraph::from_vertices(&g, &[0, 1, 2, 3]);
        let c = set(&[0, 1, 2], 4);
        let x = set(&[3], 4);
        let scan = scan_branch(&lg, c.view(), x.view());
        assert!(scan.dominated_by_exclusion);
    }

    #[test]
    fn scan_detects_universal_candidate() {
        // 0 adjacent to 1 and 2, which are not adjacent to each other.
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let lg = crate::local::LocalGraph::from_vertices(&g, &[0, 1, 2]);
        let c = set(&[0, 1, 2], 3);
        let scan = scan_branch(&lg, c.view(), set(&[], 3).view());
        assert_eq!(scan.universal_candidate, Some(0));
    }

    #[test]
    fn scan_reports_candidate_graph_mismatch() {
        let g = Graph::complete(3);
        let lg = crate::local::LocalGraph::from_vertices_filtered(&g, &[0, 1, 2], |u, v| {
            !((u == 0 && v == 1) || (u == 1 && v == 0))
        });
        let c = set(&[0, 1, 2], 3);
        let scan = scan_branch(&lg, c.view(), set(&[], 3).view());
        assert!(!scan.candidate_matches_graph);
    }

    #[test]
    fn scan_of_empty_sets() {
        let g = Graph::complete(3);
        let lg = crate::local::LocalGraph::from_vertices(&g, &[0, 1, 2]);
        let scan = scan_branch(&lg, set(&[], 3).view(), set(&[], 3).view());
        assert_eq!(scan.pivot, usize::MAX);
        assert_eq!(scan.min_candidate_gdegree, 0);
    }

    #[test]
    fn plex_condition_levels() {
        let g = Graph::complete(5);
        let lg = crate::local::LocalGraph::from_vertices(&g, &[0, 1, 2, 3, 4]);
        let c = set(&[0, 1, 2, 3, 4], 5);
        let scan = scan_branch(&lg, c.view(), set(&[], 5).view());
        // A clique is a 1-plex.
        assert!(plex_condition(&scan, c.len(), 1));
        assert!(plex_condition(&scan, c.len(), 3));
        assert!(!plex_condition(&scan, c.len(), 0));
    }

    #[test]
    fn plex_condition_for_c5_needs_t3() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let lg = crate::local::LocalGraph::from_vertices(&g, &[0, 1, 2, 3, 4]);
        let c = set(&[0, 1, 2, 3, 4], 5);
        let scan = scan_branch(&lg, c.view(), set(&[], 5).view());
        assert!(!plex_condition(&scan, c.len(), 2));
        assert!(plex_condition(&scan, c.len(), 3));
    }

    #[test]
    fn plex_condition_rejected_when_candidate_edges_removed() {
        let g = Graph::complete(4);
        let lg = crate::local::LocalGraph::from_vertices_filtered(&g, &[0, 1, 2, 3], |u, v| {
            !((u, v) == (0, 1) || (u, v) == (1, 0))
        });
        let c = set(&[0, 1, 2, 3], 4);
        let scan = scan_branch(&lg, c.view(), set(&[], 4).view());
        assert!(!plex_condition(&scan, c.len(), 3));
    }
}
