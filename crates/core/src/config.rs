//! Solver configuration: frameworks, pivot strategies, orderings and the
//! named algorithm presets used throughout the paper's evaluation.

use std::fmt;

use mce_graph::{EdgeOrderingKind, VertexOrderingKind};

/// An invalid [`SolverConfig`] (out-of-range early-termination level, zero
/// edge depth, unknown preset name). Implements [`std::error::Error`] so
/// drivers can surface it with a proper exit code instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid solver configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Pivot selection strategy for the vertex-oriented recursion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PivotStrategy {
    /// No pivoting: branch on every candidate vertex (the original Bron–Kerbosch).
    None,
    /// Classic Tomita pivot: the vertex of `C ∪ X` with the most neighbours in `C`
    /// (used by `BK_Pivot`, `BK_Degen` and by HBBMC's vertex-oriented phase).
    Classic,
    /// Refined pivot selection in the spirit of `BK_Ref` (Naudé): prunes branches
    /// dominated by an exclusion vertex adjacent to all candidates and absorbs
    /// universal candidates before falling back to the classic rule.
    Refined,
    /// Cheap iteratively-improved pivot in the spirit of `BK_Fac`: start from an
    /// arbitrary candidate and shrink the branching set whenever a processed
    /// vertex yields a smaller one.
    Factor,
}

/// The shape of the recursion run below the initial branching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecursionStrategy {
    /// Vertex-oriented Bron–Kerbosch branching with the given pivot strategy.
    Pivoting(PivotStrategy),
    /// The `BK_Rcd` top-down recursion: repeatedly branch on the minimum-degree
    /// candidate until the candidate graph becomes a clique.
    Rcd,
}

/// How the initial (root) branching partitions the search space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InitialBranching {
    /// Vertex-oriented branching (Eq. 1) over the whole graph using the given
    /// vertex ordering. This is the `VBBMC` family.
    Vertex(VertexOrderingKind),
    /// Edge-oriented branching (Eq. 2 / Eq. 3) using the given edge ordering,
    /// applied for `depth` levels of the recursion tree before switching to the
    /// vertex-oriented strategy. `depth = 1` (only the root) is the paper's
    /// HBBMC; `depth ∈ {2, 3}` reproduces Table IV.
    Edge {
        /// Edge ordering used at the root (and inherited at deeper edge levels).
        ordering: EdgeOrderingKind,
        /// Number of edge-oriented levels (≥ 1).
        depth: usize,
    },
}

/// How the parallel driver distributes root branches over worker threads.
///
/// Root branches are heavily skewed: a handful of hub vertices/edges dominate
/// the work, so assigning every `k`-th branch to worker `k` (static) leaves
/// most workers idle while one grinds through the hubs. The dynamic scheduler
/// instead lets workers *pull* the next chunk of root ranks from a shared
/// atomic counter as they finish — a work-stealing queue degenerate case that
/// needs no deques because root tasks are already materialised in the
/// ordering. Both pulling schedulers remain bounded below by the *largest
/// single root branch*: once the rank queue drains, whoever holds the biggest
/// subtree finishes alone. The splitting scheduler removes that bound by
/// donating unexplored sub-branches mid-recursion (see
/// [`parallel`](crate::parallel) for the task-pool protocol). Sequential runs
/// ignore this setting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RootScheduler {
    /// Workers claim chunks of root ranks from a shared atomic counter in
    /// ordering order (degeneracy/truss order, heaviest roots first).
    #[default]
    Dynamic,
    /// Worker `k` of `p` processes the fixed ranks `{r : r ≡ k (mod p)}`.
    Static,
    /// Adaptive subtree splitting: workers pull root ranks from a shared
    /// task pool (grouped into per-connected-component shards) and, when the
    /// pool starves while they grind a long root, package the unexplored
    /// sibling branches of their shallowest recursion frame into
    /// self-contained tasks that idle workers steal and resume. Parallelism
    /// is no longer bounded by the largest root branch; ordered output stays
    /// byte-identical to the sequential stream at any thread count.
    Splitting,
}

/// Full configuration of a maximal clique enumeration run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SolverConfig {
    /// Root branching strategy.
    pub initial: InitialBranching,
    /// Recursion strategy below the root.
    pub recursion: RecursionStrategy,
    /// Early-termination parameter `t ∈ {0, 1, 2, 3}` — terminate branches whose
    /// candidate graph is a t-plex and whose exclusion graph is empty. `0`
    /// disables the technique.
    pub early_termination_t: usize,
    /// Whether to apply the graph-reduction (GR) preprocessing of Deng et al.
    pub graph_reduction: bool,
    /// Root-branch scheduling policy of the parallel driver.
    pub scheduler: RootScheduler,
}

impl Default for SolverConfig {
    /// The paper's flagship configuration `HBBMC++`.
    fn default() -> Self {
        Self::hbbmc_pp()
    }
}

impl SolverConfig {
    /// Validates the configuration (early-termination level and edge depth).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.early_termination_t > 3 {
            return Err(ConfigError::new(format!(
                "early_termination_t must be in 0..=3 (got {}): the paper's construction only \
                 covers cliques, 2-plexes and 3-plexes",
                self.early_termination_t
            )));
        }
        if let InitialBranching::Edge { depth, .. } = self.initial {
            if depth == 0 {
                return Err(ConfigError::new(
                    "edge-oriented initial branching requires depth >= 1",
                ));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Proposed algorithms
    // ------------------------------------------------------------------

    /// `HBBMC++`: hybrid branching (truss-ordered edge root, classic-pivot
    /// vertex recursion) + early termination (t = 3) + graph reduction.
    pub fn hbbmc_pp() -> Self {
        SolverConfig {
            initial: InitialBranching::Edge {
                ordering: EdgeOrderingKind::Truss,
                depth: 1,
            },
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Classic),
            early_termination_t: 3,
            graph_reduction: true,
            scheduler: RootScheduler::Dynamic,
        }
    }

    /// `HBBMC+`: HBBMC++ without the early-termination technique.
    pub fn hbbmc_plus() -> Self {
        SolverConfig {
            early_termination_t: 0,
            ..Self::hbbmc_pp()
        }
    }

    /// Plain `HBBMC` (no ET, no GR): the bare hybrid framework of Algorithm 4.
    pub fn hbbmc_bare() -> Self {
        SolverConfig {
            early_termination_t: 0,
            graph_reduction: false,
            ..Self::hbbmc_pp()
        }
    }

    /// `HBBMC++` with a different switch depth `d` (Table IV).
    pub fn hbbmc_pp_depth(depth: usize) -> Self {
        SolverConfig {
            initial: InitialBranching::Edge {
                ordering: EdgeOrderingKind::Truss,
                depth,
            },
            ..Self::hbbmc_pp()
        }
    }

    /// `HBBMC++` with early-termination level `t` (Table V; `t = 0` is `HBBMC+`).
    pub fn hbbmc_pp_et(t: usize) -> Self {
        SolverConfig {
            early_termination_t: t,
            ..Self::hbbmc_pp()
        }
    }

    /// `EBBMC`: pure edge-oriented branching with truss ordering (no pivoting
    /// benefit below the root is expressed by an effectively unbounded depth).
    pub fn ebbmc() -> Self {
        SolverConfig {
            initial: InitialBranching::Edge {
                ordering: EdgeOrderingKind::Truss,
                depth: usize::MAX,
            },
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Classic),
            early_termination_t: 0,
            graph_reduction: false,
            scheduler: RootScheduler::Dynamic,
        }
    }

    // ------------------------------------------------------------------
    // VBBMC baselines (Deng et al.'s R* variants all include GR)
    // ------------------------------------------------------------------

    /// `RRef`: `BK_Ref` (refined pivoting) + graph reduction.
    pub fn r_ref() -> Self {
        SolverConfig {
            initial: InitialBranching::Vertex(VertexOrderingKind::Natural),
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Refined),
            early_termination_t: 0,
            graph_reduction: true,
            scheduler: RootScheduler::Dynamic,
        }
    }

    /// `RDegen`: `BK_Degen` (degeneracy ordering + classic pivot) + graph reduction.
    pub fn r_degen() -> Self {
        SolverConfig {
            initial: InitialBranching::Vertex(VertexOrderingKind::Degeneracy),
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Classic),
            early_termination_t: 0,
            graph_reduction: true,
            scheduler: RootScheduler::Dynamic,
        }
    }

    /// `RRcd`: `BK_Rcd` (top-down removal of minimum-degree candidates) + graph reduction.
    pub fn r_rcd() -> Self {
        SolverConfig {
            initial: InitialBranching::Vertex(VertexOrderingKind::Degeneracy),
            recursion: RecursionStrategy::Rcd,
            early_termination_t: 0,
            graph_reduction: true,
            scheduler: RootScheduler::Dynamic,
        }
    }

    /// `RFac`: `BK_Fac` (cheap iterative pivot) + graph reduction.
    pub fn r_fac() -> Self {
        SolverConfig {
            initial: InitialBranching::Vertex(VertexOrderingKind::Degeneracy),
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Factor),
            early_termination_t: 0,
            graph_reduction: true,
            scheduler: RootScheduler::Dynamic,
        }
    }

    /// Historical `BK_Pivot` (classic pivot, natural ordering, no GR).
    pub fn bk_pivot() -> Self {
        SolverConfig {
            initial: InitialBranching::Vertex(VertexOrderingKind::Natural),
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Classic),
            early_termination_t: 0,
            graph_reduction: false,
            scheduler: RootScheduler::Dynamic,
        }
    }

    /// The original Bron–Kerbosch algorithm (no pivot, no ordering, no GR).
    pub fn bk_plain() -> Self {
        SolverConfig {
            initial: InitialBranching::Vertex(VertexOrderingKind::Natural),
            recursion: RecursionStrategy::Pivoting(PivotStrategy::None),
            early_termination_t: 0,
            graph_reduction: false,
            scheduler: RootScheduler::Dynamic,
        }
    }

    /// `BK_Degree`: degree ordering at the root + classic pivot.
    pub fn bk_degree() -> Self {
        SolverConfig {
            initial: InitialBranching::Vertex(VertexOrderingKind::Degree),
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Classic),
            early_termination_t: 0,
            graph_reduction: false,
            scheduler: RootScheduler::Dynamic,
        }
    }

    // ------------------------------------------------------------------
    // Hybrid-framework variants of Table III and Table VI
    // ------------------------------------------------------------------

    /// `Ref++`: edge-oriented root + refined-pivot recursion + ET + GR.
    pub fn ref_pp() -> Self {
        SolverConfig {
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Refined),
            ..Self::hbbmc_pp()
        }
    }

    /// `Rcd++`: edge-oriented root + Rcd recursion + ET + GR.
    pub fn rcd_pp() -> Self {
        SolverConfig {
            recursion: RecursionStrategy::Rcd,
            ..Self::hbbmc_pp()
        }
    }

    /// `Fac++`: edge-oriented root + factor-pivot recursion + ET + GR.
    pub fn fac_pp() -> Self {
        SolverConfig {
            recursion: RecursionStrategy::Pivoting(PivotStrategy::Factor),
            ..Self::hbbmc_pp()
        }
    }

    /// `VBBMC-dgn`: vertex-oriented root with degeneracy ordering + ET + GR
    /// (differs from HBBMC++ only in the initial branching, Table VI).
    pub fn vbbmc_dgn() -> Self {
        SolverConfig {
            initial: InitialBranching::Vertex(VertexOrderingKind::Degeneracy),
            ..Self::hbbmc_pp()
        }
    }

    /// `HBBMC-dgn`: edge-oriented root ordered lexicographically by the
    /// degeneracy positions of the endpoints (Table VI).
    pub fn hbbmc_dgn() -> Self {
        SolverConfig {
            initial: InitialBranching::Edge {
                ordering: EdgeOrderingKind::DegeneracyLex,
                depth: 1,
            },
            ..Self::hbbmc_pp()
        }
    }

    /// `HBBMC-mdg`: edge-oriented root ordered by the minimum endpoint degree
    /// (Table VI).
    pub fn hbbmc_mdg() -> Self {
        SolverConfig {
            initial: InitialBranching::Edge {
                ordering: EdgeOrderingKind::MinDegree,
                depth: 1,
            },
            ..Self::hbbmc_pp()
        }
    }

    /// `RDegen+ET`: the early-termination technique applied to the
    /// vertex-oriented `RDegen` baseline — the paper's remark that ET is
    /// orthogonal to the branching framework.
    pub fn r_degen_et() -> Self {
        SolverConfig {
            early_termination_t: 3,
            ..Self::r_degen()
        }
    }

    /// `RRcd+ET`: early termination on top of the `BK_Rcd` recursion.
    pub fn r_rcd_et() -> Self {
        SolverConfig {
            early_termination_t: 3,
            ..Self::r_rcd()
        }
    }

    /// Looks up a named preset case-insensitively (the names of
    /// [`SolverConfig::named_presets`], e.g. `HBBMC++` or `rdegen`).
    pub fn preset_by_name(name: &str) -> Result<SolverConfig, ConfigError> {
        Self::named_presets()
            .into_iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, cfg)| cfg)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::named_presets().iter().map(|(n, _)| *n).collect();
                ConfigError::new(format!(
                    "unknown preset '{name}' (expected one of: {})",
                    names.join(", ")
                ))
            })
    }

    /// All named presets with their paper names, useful for harnesses and tests.
    pub fn named_presets() -> Vec<(&'static str, SolverConfig)> {
        vec![
            ("HBBMC++", Self::hbbmc_pp()),
            ("HBBMC+", Self::hbbmc_plus()),
            ("HBBMC", Self::hbbmc_bare()),
            ("EBBMC", Self::ebbmc()),
            ("RRef", Self::r_ref()),
            ("RDegen", Self::r_degen()),
            ("RRcd", Self::r_rcd()),
            ("RFac", Self::r_fac()),
            ("BK", Self::bk_plain()),
            ("BK_Pivot", Self::bk_pivot()),
            ("BK_Degree", Self::bk_degree()),
            ("Ref++", Self::ref_pp()),
            ("Rcd++", Self::rcd_pp()),
            ("Fac++", Self::fac_pp()),
            ("VBBMC-dgn", Self::vbbmc_dgn()),
            ("HBBMC-dgn", Self::hbbmc_dgn()),
            ("HBBMC-mdg", Self::hbbmc_mdg()),
            ("RDegen+ET", Self::r_degen_et()),
            ("RRcd+ET", Self::r_rcd_et()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_hbbmc_pp() {
        assert_eq!(SolverConfig::default(), SolverConfig::hbbmc_pp());
    }

    #[test]
    fn every_preset_defaults_to_dynamic_scheduling() {
        for (name, cfg) in SolverConfig::named_presets() {
            assert_eq!(cfg.scheduler, RootScheduler::Dynamic, "{name}");
        }
        assert_eq!(RootScheduler::default(), RootScheduler::Dynamic);
    }

    #[test]
    fn hbbmc_pp_shape() {
        let c = SolverConfig::hbbmc_pp();
        assert_eq!(
            c.initial,
            InitialBranching::Edge {
                ordering: EdgeOrderingKind::Truss,
                depth: 1
            }
        );
        assert_eq!(
            c.recursion,
            RecursionStrategy::Pivoting(PivotStrategy::Classic)
        );
        assert_eq!(c.early_termination_t, 3);
        assert!(c.graph_reduction);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn hbbmc_plus_disables_only_et() {
        let pp = SolverConfig::hbbmc_pp();
        let plus = SolverConfig::hbbmc_plus();
        assert_eq!(plus.early_termination_t, 0);
        assert_eq!(plus.initial, pp.initial);
        assert_eq!(plus.graph_reduction, pp.graph_reduction);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = SolverConfig::hbbmc_pp();
        c.early_termination_t = 4;
        assert!(c.validate().is_err());
        let mut c = SolverConfig::hbbmc_pp();
        c.initial = InitialBranching::Edge {
            ordering: EdgeOrderingKind::Truss,
            depth: 0,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn baselines_have_no_et() {
        for cfg in [
            SolverConfig::r_ref(),
            SolverConfig::r_degen(),
            SolverConfig::r_rcd(),
            SolverConfig::r_fac(),
        ] {
            assert_eq!(cfg.early_termination_t, 0);
            assert!(cfg.graph_reduction);
            assert!(matches!(cfg.initial, InitialBranching::Vertex(_)));
        }
    }

    #[test]
    fn table6_variants_differ_only_in_initial_branching() {
        let pp = SolverConfig::hbbmc_pp();
        for cfg in [
            SolverConfig::vbbmc_dgn(),
            SolverConfig::hbbmc_dgn(),
            SolverConfig::hbbmc_mdg(),
        ] {
            assert_eq!(cfg.recursion, pp.recursion);
            assert_eq!(cfg.early_termination_t, pp.early_termination_t);
            assert_eq!(cfg.graph_reduction, pp.graph_reduction);
            assert_ne!(cfg.initial, pp.initial);
        }
    }

    #[test]
    fn named_presets_all_validate_and_are_distinctly_named() {
        let presets = SolverConfig::named_presets();
        let mut names: Vec<&str> = presets.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), presets.len());
        for (name, cfg) in presets {
            assert!(cfg.validate().is_ok(), "{name} must validate");
        }
    }

    #[test]
    fn et_orthogonality_presets_keep_framework_and_add_et() {
        let base = SolverConfig::r_degen();
        let et = SolverConfig::r_degen_et();
        assert_eq!(et.initial, base.initial);
        assert_eq!(et.recursion, base.recursion);
        assert_eq!(et.early_termination_t, 3);
        let et = SolverConfig::r_rcd_et();
        assert_eq!(et.recursion, RecursionStrategy::Rcd);
        assert_eq!(et.early_termination_t, 3);
    }

    #[test]
    fn preset_lookup_is_case_insensitive() {
        assert_eq!(
            SolverConfig::preset_by_name("hbbmc++").unwrap(),
            SolverConfig::hbbmc_pp()
        );
        assert_eq!(
            SolverConfig::preset_by_name("RDEGEN").unwrap(),
            SolverConfig::r_degen()
        );
        let err = SolverConfig::preset_by_name("nope").unwrap_err();
        assert!(err.to_string().contains("unknown preset"));
        assert!(err.to_string().contains("HBBMC++"));
    }

    #[test]
    fn depth_preset_sets_depth() {
        for d in 1..=3 {
            let c = SolverConfig::hbbmc_pp_depth(d);
            assert_eq!(
                c.initial,
                InitialBranching::Edge {
                    ordering: EdgeOrderingKind::Truss,
                    depth: d
                }
            );
        }
    }
}
