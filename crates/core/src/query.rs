//! The unified query engine: every solver entry point behind one plan.
//!
//! A [`Query`] is `spec × config × threads × budget`:
//!
//! * [`QuerySpec`] names *what* is asked — full enumeration, a count, the
//!   top-k largest cliques, the maximal cliques containing an **anchor**
//!   vertex set, one maximum clique, or the k-cliques of a fixed size.
//! * [`SolverConfig`] and `threads` choose *how* — any named preset, any
//!   [`RootScheduler`](crate::RootScheduler), any worker count.
//! * [`Budget`] bounds *how much* — emitted cliques, branch steps, a
//!   wall-clock deadline, or an external [`CancelToken`] — and the
//!   [`Outcome`] reports whether the result is `Complete` or `Truncated`
//!   (and why).
//!
//! Execution goes through an [`ExecSession`]: a validated, cancellable run
//! whose [`CancelToken`] can be handed to another thread *before* the session
//! starts — the admission-control primitive a serving layer needs (a server
//! cannot admit a query it can't stop). All streaming specs emit through the
//! deterministic ordered pipeline, so a truncated stream is always an exact
//! byte-prefix of the complete one, at any thread count, under any scheduler.
//!
//! # Anchored queries
//!
//! `Anchored { vertices }` returns exactly the maximal cliques containing
//! every anchor vertex — the serving primitive of local-subgraph MCE work
//! (Das et al.'s shared-memory parallel MCE, San Segundo et al.'s bit-parallel
//! enumerators). The engine seeds `R` with the anchor, builds the anchor's
//! common-neighbourhood subgraph **once** into a dense
//! local graph, and runs the configured recursion below it: any vertex that
//! could extend a clique containing the anchor is adjacent to every anchor
//! member and therefore inside that one subgraph, so no root phase is needed
//! at all. The vertices this skips are counted in
//! [`EnumerationStats::anchored_roots_skipped`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use mce_graph::{Graph, VertexId};

use crate::budget::{Budget, BudgetReporter, BudgetState, CancelToken, Outcome};
use crate::config::{ConfigError, SolverConfig};
use crate::kclique::for_each_k_clique_with_state;
use crate::parallel::{par_enumerate_ordered_with_state, EngineError};
use crate::report::{CliqueReporter, CountReporter, TopKReporter};
use crate::scratch::WorkerState;
use crate::solver::Solver;
use crate::stats::EnumerationStats;

/// What an enumeration session is asked to produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuerySpec {
    /// Stream every maximal clique (deterministic order).
    Enumerate,
    /// Count maximal cliques without streaming them.
    Count,
    /// The `k` largest maximal cliques, ranked by size with ties broken by
    /// stream order (deterministic at any thread count). Served by a
    /// dedicated sequential search that extends the branch-and-bound
    /// machinery of [`maxclique`](crate::maxclique) to top-k selection:
    /// roots and branches whose core-number / candidate-count /
    /// greedy-coloring upper bound cannot beat the current k-th retained
    /// size are pruned (reported through
    /// [`EnumerationStats::branches_pruned_by_core`](crate::EnumerationStats::branches_pruned_by_core)
    /// and
    /// [`EnumerationStats::branches_pruned_by_color`](crate::EnumerationStats::branches_pruned_by_color)),
    /// without changing the retained ranking.
    TopKBySize {
        /// How many cliques to keep.
        k: usize,
    },
    /// Stream exactly the maximal cliques containing every listed vertex.
    /// An empty anchor degenerates to [`QuerySpec::Enumerate`]; an anchor
    /// that is not a clique has no superset cliques, so the result is empty.
    Anchored {
        /// The anchor vertex set (deduplicated at session admission).
        vertices: Vec<VertexId>,
    },
    /// One maximum clique — the **canonical** one: among all maximum
    /// cliques, the one whose ascending-sorted member list is
    /// lexicographically smallest. Served by the dedicated branch-and-bound
    /// engine of [`maxclique`](crate::maxclique) (greedy lower bound,
    /// core-number and greedy-coloring pruning) rather than by full
    /// enumeration; the enumeration-riding
    /// [`MaximumCliqueReporter`](crate::MaximumCliqueReporter) extracts the
    /// byte-identical winner from any complete stream.
    MaximumClique,
    /// Stream every clique of exactly `k` vertices (not necessarily
    /// maximal), via the truss-ordered edge branching of
    /// [`kclique`](crate::kclique).
    KClique {
        /// The clique size.
        k: usize,
    },
}

/// A complete query plan: spec × solver configuration × parallelism × budget.
#[derive(Clone, Debug)]
pub struct Query {
    /// What to produce.
    pub spec: QuerySpec,
    /// How to branch (preset, scheduler, early termination, …).
    pub config: SolverConfig,
    /// Worker threads (clamped to ≥ 1; anchored, k-clique, top-k and
    /// maximum-clique specs run sequentially — the first two have no root
    /// phase to parallelise, and the bounded searches share one incumbent /
    /// retained set).
    pub threads: usize,
    /// Resource bounds of the session.
    pub budget: Budget,
}

impl Query {
    /// A single-threaded, unbudgeted query with the default configuration.
    pub fn new(spec: QuerySpec) -> Self {
        Query {
            spec,
            config: SolverConfig::default(),
            threads: 1,
            budget: Budget::unlimited(),
        }
    }

    /// Replaces the solver configuration.
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// The spec-dependent payload of a finished query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryValue {
    /// The cliques were streamed to the session's reporter
    /// (`Enumerate`, `Anchored`, `KClique`).
    Stream,
    /// The clique count (`Count`).
    Count(u64),
    /// The retained top-k cliques in ranking order (`TopKBySize`).
    TopK(Vec<Vec<VertexId>>),
    /// The canonical maximum clique, sorted ascending; empty when the graph
    /// has no vertices (`MaximumClique`). On a truncated run this is only
    /// the best clique found before the budget tripped — the outcome, not
    /// the value, says whether it is proven maximum.
    Maximum(Vec<VertexId>),
}

/// Everything a finished session reports back.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// `Complete`, or `Truncated` with the bound that tripped first.
    pub outcome: Outcome,
    /// Merged run statistics (including the new
    /// `terminated_by_budget` / `anchored_roots_skipped` counters).
    pub stats: EnumerationStats,
    /// The spec-dependent payload.
    pub value: QueryValue,
    /// Branch steps the session's budget accounting charged across all
    /// workers — the quantity [`Budget::max_steps`] bounds. Serving layers
    /// use this to charge per-client step quotas.
    pub budget_steps: u64,
}

impl QueryResult {
    /// For `MaximumClique` queries: which bound machinery ended the
    /// branch-and-bound search (color bound, core bound, budget, or plain
    /// exhaustion). Meaningful only for results produced by the
    /// [`QuerySpec::MaximumClique`] spec — other specs never populate the
    /// pruning counters and classify as
    /// [`TerminatingBound::Exhausted`](crate::maxclique::TerminatingBound).
    pub fn terminating_bound(&self) -> crate::maxclique::TerminatingBound {
        crate::maxclique::TerminatingBound::from_run(&self.stats, self.outcome)
    }
}

/// An invalid [`Query`] (bad solver configuration, out-of-range anchor
/// vertex, …), rejected at session admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryError {
    message: String,
}

impl QueryError {
    fn new(message: impl Into<String>) -> Self {
        QueryError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid query: {}", self.message)
    }
}

impl std::error::Error for QueryError {}

impl From<ConfigError> for QueryError {
    fn from(e: ConfigError) -> Self {
        QueryError::new(e.to_string())
    }
}

/// An admitted, cancellable enumeration session over one graph.
///
/// Admission ([`ExecSession::new`]) validates the whole plan up front, so a
/// serving layer can reject malformed queries before committing any work; the
/// session's [`CancelToken`] is available *before* [`ExecSession::run`] and
/// can be handed to a watchdog, a deadline timer or an admission controller.
#[derive(Debug)]
pub struct ExecSession<'g> {
    graph: &'g Graph,
    query: Query,
    /// Deduplicated anchor (empty for non-anchored specs).
    anchor: Vec<VertexId>,
    state: BudgetState,
    token: CancelToken,
}

impl<'g> ExecSession<'g> {
    /// Validates and admits a query. Fails on an invalid [`SolverConfig`] or
    /// an anchor vertex outside the graph.
    pub fn new(graph: &'g Graph, query: Query) -> Result<Self, QueryError> {
        query.config.validate()?;
        let mut anchor = Vec::new();
        if let QuerySpec::Anchored { vertices } = &query.spec {
            for &v in vertices {
                if (v as usize) >= graph.n() {
                    return Err(QueryError::new(format!(
                        "anchor vertex {v} out of range for a graph with {} vertices",
                        graph.n()
                    )));
                }
                if !anchor.contains(&v) {
                    anchor.push(v);
                }
            }
        }
        // Every worker observes the session token; if the caller supplied
        // one, share it, otherwise mint one so the session is always
        // cancellable.
        let token = query.budget.cancel.clone().unwrap_or_default();
        let budget = Budget {
            cancel: Some(token.clone()),
            ..query.budget.clone()
        };
        let state = BudgetState::new(&budget);
        Ok(ExecSession {
            graph,
            query,
            anchor,
            state,
            token,
        })
    }

    /// The session's cancellation handle; cancel it from any thread and the
    /// workers stop at their next branch step.
    pub fn cancel_token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Runs the session to its outcome, streaming any `Stream`-valued spec's
    /// cliques to `reporter` (other specs leave the reporter untouched).
    ///
    /// Panics raised by worker bodies (or by the reporter itself) are
    /// re-raised on the calling thread after the workers drained; see
    /// [`ExecSession::try_run`] for the typed-error form a serving layer
    /// should use to contain faults.
    pub fn run<R: CliqueReporter + Send + ?Sized>(self, reporter: &mut R) -> QueryResult {
        match self.try_run(reporter) {
            Ok(result) => result,
            Err(EngineError::WorkerPanic { detail }) => resume_unwind(Box::new(detail)),
            Err(EngineError::Config(e)) => {
                unreachable!("configuration validated at session admission: {e}")
            }
        }
    }

    /// [`ExecSession::run`] with typed fault containment: a panic inside a
    /// worker body or the caller's reporter is caught, the remaining workers
    /// drain cleanly, any ordered stream stops at the deterministic prefix
    /// emitted before the fault, and the session returns
    /// [`EngineError::WorkerPanic`] instead of unwinding the caller.
    pub fn try_run<R: CliqueReporter + Send + ?Sized>(
        self,
        reporter: &mut R,
    ) -> Result<QueryResult, EngineError> {
        let g = self.graph;
        let config = self.query.config;
        let threads = self.query.threads;
        let state = &self.state;
        let ordered = |out: &mut (dyn CliqueReporter + Send)| {
            par_enumerate_ordered_with_state(g, &config, threads, state, None, out)
        };
        let (stats, value) = match &self.query.spec {
            QuerySpec::Enumerate => (ordered(&mut BypassSend(reporter))?, QueryValue::Stream),
            QuerySpec::Anchored { .. } if self.anchor.is_empty() => {
                (ordered(&mut BypassSend(reporter))?, QueryValue::Stream)
            }
            QuerySpec::Anchored { .. } => {
                let anchor = &self.anchor;
                if !g.is_clique(anchor) {
                    // No clique contains a non-clique: the (complete) result
                    // is empty, and no root ever needed opening.
                    let stats = EnumerationStats {
                        anchored_roots_skipped: g.n() as u64,
                        ..EnumerationStats::default()
                    };
                    (stats, QueryValue::Stream)
                } else {
                    let solver =
                        Solver::new(g, config).expect("configuration validated at admission");
                    let mut worker = WorkerState::new();
                    let mut gated = BudgetReporter::new(reporter, state);
                    // Sequential path: the recursion (and the reporter it
                    // drives) runs on this thread, so a plain catch gives
                    // the same containment the parallel drivers provide.
                    let stats = catch_unwind(AssertUnwindSafe(|| {
                        solver.run_anchored(anchor, &mut worker, Some(state), &mut gated)
                    }))
                    .map_err(engine_panic)?;
                    (stats, QueryValue::Stream)
                }
            }
            QuerySpec::Count => {
                let mut counter = CountReporter::new();
                let stats = ordered(&mut counter)?;
                (stats, QueryValue::Count(counter.count))
            }
            QuerySpec::TopKBySize { k } => {
                // Dedicated sequential path (like the anchored and
                // maximum-clique specs): the enumeration runs with the
                // branch-and-bound pruning machinery extended to top-k — the
                // core-number bound closes roots and the candidate-count /
                // greedy-coloring bounds close branches that cannot contain
                // a clique large enough to change the retained top-k. The
                // sequential stream order equals the ordered pipeline's, so
                // the retained ranking is byte-identical to riding the full
                // enumeration through this reporter, at any thread count.
                let solver = Solver::new(g, config).expect("configuration validated at admission");
                let mut top = TopKReporter::new(*k);
                let stats = catch_unwind(AssertUnwindSafe(|| {
                    let mut worker = WorkerState::new();
                    let mut gated = BudgetReporter::new(&mut top, state);
                    solver.run_topk(*k, &mut worker, Some(state), &mut gated)
                }))
                .map_err(engine_panic)?;
                (stats, QueryValue::TopK(top.into_cliques()))
            }
            QuerySpec::MaximumClique => {
                // Dedicated branch-and-bound engine (sequential, like the
                // anchored and k-clique paths): exponentially fewer branch
                // steps than riding the full enumeration, same canonical
                // winner as MaximumCliqueReporter over a complete stream.
                let (best, stats) = catch_unwind(AssertUnwindSafe(|| {
                    let mut mc = crate::maxclique::MaxCliqueState::new();
                    crate::maxclique::solve(g, &mut mc, Some(state))
                }))
                .map_err(engine_panic)?;
                (stats, QueryValue::Maximum(best))
            }
            QuerySpec::KClique { k } => {
                let start = std::time::Instant::now();
                let aborted = catch_unwind(AssertUnwindSafe(|| {
                    for_each_k_clique_with_state(g, *k, state, &mut |clique| {
                        reporter.report(clique)
                    })
                }))
                .map_err(engine_panic)?;
                let stats = EnumerationStats {
                    recursive_calls: state.steps_taken(),
                    terminated_by_budget: aborted,
                    elapsed: start.elapsed(),
                    busy_time: start.elapsed(),
                    ..EnumerationStats::default()
                };
                (stats, QueryValue::Stream)
            }
        };
        let outcome = self.state.outcome();
        let mut stats = stats;
        if outcome.is_truncated() && stats.terminated_by_budget == 0 {
            // The budget tripped between branching frames (between root
            // ranks, or at the output gate after the last frame finished):
            // no individual frame was abandoned, so charge the session
            // itself. Truncated runs therefore always report >= 1.
            stats.terminated_by_budget = 1;
        }
        Ok(QueryResult {
            outcome,
            stats,
            value,
            budget_steps: self.state.steps_taken(),
        })
    }
}

/// Converts a caught panic payload into [`EngineError::WorkerPanic`].
fn engine_panic(payload: Box<dyn std::any::Any + Send>) -> EngineError {
    let detail = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    EngineError::WorkerPanic { detail }
}

/// `&mut R` where `R: Send` is itself `Send`; this shim re-borrows the
/// caller's reporter as a concrete `Send` type so one closure can drive the
/// ordered pipeline for every spec.
struct BypassSend<'a, R: CliqueReporter + Send + ?Sized>(&'a mut R);

impl<R: CliqueReporter + Send + ?Sized> CliqueReporter for BypassSend<'_, R> {
    fn report(&mut self, clique: &[VertexId]) {
        self.0.report(clique);
    }
}

/// Admits and runs `query` in one call; see [`ExecSession`] for the
/// two-phase (admit, then run) form that exposes the cancel token first.
pub fn run_query<R: CliqueReporter + Send + ?Sized>(
    g: &Graph,
    query: Query,
    reporter: &mut R,
) -> Result<QueryResult, QueryError> {
    Ok(ExecSession::new(g, query)?.run(reporter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::TruncationReason;
    use crate::naive::naive_maximal_cliques;
    use crate::report::{CliqueLineFormat, CollectReporter, WriterReporter};
    use crate::RootScheduler;

    fn test_graph() -> Graph {
        // Two overlapping communities plus sparse periphery (same shape the
        // parallel tests use).
        Graph::from_edges(
            12,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (6, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (9, 11),
            ],
        )
        .unwrap()
    }

    /// Reference for anchored queries: enumerate everything, filter by
    /// anchor containment.
    fn naive_filter(g: &Graph, anchor: &[VertexId]) -> Vec<Vec<VertexId>> {
        naive_maximal_cliques(g)
            .into_iter()
            .filter(|c| anchor.iter().all(|v| c.contains(v)))
            .collect()
    }

    fn ordered_text_bytes(g: &Graph, query: Query) -> (Vec<u8>, QueryResult) {
        let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
        let result = run_query(g, query, &mut reporter).expect("valid query");
        (reporter.finish().unwrap(), result)
    }

    #[test]
    fn enumerate_spec_matches_plain_ordered_stream() {
        let g = test_graph();
        let (bytes, result) = ordered_text_bytes(&g, Query::new(QuerySpec::Enumerate));
        let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
        crate::par_enumerate_ordered(&g, &SolverConfig::default(), 1, &mut reporter).unwrap();
        assert_eq!(bytes, reporter.finish().unwrap());
        assert_eq!(result.outcome, Outcome::Complete);
        assert_eq!(result.value, QueryValue::Stream);
        assert_eq!(result.stats.terminated_by_budget, 0);
    }

    #[test]
    fn count_spec_returns_the_total() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g).len() as u64;
        let mut sink = CountReporter::new();
        let result = run_query(&g, Query::new(QuerySpec::Count), &mut sink).unwrap();
        assert_eq!(result.value, QueryValue::Count(expected));
        assert_eq!(
            sink.count, 0,
            "Count leaves the caller's reporter untouched"
        );
        assert_eq!(result.outcome, Outcome::Complete);
    }

    #[test]
    fn clique_limit_emits_exactly_the_prefix() {
        let g = test_graph();
        let (full, _) = ordered_text_bytes(&g, Query::new(QuerySpec::Enumerate));
        let total = full.iter().filter(|&&b| b == b'\n').count();
        assert!(total > 3);
        for threads in [1usize, 2, 4] {
            for scheduler in [
                RootScheduler::Dynamic,
                RootScheduler::Static,
                RootScheduler::Splitting,
            ] {
                let cfg = SolverConfig {
                    scheduler,
                    ..SolverConfig::default()
                };
                let query = Query::new(QuerySpec::Enumerate)
                    .with_config(cfg)
                    .with_threads(threads)
                    .with_budget(Budget::cliques(3));
                let (bytes, result) = ordered_text_bytes(&g, query);
                let prefix_end = full
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .nth(2)
                    .map(|(i, _)| i + 1)
                    .unwrap();
                assert_eq!(
                    bytes,
                    &full[..prefix_end],
                    "{scheduler:?} x{threads}: first 3 cliques exactly"
                );
                assert_eq!(
                    result.outcome,
                    Outcome::Truncated {
                        reason: TruncationReason::CliqueLimit
                    }
                );
            }
        }
    }

    #[test]
    fn clique_limit_at_total_is_complete() {
        let g = test_graph();
        let (full, _) = ordered_text_bytes(&g, Query::new(QuerySpec::Enumerate));
        let total = full.iter().filter(|&&b| b == b'\n').count() as u64;
        let query = Query::new(QuerySpec::Enumerate).with_budget(Budget::cliques(total));
        let (bytes, result) = ordered_text_bytes(&g, query);
        assert_eq!(bytes, full);
        assert_eq!(result.outcome, Outcome::Complete);
    }

    #[test]
    fn step_limit_truncates_to_a_byte_prefix() {
        let g = test_graph();
        let (full, _) = ordered_text_bytes(&g, Query::new(QuerySpec::Enumerate));
        for max_steps in [0u64, 1, 2, 5, 10] {
            for threads in [1usize, 3] {
                let query = Query::new(QuerySpec::Enumerate)
                    .with_threads(threads)
                    .with_budget(Budget::steps(max_steps));
                let (bytes, result) = ordered_text_bytes(&g, query);
                assert_eq!(
                    &full[..bytes.len()],
                    &bytes[..],
                    "steps={max_steps} x{threads}: prefix"
                );
                if result.outcome == Outcome::Complete {
                    assert_eq!(bytes, full, "complete runs must emit everything");
                } else {
                    assert!(result.stats.terminated_by_budget > 0);
                }
            }
        }
    }

    #[test]
    fn cancelled_before_start_emits_at_most_static_output() {
        let g = test_graph();
        let token = CancelToken::new();
        token.cancel();
        let query = Query::new(QuerySpec::Enumerate)
            .with_threads(4)
            .with_budget(Budget::unlimited().with_cancel(token));
        let (bytes, result) = ordered_text_bytes(&g, query);
        let (full, _) = ordered_text_bytes(&g, Query::new(QuerySpec::Enumerate));
        assert_eq!(&full[..bytes.len()], &bytes[..], "still a prefix");
        assert_eq!(
            result.outcome,
            Outcome::Truncated {
                reason: TruncationReason::Cancelled
            }
        );
    }

    #[test]
    fn session_token_cancels_without_a_caller_token() {
        let g = test_graph();
        let session = ExecSession::new(&g, Query::new(QuerySpec::Count)).unwrap();
        let token = session.cancel_token();
        token.cancel();
        let mut sink = CountReporter::new();
        let result = session.run(&mut sink);
        assert!(result.outcome.is_truncated());
    }

    #[test]
    fn anchored_matches_naive_filter() {
        let g = test_graph();
        for anchor in [
            vec![0u32],
            vec![3],
            vec![0, 1],
            vec![2, 3],
            vec![0, 1, 2],
            vec![9, 10, 11],
            vec![4],
        ] {
            let mut collector = CollectReporter::new();
            let result = run_query(
                &g,
                Query::new(QuerySpec::Anchored {
                    vertices: anchor.clone(),
                }),
                &mut collector,
            )
            .unwrap();
            assert_eq!(result.outcome, Outcome::Complete);
            assert_eq!(
                collector.into_sorted(),
                naive_filter(&g, &anchor),
                "anchor {anchor:?}"
            );
        }
    }

    #[test]
    fn anchored_skips_roots_and_counts_them() {
        let g = test_graph();
        let mut collector = CollectReporter::new();
        let result = run_query(
            &g,
            Query::new(QuerySpec::Anchored { vertices: vec![0] }),
            &mut collector,
        )
        .unwrap();
        // Anchor 0's neighbourhood is {1, 2, 3}: 12 - 1 - 3 = 8 skipped.
        assert_eq!(result.stats.anchored_roots_skipped, 8);
        assert_eq!(result.stats.initial_branches, 1);
    }

    #[test]
    fn anchored_non_clique_anchor_is_empty_and_complete() {
        let g = test_graph();
        let mut collector = CollectReporter::new();
        // 0 and 4 are not adjacent.
        let result = run_query(
            &g,
            Query::new(QuerySpec::Anchored {
                vertices: vec![0, 4],
            }),
            &mut collector,
        )
        .unwrap();
        assert!(collector.cliques.is_empty());
        assert_eq!(result.outcome, Outcome::Complete);
        assert_eq!(result.stats.anchored_roots_skipped, g.n() as u64);
    }

    #[test]
    fn anchored_empty_anchor_is_full_enumeration() {
        let g = test_graph();
        let mut collector = CollectReporter::new();
        run_query(
            &g,
            Query::new(QuerySpec::Anchored { vertices: vec![] }),
            &mut collector,
        )
        .unwrap();
        assert_eq!(collector.into_sorted(), naive_maximal_cliques(&g));
    }

    #[test]
    fn anchored_duplicate_vertices_are_deduplicated() {
        let g = test_graph();
        let mut collector = CollectReporter::new();
        run_query(
            &g,
            Query::new(QuerySpec::Anchored {
                vertices: vec![3, 3, 0, 3],
            }),
            &mut collector,
        )
        .unwrap();
        assert_eq!(collector.into_sorted(), naive_filter(&g, &[0, 3]));
    }

    #[test]
    fn anchored_out_of_range_vertex_is_rejected_at_admission() {
        let g = test_graph();
        let err = ExecSession::new(&g, Query::new(QuerySpec::Anchored { vertices: vec![99] }))
            .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn anchored_respects_every_preset() {
        let g = test_graph();
        let expected = naive_filter(&g, &[3]);
        for (name, config) in SolverConfig::named_presets() {
            let mut collector = CollectReporter::new();
            run_query(
                &g,
                Query::new(QuerySpec::Anchored { vertices: vec![3] }).with_config(config),
                &mut collector,
            )
            .unwrap();
            assert_eq!(collector.into_sorted(), expected, "{name}");
        }
    }

    #[test]
    fn anchored_budget_truncates_stream() {
        let g = test_graph();
        let mut collector = CollectReporter::new();
        let full = naive_filter(&g, &[3]);
        assert!(full.len() >= 2);
        let result = run_query(
            &g,
            Query::new(QuerySpec::Anchored { vertices: vec![3] }).with_budget(Budget::cliques(1)),
            &mut collector,
        )
        .unwrap();
        assert_eq!(collector.cliques.len(), 1);
        assert!(result.outcome.is_truncated());
    }

    #[test]
    fn top_k_ranks_by_size_then_stream_order() {
        let g = test_graph();
        let mut sink = CountReporter::new();
        let result = run_query(&g, Query::new(QuerySpec::TopKBySize { k: 2 }), &mut sink).unwrap();
        let QueryValue::TopK(top) = result.value else {
            panic!("expected TopK value");
        };
        assert_eq!(top.len(), 2);
        assert!(top[0].len() >= top[1].len());
        assert_eq!(top[0].len(), 4, "the 4-clique {{0,1,2,3}} ranks first");
    }

    #[test]
    fn maximum_clique_spec_finds_the_largest() {
        let g = test_graph();
        let mut sink = CountReporter::new();
        let result = run_query(&g, Query::new(QuerySpec::MaximumClique), &mut sink).unwrap();
        assert_eq!(
            result.value,
            QueryValue::Maximum(vec![0, 1, 2, 3]),
            "the maximum clique"
        );
    }

    #[test]
    fn maximum_clique_agrees_with_enumeration_reporter() {
        let g = test_graph();
        let mut enumerated = crate::report::MaximumCliqueReporter::new();
        run_query(&g, Query::new(QuerySpec::Enumerate), &mut enumerated).unwrap();
        let mut sink = CountReporter::new();
        let result = run_query(&g, Query::new(QuerySpec::MaximumClique), &mut sink).unwrap();
        assert_eq!(result.value, QueryValue::Maximum(enumerated.best));
        assert_eq!(result.outcome, Outcome::Complete);
        assert_ne!(
            result.terminating_bound(),
            crate::maxclique::TerminatingBound::Budget
        );
    }

    #[test]
    fn maximum_clique_budget_truncates_without_claiming_optimality() {
        // Moon–Moser K_{3,3,3,3}: every vertex has core number 9, so the
        // core bound prunes nothing and the search must open branch loops —
        // steps(0) is guaranteed to charge (and trip) a budget step. On
        // easier graphs the bounds close the whole search without ever
        // charging one, which is precisely the engine's point.
        let mut edges = Vec::new();
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(12, edges).unwrap();
        let mut sink = CountReporter::new();
        let result = run_query(
            &g,
            Query::new(QuerySpec::MaximumClique).with_budget(Budget::steps(0)),
            &mut sink,
        )
        .unwrap();
        assert_eq!(
            result.outcome,
            Outcome::Truncated {
                reason: TruncationReason::StepLimit
            }
        );
        assert!(result.stats.terminated_by_budget >= 1);
        assert_eq!(
            result.terminating_bound(),
            crate::maxclique::TerminatingBound::Budget
        );
        // The greedy lower-bound clique is still returned as best-so-far.
        let QueryValue::Maximum(best) = result.value else {
            panic!("expected Maximum value");
        };
        assert!(!best.is_empty());
        assert!(g.is_clique(&best));
    }

    #[test]
    fn top1_size_floor_matches_unfloored_selection() {
        let g = test_graph();
        let mut sink = CountReporter::new();
        let result = run_query(&g, Query::new(QuerySpec::TopKBySize { k: 1 }), &mut sink).unwrap();
        let QueryValue::TopK(top) = result.value else {
            panic!("expected TopK value");
        };
        assert_eq!(top, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn kclique_spec_streams_and_respects_the_cap() {
        let g = test_graph();
        let mut collector = CollectReporter::new();
        let result =
            run_query(&g, Query::new(QuerySpec::KClique { k: 3 }), &mut collector).unwrap();
        assert_eq!(result.outcome, Outcome::Complete);
        let all = collector.into_sorted();
        assert_eq!(all.len() as u64, crate::count_k_cliques(&g, 3));
        let mut capped = CollectReporter::new();
        let result = run_query(
            &g,
            Query::new(QuerySpec::KClique { k: 3 }).with_budget(Budget::cliques(2)),
            &mut capped,
        )
        .unwrap();
        assert_eq!(capped.cliques.len(), 2);
        assert!(result.outcome.is_truncated());
    }

    #[test]
    fn truncated_outcomes_always_report_budget_termination() {
        // Regression: non-streaming specs (Count, TopKBySize) and the
        // k-clique path used to report `terminated_by_budget == 0` on
        // truncated runs (the k-clique arm fabricated default stats; higher
        // thread counts could trip the budget between root ranks without
        // abandoning a frame). Every truncated outcome must now report >= 1.
        //
        // Moon–Moser K_{3,3,3,3}: no vertex neighbourhood is a clique, so
        // graph reduction removes nothing and the branching loops (the
        // step-gated work) always run — steps(0) is guaranteed to truncate.
        // The top-k case asks for more cliques than the graph has (k = 100):
        // the size bound then never activates, so its branching loops run
        // like the others'. (A small k can legitimately COMPLETE under
        // steps(0) now — the core/coloring bounds close every branch before
        // any step-gated work runs; see
        // top_k_small_k_completes_under_zero_step_budget.)
        let mut edges = Vec::new();
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(12, edges).unwrap();
        for threads in [1usize, 3] {
            for (label, spec) in [
                ("count", QuerySpec::Count),
                ("topk", QuerySpec::TopKBySize { k: 100 }),
                ("kclique", QuerySpec::KClique { k: 3 }),
            ] {
                let mut sink = CountReporter::new();
                let result = run_query(
                    &g,
                    Query::new(spec)
                        .with_threads(threads)
                        .with_budget(Budget::steps(0)),
                    &mut sink,
                )
                .unwrap();
                assert_eq!(
                    result.outcome,
                    Outcome::Truncated {
                        reason: TruncationReason::StepLimit
                    },
                    "{label} x{threads}"
                );
                assert!(
                    result.stats.terminated_by_budget > 0,
                    "{label} x{threads}: truncated run reported 0 budget-terminated"
                );
                assert!(
                    result.budget_steps > 0,
                    "{label} x{threads}: a step tripped the bound, so >= 1 was charged"
                );
            }
        }
    }

    #[test]
    fn top_k_small_k_completes_under_zero_step_budget() {
        // The flip side of truncated_outcomes_always_report_budget_termination:
        // on Moon–Moser K_{3,3,3,3} with a small k, the early-termination
        // emitter serves the first root without charging a step and the
        // coloring bound then closes every other root — the whole query
        // completes without any step-gated work, even under steps(0).
        let mut edges = Vec::new();
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(12, edges).unwrap();
        let mut sink = CountReporter::new();
        let unbudgeted =
            run_query(&g, Query::new(QuerySpec::TopKBySize { k: 3 }), &mut sink).unwrap();
        let result = run_query(
            &g,
            Query::new(QuerySpec::TopKBySize { k: 3 }).with_budget(Budget::steps(0)),
            &mut sink,
        )
        .unwrap();
        assert_eq!(result.outcome, Outcome::Complete);
        assert_eq!(result.value, unbudgeted.value);
        assert!(
            result.stats.branches_pruned_by_color > 0 || result.stats.branches_pruned_by_core > 0,
            "the bounds, not brute force, closed the search"
        );
    }

    #[test]
    fn top_k_bounds_match_enumeration_riding_selection() {
        // The pruned top-k path must retain exactly what a TopKReporter
        // riding the full ordered enumeration retains — same cliques, same
        // ranking — for every preset and for k values below, at and above
        // the number of maximal cliques, while evaluating no more branches.
        let g = test_graph();
        for (name, config) in SolverConfig::named_presets() {
            for k in [1usize, 2, 3, 5, 64] {
                let mut riding = TopKReporter::new(k);
                let full = run_query(
                    &g,
                    Query::new(QuerySpec::Enumerate).with_config(config),
                    &mut riding,
                )
                .unwrap();
                let mut sink = CountReporter::new();
                let result = run_query(
                    &g,
                    Query::new(QuerySpec::TopKBySize { k }).with_config(config),
                    &mut sink,
                )
                .unwrap();
                assert_eq!(
                    result.value,
                    QueryValue::TopK(riding.into_cliques()),
                    "{name} k={k}"
                );
                assert!(
                    result.stats.recursive_calls <= full.stats.recursive_calls,
                    "{name} k={k}: bounded run opened more branches ({} > {})",
                    result.stats.recursive_calls,
                    full.stats.recursive_calls,
                );
            }
        }
    }

    #[test]
    fn kclique_truncated_stats_are_populated() {
        let g = test_graph();
        let mut collector = CollectReporter::new();
        let result = run_query(
            &g,
            Query::new(QuerySpec::KClique { k: 3 }).with_budget(Budget::steps(2)),
            &mut collector,
        )
        .unwrap();
        assert!(result.outcome.is_truncated());
        assert!(result.stats.terminated_by_budget > 0);
        assert!(result.stats.recursive_calls > 0);
    }

    #[test]
    fn deadline_budget_truncates_with_the_deadline_reason() {
        let g = test_graph();
        let (full, _) = ordered_text_bytes(&g, Query::new(QuerySpec::Enumerate));
        for threads in [1usize, 4] {
            let query = Query::new(QuerySpec::Enumerate)
                .with_threads(threads)
                .with_budget(Budget::within(std::time::Duration::ZERO));
            let (bytes, result) = ordered_text_bytes(&g, query);
            assert_eq!(
                result.outcome,
                Outcome::Truncated {
                    reason: TruncationReason::DeadlineExceeded
                },
                "x{threads}"
            );
            assert!(result.stats.terminated_by_budget >= 1);
            assert_eq!(&full[..bytes.len()], &bytes[..], "x{threads}: byte-prefix");
        }
    }

    #[test]
    fn generous_deadline_runs_to_completion() {
        let g = test_graph();
        let query = Query::new(QuerySpec::Count)
            .with_budget(Budget::within(std::time::Duration::from_secs(3600)));
        let mut sink = CountReporter::new();
        let result = run_query(&g, query, &mut sink).unwrap();
        assert_eq!(result.outcome, Outcome::Complete);
    }

    /// Panics on the first report — the fault-injection reporter.
    struct PanickingReporter;

    impl CliqueReporter for PanickingReporter {
        fn report(&mut self, _clique: &[VertexId]) {
            panic!("injected session fault");
        }
    }

    #[test]
    fn try_run_contains_worker_panics_as_typed_errors() {
        let g = test_graph();
        for threads in [1usize, 4] {
            let session =
                ExecSession::new(&g, Query::new(QuerySpec::Enumerate).with_threads(threads))
                    .unwrap();
            let err = session.try_run(&mut PanickingReporter).unwrap_err();
            match err {
                EngineError::WorkerPanic { detail } => {
                    assert_eq!(detail, "injected session fault", "x{threads}")
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_run_contains_anchored_and_kclique_panics() {
        let g = test_graph();
        for spec in [
            QuerySpec::Anchored { vertices: vec![3] },
            QuerySpec::KClique { k: 2 },
        ] {
            let session = ExecSession::new(&g, Query::new(spec.clone())).unwrap();
            let err = session.try_run(&mut PanickingReporter).unwrap_err();
            assert!(
                matches!(err, EngineError::WorkerPanic { .. }),
                "{spec:?}: {err:?}"
            );
        }
    }

    #[test]
    fn run_reraises_contained_panics() {
        let g = test_graph();
        let session = ExecSession::new(&g, Query::new(QuerySpec::Enumerate)).unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            session.run(&mut PanickingReporter);
        }));
        let payload = caught.expect_err("the fault must re-raise");
        assert_eq!(
            payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .unwrap_or_default(),
            "injected session fault"
        );
    }

    #[test]
    fn invalid_config_is_rejected_at_admission() {
        let g = test_graph();
        let cfg = SolverConfig {
            early_termination_t: 9,
            ..SolverConfig::default()
        };
        let err = ExecSession::new(&g, Query::new(QuerySpec::Count).with_config(cfg)).unwrap_err();
        assert!(err.to_string().contains("invalid query"));
    }
}
