//! Parallel enumeration: pulling schedulers over root branches and the
//! splitting scheduler's shared task pool with mid-branch work donation.
//!
//! The paper's algorithms are sequential, but its root branching step (Eq. 1 /
//! Eq. 2) produces a large number of independent branches, which is exactly
//! the structure that shared-memory parallel MCE implementations exploit.
//! This module wires those branches to `std::thread::scope` scoped threads:
//!
//! * The graph reduction and root ordering are computed **once** into a
//!   shared [`RootPlan`](crate::solver) — previously every worker redid the
//!   `O(δm)` preprocessing, which dominated multi-threaded runs.
//! * Under the default [`RootScheduler::Dynamic`] policy, workers *pull*
//!   chunks of root ranks from a shared atomic counter as they drain their
//!   previous chunk. [`RootScheduler::Static`] retains fixed `rank % threads`
//!   striping for deterministic per-worker assignment.
//! * Each worker owns a private scratch arena
//!   ([`EnumerationState`](crate::EnumerationState)-equivalent), so the
//!   recursion allocates nothing in steady state, and per-worker results are
//!   returned from the scoped threads' `JoinHandle`s and merged at join — no
//!   shared `Mutex` collection.
//!
//! # The task-pool protocol of [`RootScheduler::Splitting`]
//!
//! Both pulling policies are bounded below by the **largest root branch**:
//! real clique workloads are heavily skewed, so once the rank queue drains,
//! whoever holds the biggest subtree finishes alone while the other workers
//! idle. The splitting scheduler removes that bound with mid-branch work
//! donation (in the spirit of Das et al.'s dynamic sub-branch distribution
//! and Almasri et al.'s GPU worker-list donation):
//!
//! 1. **Claiming.** Root ranks are pre-grouped into per-connected-component
//!    chunks (components never share a clique, so each is an independent
//!    shard); workers claim chunks — or donated tasks, which take priority —
//!    from a shared `TaskPool` (the crate-private `pool` module) built on
//!    `Mutex` + `Condvar` only.
//! 2. **Donation.** A worker that has run at least a threshold of branch
//!    steps inside its current chunk checks a relaxed atomic: are any peers
//!    starving? If so it packages the unexplored sibling candidates of its
//!    *shallowest* splittable frame — the `R` prefix, the `(C, X)` bitsets,
//!    the remaining branch list and a snapshot of the root's local graph —
//!    into a self-contained `BranchTask` and pushes it to the pool. The
//!    donated loop stops once its in-flight child returns.
//! 3. **Stealing.** A starving worker wakes, pops the task and resumes it
//!    through the same allocation-free recursion; stolen tasks can be split
//!    again, so even a single giant root spreads over every idle worker.
//! 4. **Sequencing.** For [`par_enumerate_ordered`], every task carries a
//!    `(root_rank, SeqKey)` pair. The rank orders output coarsely; the key
//!    linearises the donation tree within a rank (the `pool` module docs
//!    derive why lexicographic key order equals the sequential emission
//!    order). The sequencer holds a rank's parts until
//!    the rank is *complete* — donations are registered with the sequencer
//!    before the task enters the pool, so "parts received = 1 + donations
//!    registered" is an exact completeness test — then emits them in key
//!    order. The output stream is therefore byte-identical to the
//!    sequential one at any thread count, under any scheduler.
//!
//! Backpressure: the pulling schedulers park at most `SEQUENCER_BUFFER_CAP`
//! (2¹⁶) out-of-order cliques (later depositors wait for the stream head).
//! Splitting deposits never wait — a blocked depositor
//! could be the only worker able to execute the stream head's stolen tasks —
//! so ordered splitting runs trade the hard buffer bound for progress
//! (donated work is claimed FIFO, which keeps buffering close to the head).

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Instant;

use mce_graph::{GraphTopology, VertexId};

use crate::budget::{Budget, BudgetReporter, BudgetState, Outcome};
use crate::config::{ConfigError, RootScheduler, SolverConfig};
use crate::pool::{BranchTask, DonationSink, PoolConfig, PoolWork, SeqKey, TaskPool};
use crate::report::{CliqueReporter, CollectReporter, CountReporter};
use crate::scratch::WorkerState;
use crate::solver::{RootPlan, Solver};
use crate::stats::EnumerationStats;

/// Ranks per atomic-counter claim of the pulling scheduler. Small enough to
/// balance skewed roots, large enough to keep counter contention negligible.
const CHUNK: usize = 16;

// ----------------------------------------------------------------------
// Fault containment
// ----------------------------------------------------------------------

/// A typed failure of a parallel enumeration run.
///
/// The ordered drivers catch panics raised inside worker bodies (including
/// panics thrown by the caller's [`CliqueReporter`]): the first fault is
/// recorded, the sibling workers drain their remaining work without
/// executing it, the ordered stream stops at the deterministic prefix
/// emitted before the fault, and the run returns
/// [`EngineError::WorkerPanic`] instead of hanging the scope or poisoning
/// its locks.
#[derive(Debug)]
pub enum EngineError {
    /// The solver configuration was rejected at validation.
    Config(ConfigError),
    /// A worker thread (or the reporter it drove) panicked mid-run.
    WorkerPanic {
        /// The panic payload, stringified (`&str` / `String` payloads are
        /// carried verbatim).
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => e.fmt(f),
            EngineError::WorkerPanic { detail } => {
                write!(f, "enumeration worker panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::WorkerPanic { .. } => None,
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

/// Stringifies a panic payload (the common `&str` / `String` cases verbatim).
fn panic_detail(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// First-fault-wins panic collector shared by a worker fleet. Poison
/// recovery everywhere: a fault cell must stay usable precisely when
/// something already went wrong.
struct FaultCell(Mutex<Option<String>>);

impl FaultCell {
    fn new() -> Self {
        FaultCell(Mutex::new(None))
    }

    fn record(&self, detail: String) {
        let mut slot = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(detail);
        }
    }

    fn record_payload(&self, payload: Box<dyn Any + Send>) {
        self.record(panic_detail(payload.as_ref()));
    }

    fn is_set(&self) -> bool {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }

    fn take(&self) -> Option<String> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// An iterator handing out root ranks from a shared atomic counter in chunks.
struct StealingRanks<'a> {
    next_rank: &'a AtomicUsize,
    total: usize,
    current: usize,
    end: usize,
}

impl<'a> StealingRanks<'a> {
    fn new(next_rank: &'a AtomicUsize, total: usize) -> Self {
        StealingRanks {
            next_rank,
            total,
            current: 0,
            end: 0,
        }
    }
}

impl Iterator for StealingRanks<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.current == self.end {
            let start = self.next_rank.fetch_add(CHUNK, Ordering::Relaxed);
            if start >= self.total {
                return None;
            }
            self.current = start;
            self.end = (start + CHUNK).min(self.total);
        }
        let rank = self.current;
        self.current += 1;
        Some(rank)
    }
}

// ----------------------------------------------------------------------
// Progress observation
// ----------------------------------------------------------------------

/// Live counters of an in-flight enumeration, safe to poll from a monitoring
/// thread (e.g. the CLI's `--progress` reporter). All counters are updated
/// with relaxed atomics; they are informational and never synchronise the
/// enumeration itself.
#[derive(Debug, Default)]
pub struct ProgressCounters {
    /// Total number of root branches of the run (set once at startup).
    pub total_roots: AtomicU64,
    /// Root branches fully processed so far.
    pub roots_done: AtomicU64,
    /// Maximal cliques discovered so far (counted at discovery, which may
    /// run ahead of the ordered output stream).
    pub cliques_found: AtomicU64,
    /// Sub-branch tasks donated by the splitting scheduler so far.
    pub splits: AtomicU64,
}

impl ProgressCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Worker-side view of the optional progress counters.
#[derive(Clone, Copy)]
struct ProgressHook<'a>(Option<&'a ProgressCounters>);

impl ProgressHook<'_> {
    fn root_done(&self) {
        if let Some(p) = self.0 {
            p.roots_done.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn cliques(&self, cliques: u64) {
        if let Some(p) = self.0 {
            p.cliques_found.fetch_add(cliques, Ordering::Relaxed);
        }
    }

    fn split(&self) {
        if let Some(p) = self.0 {
            p.splits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Pass-through reporter that counts every clique into the progress hook at
/// discovery time (so `--progress` style monitors tick even while one giant
/// root branch is still in flight).
struct CountingReporter<'a, R: CliqueReporter + ?Sized> {
    inner: &'a mut R,
    hook: ProgressHook<'a>,
}

impl<R: CliqueReporter + ?Sized> CliqueReporter for CountingReporter<'_, R> {
    fn report(&mut self, clique: &[VertexId]) {
        self.hook.cliques(1);
        self.inner.report(clique);
    }
}

// ----------------------------------------------------------------------
// Unordered drivers
// ----------------------------------------------------------------------

/// Runs `threads` workers over the shared plan, streaming cliques to the
/// per-worker reporters produced by `make_reporter`, and returns the
/// `(reporter, stats)` pairs collected from the join handles.
fn run_workers<G, R, F>(
    solver: &Solver<'_, G>,
    plan: &RootPlan,
    threads: usize,
    make_reporter: F,
) -> Vec<(R, EnumerationStats)>
where
    G: GraphTopology + Sync,
    R: CliqueReporter + Send,
    F: Fn() -> R + Sync,
{
    match solver.config().scheduler {
        RootScheduler::Splitting => {
            run_workers_splitting(solver, plan, threads, PoolConfig::default(), make_reporter)
        }
        RootScheduler::Dynamic | RootScheduler::Static => {
            run_workers_pulling(solver, plan, threads, make_reporter)
        }
    }
}

/// The pulling-scheduler worker fleet (dynamic atomic-counter chunks or
/// static striping).
///
/// Panic containment: a panicking worker records the first fault and exits;
/// its siblings finish their own ranks and the fleet re-raises the fault
/// *after* every thread has joined, so the scope never deadlocks and no lock
/// is poisoned. (The ordered drivers go further and return a typed
/// [`EngineError`]; the unordered fleets have no partial result worth
/// salvaging.)
fn run_workers_pulling<G, R, F>(
    solver: &Solver<'_, G>,
    plan: &RootPlan,
    threads: usize,
    make_reporter: F,
) -> Vec<(R, EnumerationStats)>
where
    G: GraphTopology + Sync,
    R: CliqueReporter + Send,
    F: Fn() -> R + Sync,
{
    let scheduler = solver.config().scheduler;
    let total = plan.root_count();
    let next_rank = AtomicUsize::new(0);
    let fault = FaultCell::new();

    let results: Vec<Option<(R, EnumerationStats)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker_id| {
                let next_rank = &next_rank;
                let make_reporter = &make_reporter;
                let fault = &fault;
                scope.spawn(move || {
                    let mut reporter = make_reporter();
                    let mut state = WorkerState::new();
                    let run = catch_unwind(AssertUnwindSafe(|| match scheduler {
                        RootScheduler::Static => solver.run_on_plan(
                            plan,
                            (worker_id..total).step_by(threads),
                            worker_id == 0,
                            &mut state,
                            None,
                            &mut reporter,
                        ),
                        _ => solver.run_on_plan(
                            plan,
                            StealingRanks::new(next_rank, total),
                            worker_id == 0,
                            &mut state,
                            None,
                            &mut reporter,
                        ),
                    }));
                    match run {
                        Ok(stats) => Some((reporter, stats)),
                        Err(payload) => {
                            fault.record_payload(payload);
                            None
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    fault.record_payload(payload);
                    None
                })
            })
            .collect()
    });
    if let Some(detail) = fault.take() {
        resume_unwind(Box::new(detail));
    }
    results.into_iter().flatten().collect()
}

/// The splitting-scheduler worker fleet: claim component chunks or donated
/// tasks from the shared pool until it drains.
fn run_workers_splitting<G, R, F>(
    solver: &Solver<'_, G>,
    plan: &RootPlan,
    threads: usize,
    pool_config: PoolConfig,
    make_reporter: F,
) -> Vec<(R, EnumerationStats)>
where
    G: GraphTopology + Sync,
    R: CliqueReporter + Send,
    F: Fn() -> R + Sync,
{
    let shards = plan
        .shards
        .as_ref()
        .expect("splitting plan carries component shards");
    let pool = TaskPool::new(shards.chunk_count(), pool_config);
    let fault = FaultCell::new();

    let results: Vec<Option<(R, EnumerationStats)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker_id| {
                let pool = &pool;
                let make_reporter = &make_reporter;
                let fault = &fault;
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut reporter = make_reporter();
                    let mut state = WorkerState::new();
                    let mut stats = EnumerationStats::default();
                    if worker_id == 0 {
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            solver.run_on_plan(
                                plan,
                                std::iter::empty(),
                                true,
                                &mut state,
                                None,
                                &mut reporter,
                            )
                        }));
                        match run {
                            Ok(s) => stats.merge(&s),
                            Err(payload) => fault.record_payload(payload),
                        }
                    }
                    // Every claimed item is completed even when its body
                    // panics — a claimed-but-never-completed item would keep
                    // the pool "active" forever and hang every sibling's
                    // `claim()`. After a fault the pool still drains (items
                    // are claimed and dropped unexecuted) so termination
                    // detection stays exact.
                    while let Some(work) = pool.claim() {
                        if fault.is_set() {
                            pool.complete();
                            continue;
                        }
                        let run = catch_unwind(AssertUnwindSafe(|| match work {
                            PoolWork::Chunk(chunk) => solver.run_ranks_donating(
                                plan,
                                shards.chunk(chunk),
                                &mut state,
                                pool,
                                None,
                                &mut reporter,
                            ),
                            PoolWork::Task(task) => {
                                solver.run_branch_task(*task, &mut state, pool, None, &mut reporter)
                            }
                        }));
                        pool.complete();
                        match run {
                            Ok(s) => stats.merge(&s),
                            Err(payload) => {
                                fault.record_payload(payload);
                                break;
                            }
                        }
                    }
                    // `merge` summed per-item busy time but took the max of
                    // per-item wall times; the worker's wall time is the
                    // whole claim loop.
                    stats.elapsed = start.elapsed();
                    Some((reporter, stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    fault.record_payload(payload);
                    None
                })
            })
            .collect()
    });
    if let Some(detail) = fault.take() {
        resume_unwind(Box::new(detail));
    }
    results.into_iter().flatten().collect()
}

/// Counts maximal cliques using `threads` workers. Returns the total count and
/// the merged statistics (wall time is the maximum over workers).
pub fn par_count_maximal_cliques<G: GraphTopology + Sync>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
) -> (u64, EnumerationStats) {
    let (total, merged, _) = par_count_with_worker_stats(g, config, threads);
    (total, merged)
}

/// [`par_count_maximal_cliques`] that additionally returns each worker's own
/// statistics, making the load balance of a run observable: comparing the
/// per-worker `recursive_calls` (or `busy_time`) shares shows how evenly the
/// scheduler spread the recursion tree — under a pulling scheduler one
/// worker owns a skewed graph's giant root, under the splitting scheduler
/// the shares approach `1 / threads`.
pub fn par_count_with_worker_stats<G: GraphTopology + Sync>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
) -> (u64, EnumerationStats, Vec<EnumerationStats>) {
    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let results = run_workers(&solver, &plan, threads, CountReporter::new);

    let mut total = 0u64;
    let mut merged = EnumerationStats::default();
    let mut per_worker = Vec::with_capacity(results.len());
    for (reporter, stats) in results {
        total += reporter.count;
        merged.merge(&stats);
        per_worker.push(stats);
    }
    (total, merged, per_worker)
}

/// Collects all maximal cliques using `threads` workers, in canonical order.
pub fn par_enumerate_collect<G: GraphTopology + Sync>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
) -> (Vec<Vec<VertexId>>, EnumerationStats) {
    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let results = run_workers(&solver, &plan, threads, CollectReporter::new);

    let mut cliques = Vec::new();
    let mut merged = EnumerationStats::default();
    for (reporter, stats) in results {
        // CollectReporter already sorts each clique's members on report.
        cliques.extend(reporter.cliques);
        merged.merge(&stats);
    }
    cliques.sort();
    (cliques, merged)
}

/// Streams maximal cliques to a shared reporter from `threads` workers. The
/// reporter is locked per clique, so use this with cheap reporters (counters,
/// writers) rather than heavy computations.
pub fn par_enumerate_streaming<G: GraphTopology + Sync, R: CliqueReporter + Send>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
    reporter: &mut R,
) -> EnumerationStats {
    struct SharedReporter<'a, R: CliqueReporter> {
        inner: &'a Mutex<&'a mut R>,
    }
    impl<R: CliqueReporter> CliqueReporter for SharedReporter<'_, R> {
        fn report(&mut self, clique: &[VertexId]) {
            // Poison recovery: a panicking reporter is contained by the
            // worker fleet, and the surviving workers must still be able to
            // take this lock while they drain.
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .report(clique);
        }
    }

    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let shared = Mutex::new(reporter);
    let results = run_workers(&solver, &plan, threads, || SharedReporter {
        inner: &shared,
    });

    let mut merged = EnumerationStats::default();
    for (_, stats) in results {
        merged.merge(&stats);
    }
    merged
}

// ----------------------------------------------------------------------
// Deterministic ordered streaming
// ----------------------------------------------------------------------

/// Per-task clique buffer: preserves the sequential recursion order of one
/// work item (a root branch or a stolen sub-branch) without sorting
/// anything, ticking the progress counters at discovery time.
struct RankBuffer<'a> {
    cliques: Vec<Vec<VertexId>>,
    hook: ProgressHook<'a>,
}

impl<'a> RankBuffer<'a> {
    fn new(hook: ProgressHook<'a>) -> Self {
        RankBuffer {
            cliques: Vec::new(),
            hook,
        }
    }
}

impl CliqueReporter for RankBuffer<'_> {
    fn report(&mut self, clique: &[VertexId]) {
        self.hook.cliques(1);
        self.cliques.push(clique.to_vec());
    }
}

/// The parts of one root rank collected so far.
#[derive(Default)]
struct RankParts {
    /// `(key, cliques, truncated)` deposits, unsorted until the rank
    /// completes. `truncated` marks a part whose work item was cut short by
    /// the session budget — its cliques are a prefix of that item's
    /// sequential contribution.
    parts: Vec<(SeqKey, Vec<Vec<VertexId>>, bool)>,
    /// Donations registered for this rank. A rank is complete when
    /// `parts.len() == donations + 1` (the `+ 1` is the root's own task);
    /// donations are registered *before* their task enters the pool, so the
    /// test is exact.
    donations: usize,
}

impl RankParts {
    fn is_complete(&self) -> bool {
        self.parts.len() == self.donations + 1
    }
}

/// Reorders per-task clique buffers arriving from any worker in any order
/// into the sequential stream: strict root-rank order, and within one rank
/// the donation-tree order encoded by [`SeqKey`].
struct Sequencer<'a, R: CliqueReporter + ?Sized> {
    next: usize,
    pending: BTreeMap<usize, RankParts>,
    /// Total cliques currently parked in `pending` (the backpressure gauge).
    buffered_cliques: usize,
    /// Whether a truncated part reached the stream head: the emitted bytes
    /// end at a clean budget cut and nothing later may follow (the
    /// sequential stream has a gap from that point on).
    closed: bool,
    /// First panic thrown by `out` during emission, if any. Set under the
    /// sequencer lock *instead of* letting the unwind poison it, so sibling
    /// depositors keep draining; the driver converts it into a typed
    /// [`EngineError::WorkerPanic`].
    fault: Option<String>,
    out: &'a mut R,
}

impl<'a, R: CliqueReporter + ?Sized> Sequencer<'a, R> {
    fn new(out: &'a mut R) -> Self {
        Sequencer {
            next: 0,
            pending: BTreeMap::new(),
            buffered_cliques: 0,
            closed: false,
            fault: None,
            out,
        }
    }

    /// Records that `rank` will receive one more part than previously known.
    fn register_donation(&mut self, rank: usize) {
        self.pending.entry(rank).or_default().donations += 1;
    }

    /// Adds one task's cliques and emits every now-complete head rank. A
    /// part marked `truncated` was cut short by the session budget: once it
    /// reaches the stream head its (prefix) cliques are emitted and the
    /// stream closes — everything later is discarded, keeping the output an
    /// exact byte-prefix of the full deterministic stream. Returns whether
    /// the head advanced or the stream closed (both free waiting
    /// depositors).
    fn deposit(
        &mut self,
        rank: usize,
        key: SeqKey,
        cliques: Vec<Vec<VertexId>>,
        truncated: bool,
    ) -> bool {
        if self.closed {
            return true; // nothing further emits; park nothing
        }
        self.buffered_cliques += cliques.len();
        self.pending
            .entry(rank)
            .or_default()
            .parts
            .push((key, cliques, truncated));
        let before = self.next;
        // The caller's reporter runs inside this emission loop and may
        // panic. Catch it *here*, while the depositor still holds the
        // sequencer lock in a controlled frame: the fault is recorded, the
        // stream closes at the bytes already emitted, and the lock is
        // released healthy instead of poisoned — sibling depositors drain
        // through the closed-stream fast path.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.emit_ready())) {
            if self.fault.is_none() {
                self.fault = Some(panic_detail(payload.as_ref()));
            }
            self.closed = true;
        }
        if self.closed {
            // Drop everything still parked; later deposits are dropped on
            // arrival.
            self.pending.clear();
            self.buffered_cliques = 0;
        }
        self.next != before || self.closed
    }

    /// Emits every now-complete head rank in key order.
    fn emit_ready(&mut self) {
        while !self.closed
            && self
                .pending
                .get(&self.next)
                .is_some_and(RankParts::is_complete)
        {
            let mut slot = self.pending.remove(&self.next).expect("checked above");
            slot.parts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            for (_, cliques, part_truncated) in &slot.parts {
                self.buffered_cliques -= cliques.len();
                for clique in cliques {
                    self.out.report(clique);
                }
                if *part_truncated {
                    self.closed = true;
                    break;
                }
            }
            if self.closed {
                break;
            }
            self.next += 1;
        }
    }
}

/// Out-of-order cliques the sequencer may park before depositors must wait
/// for the stream head to catch up (pulling schedulers only — see the module
/// docs for why splitting deposits never wait). Bounds the ordered driver's
/// memory at roughly this many cliques (plus one in-flight rank per worker)
/// instead of the full result set when one early root branch is much slower
/// than the rest.
const SEQUENCER_BUFFER_CAP: usize = 1 << 16;

/// Deposits `cliques` for `rank`, waiting while the out-of-order buffer is
/// over `cap`. Deadlock-free: the depositor holding a head-rank part never
/// waits (its deposit is what drains the buffer and advances `next`, which
/// eventually makes every waiting depositor the head of the stream).
fn bounded_deposit<R: CliqueReporter + ?Sized>(
    sequencer: &Mutex<Sequencer<'_, R>>,
    drained: &Condvar,
    cap: usize,
    rank: usize,
    cliques: Vec<Vec<VertexId>>,
    truncated: bool,
) {
    // Poison recovery: the sequencer catches reporter panics itself, but a
    // worker unwinding for any other reason while holding the lock must not
    // strand its siblings behind a poisoned mutex.
    let mut seq = sequencer.lock().unwrap_or_else(|e| e.into_inner());
    while !seq.closed && rank != seq.next && seq.buffered_cliques + cliques.len() > cap {
        seq = drained.wait(seq).unwrap_or_else(|e| e.into_inner());
    }
    if seq.deposit(rank, SeqKey::root(), cliques, truncated) {
        // `next` moved (possibly past several parked ranks) or the stream
        // closed: capacity was freed and some waiter may now be the stream
        // head (or free to drop its deposit).
        drained.notify_all();
    }
}

/// Streams maximal cliques to `reporter` in a deterministic order that is
/// independent of the thread count and of the [`RootScheduler`] variant: the
/// rank-independent output first (graph-reduction cliques, then isolated
/// vertices under edge-oriented branching), then the cliques of root rank 0,
/// rank 1, … — each rank's cliques in sequential recursion order. The stream
/// is byte-for-byte reproducible for any formatting reporter layered on top,
/// which is what the CLI's golden-output determinism gate enforces.
///
/// Workers still *claim* work according to `config.scheduler` — including
/// stealing donated sub-branches under [`RootScheduler::Splitting`] — and a
/// rank-plus-key sequencer reorders their buffered output before it reaches
/// `reporter`. Under the pulling schedulers memory is bounded: at most a
/// fixed cap (currently 2¹⁶) of out-of-order cliques are parked, with later
/// depositors waiting instead of accumulating the full result set.
pub fn par_enumerate_ordered<G: GraphTopology + Sync, R: CliqueReporter + Send + ?Sized>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
    reporter: &mut R,
) -> Result<EnumerationStats, ConfigError> {
    repanic_worker_faults(par_enumerate_ordered_driver(
        g,
        config,
        threads,
        SEQUENCER_BUFFER_CAP,
        PoolConfig::default(),
        None,
        None,
        reporter,
    ))
}

/// Maps a driver result back to the legacy `ConfigError` signature:
/// configuration errors pass through, worker panics — already drained
/// cleanly by the driver — are re-raised on the caller's thread.
fn repanic_worker_faults(
    result: Result<EnumerationStats, EngineError>,
) -> Result<EnumerationStats, ConfigError> {
    match result {
        Ok(stats) => Ok(stats),
        Err(EngineError::Config(e)) => Err(e),
        Err(EngineError::WorkerPanic { detail }) => resume_unwind(Box::new(detail)),
    }
}

/// [`par_enumerate_ordered`] with live progress counters: `progress` is
/// updated as roots complete, cliques are discovered and sub-branches are
/// donated, so a monitoring thread can report enumeration rates without
/// touching the output stream.
pub fn par_enumerate_ordered_observed<
    G: GraphTopology + Sync,
    R: CliqueReporter + Send + ?Sized,
>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
    reporter: &mut R,
    progress: &ProgressCounters,
) -> Result<EnumerationStats, ConfigError> {
    repanic_worker_faults(par_enumerate_ordered_driver(
        g,
        config,
        threads,
        SEQUENCER_BUFFER_CAP,
        PoolConfig::default(),
        Some(progress),
        None,
        reporter,
    ))
}

/// [`par_enumerate_ordered`] under a [`Budget`]: the stream stops at the
/// budget's clique cap, step bound or cancellation, and the emitted bytes are
/// always an exact prefix of the unbudgeted deterministic stream — at any
/// thread count, under any [`RootScheduler`]. With `max_cliques = Some(n)`
/// the output is exactly the first `n` cliques of that stream.
///
/// Workers observe the budget between branch steps, so cancellation latency
/// is bounded by one branch step plus the cost of unwinding. `progress`
/// optionally attaches live [`ProgressCounters`]. Returns the run statistics
/// and the [`Outcome`] (`Complete`, or `Truncated` with the first bound that
/// tripped).
pub fn par_enumerate_ordered_budgeted<
    G: GraphTopology + Sync,
    R: CliqueReporter + Send + ?Sized,
>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
    budget: &Budget,
    progress: Option<&ProgressCounters>,
    reporter: &mut R,
) -> Result<(EnumerationStats, Outcome), ConfigError> {
    let state = BudgetState::new(budget);
    let mut stats = repanic_worker_faults(par_enumerate_ordered_with_state(
        g, config, threads, &state, progress, reporter,
    ))?;
    let outcome = state.outcome();
    if outcome.is_truncated() && stats.terminated_by_budget == 0 {
        // The budget tripped between branching frames (between root ranks, or
        // at the output gate after the last frame finished): charge the run
        // itself so truncated outcomes always report >= 1 abandoned unit.
        stats.terminated_by_budget = 1;
    }
    Ok((stats, outcome))
}

/// [`par_enumerate_ordered_budgeted`] over an existing session
/// [`BudgetState`] (the query layer owns the state so its cancel token can be
/// handed out before the run starts). Applies the clique-cap gate here —
/// after the deterministic sequencer — so callers pass their raw reporter.
pub(crate) fn par_enumerate_ordered_with_state<G, R>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
    state: &BudgetState,
    progress: Option<&ProgressCounters>,
    reporter: &mut R,
) -> Result<EnumerationStats, EngineError>
where
    G: GraphTopology + Sync,
    R: CliqueReporter + Send + ?Sized,
{
    let mut gated = BudgetReporter::new(reporter, state);
    par_enumerate_ordered_driver(
        g,
        config,
        threads,
        SEQUENCER_BUFFER_CAP,
        PoolConfig::default(),
        progress,
        Some(state),
        &mut gated,
    )
}

/// The donation sink of ordered splitting runs: registers every donation
/// with the sequencer (so rank completeness stays exact) before the task
/// becomes visible in the pool.
struct OrderedSink<'s, 'r, R: CliqueReporter + Send + ?Sized> {
    pool: &'s TaskPool,
    sequencer: &'s Mutex<Sequencer<'r, R>>,
    progress: ProgressHook<'s>,
}

impl<R: CliqueReporter + Send + ?Sized> DonationSink for OrderedSink<'_, '_, R> {
    fn hungry(&self) -> bool {
        self.pool.hungry()
    }

    fn step_threshold(&self) -> u32 {
        self.pool.step_threshold()
    }

    fn donate(&self, task: BranchTask) {
        self.sequencer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .register_donation(task.rank);
        self.progress.split();
        self.pool.push(task);
    }
}

/// The full ordered driver (internal): explicit buffer cap, pool tuning and
/// optional progress counters, exposed for tests that force the backpressure
/// or aggressive-splitting paths.
///
/// Fault containment: panics raised by worker bodies or by the caller's
/// reporter are caught, the surviving workers drain, the stream keeps the
/// deterministic prefix emitted before the fault, and the driver returns
/// [`EngineError::WorkerPanic`] carrying the first panic's payload.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_enumerate_ordered_driver<G, R>(
    g: &G,
    config: &SolverConfig,
    threads: usize,
    cap: usize,
    pool_config: PoolConfig,
    progress: Option<&ProgressCounters>,
    budget: Option<&BudgetState>,
    mut reporter: &mut R,
) -> Result<EnumerationStats, EngineError>
where
    G: GraphTopology + Sync,
    R: CliqueReporter + Send + ?Sized,
{
    let start = Instant::now();
    let threads = threads.max(1);
    let solver = Solver::new(g, *config)?;
    let plan = solver.prepare();
    let total = plan.root_count();
    let hook = ProgressHook(progress);
    if let Some(p) = progress {
        p.total_roots.store(total as u64, Ordering::Relaxed);
    }

    // Rank-independent output first (deterministic given the plan).
    // `&mut reporter` re-borrows through the blanket `&mut R: CliqueReporter`
    // impl so unsized `R` still coerces to `&mut dyn CliqueReporter`. This
    // and the single-threaded paths below run the caller's reporter on this
    // thread, so a panic here unwinds no scope — but it is still converted
    // to the typed error for a uniform contract.
    let mut merged = {
        let mut warm = WorkerState::new();
        catch_unwind(AssertUnwindSafe(|| {
            solver.run_on_plan(
                &plan,
                std::iter::empty(),
                true,
                &mut warm,
                budget,
                &mut reporter,
            )
        }))
        .map_err(|payload| EngineError::WorkerPanic {
            detail: panic_detail(payload.as_ref()),
        })?
    };
    hook.cliques(merged.maximal_cliques);

    if threads == 1 {
        let mut state = WorkerState::new();
        let run = catch_unwind(AssertUnwindSafe(|| {
            if progress.is_some() {
                // Counted per clique (and per chunk of roots) so the counters
                // tick while the run progresses, even inside one giant root.
                let mut counted = CountingReporter {
                    inner: &mut *reporter,
                    hook,
                };
                let mut rank = 0usize;
                while rank < total {
                    let end = (rank + CHUNK).min(total);
                    let stats = solver.run_on_plan(
                        &plan,
                        rank..end,
                        false,
                        &mut state,
                        budget,
                        &mut counted,
                    );
                    if let Some(p) = progress {
                        p.roots_done
                            .fetch_add((end - rank) as u64, Ordering::Relaxed);
                    }
                    merged.merge(&stats);
                    rank = end;
                }
            } else {
                let stats =
                    solver.run_on_plan(&plan, 0..total, false, &mut state, budget, &mut reporter);
                merged.merge(&stats);
            }
        }));
        if let Err(payload) = run {
            return Err(EngineError::WorkerPanic {
                detail: panic_detail(payload.as_ref()),
            });
        }
        merged.elapsed = start.elapsed();
        merged.busy_time = merged.elapsed;
        return Ok(merged);
    }

    let scheduler = solver.config().scheduler;
    let sequencer = Mutex::new(Sequencer::new(reporter));
    let drained = Condvar::new();
    let fault = FaultCell::new();

    let worker_stats: Vec<EnumerationStats> = match scheduler {
        RootScheduler::Splitting => ordered_splitting_workers(
            &solver,
            &plan,
            threads,
            pool_config,
            hook,
            budget,
            &sequencer,
            &fault,
        ),
        RootScheduler::Dynamic | RootScheduler::Static => ordered_pulling_workers(
            &solver, &plan, threads, cap, scheduler, hook, budget, &sequencer, &drained, &fault,
        ),
    };
    for stats in &worker_stats {
        merged.merge(stats);
    }
    let sequencer = sequencer.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(detail) = sequencer.fault.clone().or_else(|| fault.take()) {
        // The prefix emitted before the fault already reached the caller's
        // reporter; the error reports why the stream stopped there.
        return Err(EngineError::WorkerPanic { detail });
    }
    debug_assert!(
        sequencer.closed || sequencer.next == total,
        "every rank must have been emitted unless the stream was truncated"
    );
    debug_assert!(sequencer.closed || sequencer.pending.is_empty());
    debug_assert!(sequencer.closed || sequencer.buffered_cliques == 0);
    merged.elapsed = start.elapsed();
    Ok(merged)
}

/// Ordered workers under the pulling schedulers: one deposit per root rank,
/// bounded by the sequencer buffer cap.
#[allow(clippy::too_many_arguments)]
fn ordered_pulling_workers<G: GraphTopology + Sync, R: CliqueReporter + Send + ?Sized>(
    solver: &Solver<'_, G>,
    plan: &RootPlan,
    threads: usize,
    cap: usize,
    scheduler: RootScheduler,
    hook: ProgressHook<'_>,
    budget: Option<&BudgetState>,
    sequencer: &Mutex<Sequencer<'_, R>>,
    drained: &Condvar,
    fault: &FaultCell,
) -> Vec<EnumerationStats> {
    let total = plan.root_count();
    let next_rank = AtomicUsize::new(0);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker_id| {
                let next_rank = &next_rank;
                scope.spawn(move || {
                    let mut state = WorkerState::new();
                    let mut stats = EnumerationStats::default();
                    // Returns `false` once the budget stopped the run or a
                    // sibling faulted: the claimed rank gets an empty
                    // truncated part (closing the ordered stream at or
                    // before it) and the worker exits.
                    let run_rank =
                        |rank: usize, state: &mut WorkerState, stats: &mut EnumerationStats| {
                            if fault.is_set() || budget.is_some_and(BudgetState::should_stop) {
                                bounded_deposit(sequencer, drained, cap, rank, Vec::new(), true);
                                return false;
                            }
                            let mut buffer = RankBuffer::new(hook);
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                solver.run_on_plan(
                                    plan,
                                    std::iter::once(rank),
                                    false,
                                    state,
                                    budget,
                                    &mut buffer,
                                )
                            }));
                            let s = match run {
                                Ok(s) => s,
                                Err(payload) => {
                                    // First fault wins. Halt the siblings on
                                    // the budget cadence when one exists,
                                    // and close the faulted rank with an
                                    // empty truncated part so no depositor
                                    // waits on it forever.
                                    fault.record_payload(payload);
                                    if let Some(b) = budget {
                                        b.halt_for_fault();
                                    }
                                    bounded_deposit(
                                        sequencer,
                                        drained,
                                        cap,
                                        rank,
                                        Vec::new(),
                                        true,
                                    );
                                    return false;
                                }
                            };
                            // Re-check the budget after the run: a sibling may
                            // exhaust the shared budget between the pre-check
                            // above and the solver's own uncharged between-rank
                            // check, in which case the rank returns empty stats
                            // with `terminated_by_budget == 0` even though it
                            // never ran. Marking a fully-completed rank
                            // truncated is harmless — the outcome is truncated
                            // anyway and the closed stream stays a prefix.
                            let truncated = s.terminated_by_budget > 0
                                || budget.is_some_and(BudgetState::should_stop);
                            stats.merge(&s);
                            hook.root_done();
                            bounded_deposit(
                                sequencer,
                                drained,
                                cap,
                                rank,
                                buffer.cliques,
                                truncated,
                            );
                            true
                        };
                    match scheduler {
                        RootScheduler::Static => {
                            for rank in (worker_id..total).step_by(threads) {
                                if !run_rank(rank, &mut state, &mut stats) {
                                    break;
                                }
                            }
                        }
                        _ => {
                            for rank in StealingRanks::new(next_rank, total) {
                                if !run_rank(rank, &mut state, &mut stats) {
                                    break;
                                }
                            }
                        }
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    })
}

/// Ordered workers under the splitting scheduler: claim component chunks or
/// donated tasks, deposit each work item's buffer under its `(rank, key)`.
#[allow(clippy::too_many_arguments)]
fn ordered_splitting_workers<G: GraphTopology + Sync, R: CliqueReporter + Send + ?Sized>(
    solver: &Solver<'_, G>,
    plan: &RootPlan,
    threads: usize,
    pool_config: PoolConfig,
    hook: ProgressHook<'_>,
    budget: Option<&BudgetState>,
    sequencer: &Mutex<Sequencer<'_, R>>,
    fault: &FaultCell,
) -> Vec<EnumerationStats> {
    let shards = plan
        .shards
        .as_ref()
        .expect("splitting plan carries component shards");
    let pool = TaskPool::new(shards.chunk_count(), pool_config);
    let deposit = |rank: usize, key: SeqKey, cliques: Vec<Vec<VertexId>>, truncated: bool| {
        sequencer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .deposit(rank, key, cliques, truncated);
    };

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let pool = &pool;
                let deposit = &deposit;
                scope.spawn(move || {
                    let start = Instant::now();
                    let sink = OrderedSink {
                        pool,
                        sequencer,
                        progress: hook,
                    };
                    let mut state = WorkerState::new();
                    let mut stats = EnumerationStats::default();
                    // Records a fault and halts the siblings on the budget
                    // cadence; the faulted work item is answered with an
                    // empty truncated part by the caller.
                    let record_fault = |payload: Box<dyn Any + Send>| {
                        fault.record_payload(payload);
                        if let Some(b) = budget {
                            b.halt_for_fault();
                        }
                    };
                    // After a budget stop or a fault, the pool must still
                    // drain so the sequencer's parts-per-rank accounting
                    // stays exact: every remaining work item is claimed and
                    // immediately answered with an empty truncated part, and
                    // `complete()` runs for every claimed item even when its
                    // body panicked (a claimed-but-never-completed item
                    // would hang every sibling's `claim()`).
                    while let Some(work) = pool.claim() {
                        let stopped =
                            fault.is_set() || budget.is_some_and(BudgetState::should_stop);
                        match work {
                            PoolWork::Chunk(chunk) => {
                                for rank in shards.chunk(chunk) {
                                    if stopped
                                        || fault.is_set()
                                        || budget.is_some_and(BudgetState::should_stop)
                                    {
                                        deposit(rank, SeqKey::root(), Vec::new(), true);
                                        continue;
                                    }
                                    let mut buffer = RankBuffer::new(hook);
                                    let run = catch_unwind(AssertUnwindSafe(|| {
                                        solver.run_ranks_donating(
                                            plan,
                                            std::iter::once(rank),
                                            &mut state,
                                            &sink,
                                            budget,
                                            &mut buffer,
                                        )
                                    }));
                                    match run {
                                        Ok(s) => {
                                            hook.root_done();
                                            // Same post-run re-check as the
                                            // pulling path: a sibling's budget
                                            // exhaustion between our pre-check
                                            // and the solver's between-rank
                                            // check yields empty stats for a
                                            // never-run rank.
                                            let truncated = s.terminated_by_budget > 0
                                                || budget.is_some_and(BudgetState::should_stop);
                                            stats.merge(&s);
                                            deposit(
                                                rank,
                                                SeqKey::root(),
                                                buffer.cliques,
                                                truncated,
                                            );
                                        }
                                        Err(payload) => {
                                            record_fault(payload);
                                            deposit(rank, SeqKey::root(), Vec::new(), true);
                                        }
                                    }
                                }
                            }
                            PoolWork::Task(task) => {
                                let rank = task.rank;
                                let key = task.key.clone();
                                if stopped {
                                    deposit(rank, key, Vec::new(), true);
                                } else {
                                    let mut buffer = RankBuffer::new(hook);
                                    let run = catch_unwind(AssertUnwindSafe(|| {
                                        solver.run_branch_task(
                                            *task,
                                            &mut state,
                                            &sink,
                                            budget,
                                            &mut buffer,
                                        )
                                    }));
                                    match run {
                                        Ok(s) => {
                                            let truncated = s.terminated_by_budget > 0
                                                || budget.is_some_and(BudgetState::should_stop);
                                            stats.merge(&s);
                                            deposit(rank, key, buffer.cliques, truncated);
                                        }
                                        Err(payload) => {
                                            record_fault(payload);
                                            deposit(rank, key, Vec::new(), true);
                                        }
                                    }
                                }
                            }
                        }
                        pool.complete();
                    }
                    stats.elapsed = start.elapsed();
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    fault.record_payload(payload);
                    EnumerationStats::default()
                })
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_maximal_cliques;
    use crate::report::{CliqueLineFormat, WriterReporter};
    use crate::solver::count_maximal_cliques;
    use mce_graph::Graph;

    fn test_graph() -> Graph {
        // Two overlapping communities plus sparse periphery.
        Graph::from_edges(
            12,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (6, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (9, 11),
            ],
        )
        .unwrap()
    }

    /// `hbbmc_pp` with the given scheduler.
    fn cfg_with(scheduler: RootScheduler) -> SolverConfig {
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.scheduler = scheduler;
        cfg
    }

    /// A pool configuration that donates at every single branch step,
    /// maximising task fragmentation even on tiny graphs.
    fn aggressive_pool() -> PoolConfig {
        PoolConfig {
            step_threshold: 0,
            always_hungry: true,
        }
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let g = test_graph();
        let (seq, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        for scheduler in [
            RootScheduler::Dynamic,
            RootScheduler::Static,
            RootScheduler::Splitting,
        ] {
            for threads in [1, 2, 4, 7] {
                let (par, stats) = par_count_maximal_cliques(&g, &cfg_with(scheduler), threads);
                assert_eq!(par, seq, "{scheduler:?}, threads = {threads}");
                assert_eq!(stats.maximal_cliques, seq);
            }
        }
    }

    #[test]
    fn parallel_collect_matches_reference() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g);
        let (got, _) = par_enumerate_collect(&g, &SolverConfig::r_degen(), 3);
        assert_eq!(got, expected);
        let mut cfg = SolverConfig::r_degen();
        cfg.scheduler = RootScheduler::Splitting;
        let (got, _) = par_enumerate_collect(&g, &cfg, 3);
        assert_eq!(got, expected);
    }

    #[test]
    fn streaming_reporter_sees_every_clique() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g).len() as u64;
        for scheduler in [RootScheduler::Dynamic, RootScheduler::Splitting] {
            let mut counter = CountReporter::new();
            let stats = par_enumerate_streaming(&g, &cfg_with(scheduler), 4, &mut counter);
            assert_eq!(counter.count, expected, "{scheduler:?}");
            assert_eq!(stats.maximal_cliques, expected);
        }
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let g = Graph::complete(4);
        let (count, _) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), 0);
        assert_eq!(count, 1);
    }

    #[test]
    fn more_threads_than_roots_is_fine() {
        let g = Graph::complete(3); // one root survives reduction
        for scheduler in [
            RootScheduler::Dynamic,
            RootScheduler::Static,
            RootScheduler::Splitting,
        ] {
            for threads in [2, 8, 16] {
                let (count, _) = par_count_maximal_cliques(&g, &cfg_with(scheduler), threads);
                assert_eq!(count, 1, "{scheduler:?}, threads = {threads}");
            }
        }
    }

    /// Renders the full ordered stream of `g` to text bytes.
    fn ordered_bytes(g: &Graph, cfg: &SolverConfig, threads: usize) -> Vec<u8> {
        let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
        par_enumerate_ordered(g, cfg, threads, &mut reporter).unwrap();
        reporter.finish().unwrap()
    }

    #[test]
    fn ordered_stream_is_byte_identical_across_threads_and_schedulers() {
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::hbbmc_pp(), 1);
        assert!(!baseline.is_empty());
        for scheduler in [
            RootScheduler::Dynamic,
            RootScheduler::Static,
            RootScheduler::Splitting,
        ] {
            for threads in [1, 2, 4, 7] {
                let bytes = ordered_bytes(&g, &cfg_with(scheduler), threads);
                assert_eq!(
                    bytes, baseline,
                    "scheduler {scheduler:?}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn ordered_stream_with_tiny_buffer_cap_still_matches() {
        // Forces the backpressure path: with cap 0 every out-of-order deposit
        // waits until its rank becomes the stream head.
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::hbbmc_pp(), 1);
        for cap in [0usize, 1, 3] {
            let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
            par_enumerate_ordered_driver(
                &g,
                &SolverConfig::hbbmc_pp(),
                4,
                cap,
                PoolConfig::default(),
                None,
                None,
                &mut reporter,
            )
            .unwrap();
            assert_eq!(reporter.finish().unwrap(), baseline, "cap {cap}");
        }
    }

    #[test]
    fn ordered_splitting_with_forced_fragmentation_still_matches() {
        // Donate at every branch step: the donation tree is as deep and as
        // fragmented as it can get, and the sequence keys must still
        // reassemble the sequential stream exactly.
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::hbbmc_pp(), 1);
        for threads in [2, 3, 4, 8] {
            let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
            let stats = par_enumerate_ordered_driver(
                &g,
                &cfg_with(RootScheduler::Splitting),
                threads,
                SEQUENCER_BUFFER_CAP,
                aggressive_pool(),
                None,
                None,
                &mut reporter,
            )
            .unwrap();
            assert_eq!(reporter.finish().unwrap(), baseline, "threads {threads}");
            assert_eq!(stats.splits, stats.steals, "every donation is executed");
        }
    }

    #[test]
    fn forced_fragmentation_actually_splits() {
        // Sanity for the test above: with aggressive settings and several
        // workers the run must produce at least one donation, otherwise the
        // fragmentation test exercises nothing. Use the bare preset — graph
        // reduction and early termination would otherwise resolve this dense
        // instance without any splittable recursion.
        let g = mce_gen::moon_moser(4);
        let mut cfg = SolverConfig::hbbmc_bare();
        cfg.scheduler = RootScheduler::Splitting;
        let mut count = CountReporter::new();
        let stats = par_enumerate_ordered_driver(
            &g,
            &cfg,
            4,
            SEQUENCER_BUFFER_CAP,
            aggressive_pool(),
            None,
            None,
            &mut count,
        )
        .unwrap();
        assert_eq!(count.count, 81); // 3^4
        assert!(stats.splits > 0, "aggressive pool must split: {stats:?}");
        assert_eq!(stats.splits, stats.steals);
    }

    #[test]
    fn ordered_stream_reports_every_clique() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g);
        for scheduler in [RootScheduler::Dynamic, RootScheduler::Splitting] {
            let mut collector = CollectReporter::new();
            let stats = par_enumerate_ordered(&g, &cfg_with(scheduler), 4, &mut collector).unwrap();
            assert_eq!(collector.into_sorted(), expected, "{scheduler:?}");
            assert_eq!(stats.maximal_cliques as usize, expected.len());
        }
    }

    #[test]
    fn ordered_stream_matches_for_vertex_oriented_presets() {
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::r_degen(), 1);
        for scheduler in [RootScheduler::Dynamic, RootScheduler::Splitting] {
            let mut cfg = SolverConfig::r_degen();
            cfg.scheduler = scheduler;
            for threads in [2, 5] {
                assert_eq!(ordered_bytes(&g, &cfg, threads), baseline, "{scheduler:?}");
            }
        }
    }

    #[test]
    fn ordered_stream_rejects_invalid_config() {
        let g = Graph::complete(3);
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.early_termination_t = 9;
        let mut reporter = CountReporter::new();
        assert!(par_enumerate_ordered(&g, &cfg, 2, &mut reporter).is_err());
    }

    #[test]
    fn progress_counters_reach_final_totals() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g).len() as u64;
        for threads in [1usize, 4] {
            let progress = ProgressCounters::new();
            let mut count = CountReporter::new();
            let cfg = cfg_with(RootScheduler::Splitting);
            par_enumerate_ordered_observed(&g, &cfg, threads, &mut count, &progress).unwrap();
            assert_eq!(count.count, expected, "threads {threads}");
            assert_eq!(
                progress.cliques_found.load(Ordering::Relaxed),
                expected,
                "threads {threads}"
            );
            assert_eq!(
                progress.roots_done.load(Ordering::Relaxed),
                progress.total_roots.load(Ordering::Relaxed),
            );
        }
    }

    /// Collects cliques until `remaining` hits zero, then panics on every
    /// further report — the fault-injection reporter of the containment
    /// tests.
    struct PanicAfter {
        collected: Vec<Vec<VertexId>>,
        remaining: usize,
    }

    impl PanicAfter {
        fn new(remaining: usize) -> Self {
            PanicAfter {
                collected: Vec::new(),
                remaining,
            }
        }
    }

    impl CliqueReporter for PanicAfter {
        fn report(&mut self, clique: &[VertexId]) {
            if self.remaining == 0 {
                panic!("injected reporter fault");
            }
            self.remaining -= 1;
            self.collected.push(clique.to_vec());
        }
    }

    #[test]
    fn reporter_panic_returns_typed_error_and_keeps_the_prefix() {
        let g = test_graph();
        let mut baseline = CollectReporter::new();
        par_enumerate_ordered(&g, &SolverConfig::hbbmc_pp(), 1, &mut baseline).unwrap();
        let full = baseline.cliques;
        assert!(full.len() > 4);
        for scheduler in [
            RootScheduler::Dynamic,
            RootScheduler::Static,
            RootScheduler::Splitting,
        ] {
            for threads in [1usize, 2, 4] {
                for keep in [0usize, 1, 3] {
                    let mut reporter = PanicAfter::new(keep);
                    let err = par_enumerate_ordered_driver(
                        &g,
                        &cfg_with(scheduler),
                        threads,
                        SEQUENCER_BUFFER_CAP,
                        PoolConfig::default(),
                        None,
                        None,
                        &mut reporter,
                    )
                    .unwrap_err();
                    match err {
                        EngineError::WorkerPanic { detail } => {
                            assert_eq!(detail, "injected reporter fault")
                        }
                        other => panic!("expected WorkerPanic, got {other:?}"),
                    }
                    assert_eq!(
                        reporter.collected,
                        &full[..keep],
                        "{scheduler:?} x{threads}, keep {keep}: the cliques emitted \
                         before the fault are the deterministic prefix"
                    );
                }
            }
        }
    }

    #[test]
    fn splitting_worker_panic_with_forced_fragmentation_does_not_hang() {
        // The panic fires inside `Sequencer::deposit` while pool items and
        // donated tasks are in flight: every claimed item must still be
        // completed, the pool must drain, and the driver must return the
        // typed error instead of hanging `claim()` forever.
        let g = mce_gen::moon_moser(4);
        let mut cfg = SolverConfig::hbbmc_bare();
        cfg.scheduler = RootScheduler::Splitting;
        for threads in [2usize, 4] {
            let mut reporter = PanicAfter::new(5);
            let err = par_enumerate_ordered_driver(
                &g,
                &cfg,
                threads,
                SEQUENCER_BUFFER_CAP,
                aggressive_pool(),
                None,
                None,
                &mut reporter,
            )
            .unwrap_err();
            assert!(matches!(err, EngineError::WorkerPanic { .. }));
            assert_eq!(reporter.collected.len(), 5, "threads {threads}");
        }
    }

    #[test]
    fn unordered_worker_panic_propagates_after_a_clean_drain() {
        let g = test_graph();
        for scheduler in [RootScheduler::Dynamic, RootScheduler::Splitting] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let mut reporter = PanicAfter::new(2);
                par_enumerate_streaming(&g, &cfg_with(scheduler), 4, &mut reporter);
            }));
            let payload = caught.expect_err("the fault must reach the caller");
            assert_eq!(
                payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .unwrap_or_default(),
                "injected reporter fault",
                "{scheduler:?}"
            );
        }
    }

    #[test]
    fn deadline_truncates_to_a_byte_prefix() {
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::hbbmc_pp(), 1);
        for scheduler in [
            RootScheduler::Dynamic,
            RootScheduler::Static,
            RootScheduler::Splitting,
        ] {
            for threads in [1usize, 2, 4] {
                let budget = Budget::within(std::time::Duration::ZERO);
                let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
                let (stats, outcome) = par_enumerate_ordered_budgeted(
                    &g,
                    &cfg_with(scheduler),
                    threads,
                    &budget,
                    None,
                    &mut reporter,
                )
                .unwrap();
                let bytes = reporter.finish().unwrap();
                assert_eq!(
                    outcome,
                    Outcome::Truncated {
                        reason: crate::TruncationReason::DeadlineExceeded
                    },
                    "{scheduler:?} x{threads}"
                );
                assert!(stats.terminated_by_budget >= 1);
                assert_eq!(
                    &baseline[..bytes.len()],
                    &bytes[..],
                    "{scheduler:?} x{threads}: expired deadline still yields a byte-prefix"
                );
            }
        }
    }

    #[test]
    fn generous_deadline_completes_identically() {
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::hbbmc_pp(), 1);
        let budget = Budget::within(std::time::Duration::from_secs(3600));
        let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
        let (_, outcome) = par_enumerate_ordered_budgeted(
            &g,
            &SolverConfig::hbbmc_pp(),
            4,
            &budget,
            None,
            &mut reporter,
        )
        .unwrap();
        assert_eq!(outcome, Outcome::Complete);
        assert_eq!(reporter.finish().unwrap(), baseline);
    }

    #[test]
    fn sequencer_reorders_out_of_order_deposits() {
        let mut out = CollectReporter::new();
        let mut seq = Sequencer::new(&mut out);
        seq.deposit(2, SeqKey::root(), vec![vec![2]], false);
        seq.deposit(0, SeqKey::root(), vec![vec![0]], false);
        assert_eq!(seq.next, 1);
        seq.deposit(1, SeqKey::root(), vec![vec![1]], false);
        assert_eq!(seq.next, 3);
        assert!(seq.pending.is_empty());
        assert_eq!(out.cliques, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn sequencer_holds_ranks_until_all_parts_arrive() {
        let mut out = CollectReporter::new();
        let mut seq = Sequencer::new(&mut out);
        // Rank 0 donates twice; parts arrive thief-first and out of key order.
        seq.register_donation(0);
        seq.register_donation(0);
        let first = SeqKey::root().child(u32::MAX);
        let second = SeqKey::root().child(u32::MAX - 1);
        seq.deposit(0, first, vec![vec![30]], false);
        assert_eq!(seq.next, 0, "incomplete rank must not emit");
        seq.deposit(0, SeqKey::root(), vec![vec![10]], false);
        assert_eq!(seq.next, 0);
        seq.deposit(0, second, vec![vec![20]], false);
        // Root part first, then the second (deeper) donation, then the first.
        assert_eq!(seq.next, 1);
        assert_eq!(seq.buffered_cliques, 0);
        drop(seq);
        assert_eq!(out.cliques, vec![vec![10], vec![20], vec![30]]);
    }

    #[test]
    fn stealing_ranks_cover_every_rank_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut seen = vec![0usize; 100];
        // Two interleaved consumers of the same counter.
        let mut a = StealingRanks::new(&counter, 100);
        let mut b = StealingRanks::new(&counter, 100);
        loop {
            let ra = a.next();
            let rb = b.next();
            if ra.is_none() && rb.is_none() {
                break;
            }
            for r in [ra, rb].into_iter().flatten() {
                seen[r] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn splitting_stats_balance_on_a_skewed_graph() {
        // A dense core plus sparse periphery: with an aggressive pool the
        // core's roots must donate, and splits/steals must balance. The bare
        // preset keeps the core's recursion alive (GR/ET would resolve it
        // without branching).
        let core = mce_gen::moon_moser(3);
        let mut g_edges = core.edges().collect::<Vec<_>>();
        for v in 9..40u32 {
            g_edges.push((v - 1, v));
        }
        let g = Graph::from_edges(40, g_edges).unwrap();
        let expected = naive_maximal_cliques(&g).len() as u64;
        let mut cfg = SolverConfig::hbbmc_bare();
        cfg.scheduler = RootScheduler::Splitting;
        let solver = Solver::new(&g, cfg).unwrap();
        let plan = solver.prepare();
        let results =
            run_workers_splitting(&solver, &plan, 4, aggressive_pool(), CountReporter::new);
        let mut total = 0;
        let mut merged = EnumerationStats::default();
        for (reporter, stats) in results {
            total += reporter.count;
            merged.merge(&stats);
        }
        assert_eq!(total, expected);
        assert!(merged.splits > 0);
        assert_eq!(merged.splits, merged.steals);
        assert!(merged.busy_time > std::time::Duration::ZERO);
    }
}
