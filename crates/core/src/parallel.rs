//! Parallel enumeration over root branches with dynamic work distribution.
//!
//! The paper's algorithms are sequential, but its root branching step (Eq. 1 /
//! Eq. 2) produces a large number of independent branches, which is exactly
//! the structure that shared-memory parallel MCE implementations exploit.
//! This module wires those branches to `std::thread::scope` scoped threads:
//!
//! * The graph reduction and root ordering are computed **once** into a
//!   shared [`RootPlan`](crate::solver) — previously every worker redid the
//!   `O(δm)` preprocessing, which dominated multi-threaded runs.
//! * Under the default [`RootScheduler::Dynamic`] policy, workers *pull*
//!   chunks of root ranks from a shared atomic counter as they drain their
//!   previous chunk. Root work is heavily skewed (a few hub vertices/edges
//!   own most of the recursion tree), so static `rank % threads` striping
//!   strands the fast workers; pulling keeps everyone busy until the queue is
//!   empty. [`RootScheduler::Static`] retains the old striping for
//!   deterministic per-worker assignment.
//! * Each worker owns a private scratch arena
//!   ([`EnumerationState`](crate::EnumerationState)-equivalent), so the
//!   recursion allocates nothing in steady state, and per-worker results are
//!   returned from the scoped threads' `JoinHandle`s and merged at join — no
//!   shared `Mutex` collection.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Instant;

use mce_graph::{Graph, VertexId};

use crate::config::{ConfigError, RootScheduler, SolverConfig};
use crate::report::{CliqueReporter, CollectReporter, CountReporter};
use crate::scratch::WorkerState;
use crate::solver::{RootPlan, Solver};
use crate::stats::EnumerationStats;

/// Ranks per atomic-counter claim. Small enough to balance skewed roots,
/// large enough to keep counter contention negligible.
const CHUNK: usize = 16;

/// An iterator handing out root ranks from a shared atomic counter in chunks.
struct StealingRanks<'a> {
    next_rank: &'a AtomicUsize,
    total: usize,
    current: usize,
    end: usize,
}

impl<'a> StealingRanks<'a> {
    fn new(next_rank: &'a AtomicUsize, total: usize) -> Self {
        StealingRanks {
            next_rank,
            total,
            current: 0,
            end: 0,
        }
    }
}

impl Iterator for StealingRanks<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.current == self.end {
            let start = self.next_rank.fetch_add(CHUNK, Ordering::Relaxed);
            if start >= self.total {
                return None;
            }
            self.current = start;
            self.end = (start + CHUNK).min(self.total);
        }
        let rank = self.current;
        self.current += 1;
        Some(rank)
    }
}

/// Runs `threads` workers over the shared plan, streaming cliques to the
/// per-worker reporters produced by `make_reporter`, and returns the
/// `(reporter, stats)` pairs collected from the join handles.
fn run_workers<R, F>(
    solver: &Solver<'_>,
    plan: &RootPlan,
    threads: usize,
    make_reporter: F,
) -> Vec<(R, EnumerationStats)>
where
    R: CliqueReporter + Send,
    F: Fn() -> R + Sync,
{
    let scheduler = solver.config().scheduler;
    let total = plan.root_count();
    let next_rank = AtomicUsize::new(0);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker_id| {
                let next_rank = &next_rank;
                let make_reporter = &make_reporter;
                scope.spawn(move || {
                    let mut reporter = make_reporter();
                    let mut state = WorkerState::new();
                    let stats = match scheduler {
                        RootScheduler::Dynamic => solver.run_on_plan(
                            plan,
                            StealingRanks::new(next_rank, total),
                            worker_id == 0,
                            &mut state,
                            &mut reporter,
                        ),
                        RootScheduler::Static => solver.run_on_plan(
                            plan,
                            (worker_id..total).step_by(threads),
                            worker_id == 0,
                            &mut state,
                            &mut reporter,
                        ),
                    };
                    (reporter, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    })
}

/// Counts maximal cliques using `threads` workers. Returns the total count and
/// the merged statistics (wall time is the maximum over workers).
pub fn par_count_maximal_cliques(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
) -> (u64, EnumerationStats) {
    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let results = run_workers(&solver, &plan, threads, CountReporter::new);

    let mut total = 0u64;
    let mut merged = EnumerationStats::default();
    for (reporter, stats) in results {
        total += reporter.count;
        merged.merge(&stats);
    }
    (total, merged)
}

/// Collects all maximal cliques using `threads` workers, in canonical order.
pub fn par_enumerate_collect(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
) -> (Vec<Vec<VertexId>>, EnumerationStats) {
    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let results = run_workers(&solver, &plan, threads, CollectReporter::new);

    let mut cliques = Vec::new();
    let mut merged = EnumerationStats::default();
    for (reporter, stats) in results {
        // CollectReporter already sorts each clique's members on report.
        cliques.extend(reporter.cliques);
        merged.merge(&stats);
    }
    cliques.sort();
    (cliques, merged)
}

/// Streams maximal cliques to a shared reporter from `threads` workers. The
/// reporter is locked per clique, so use this with cheap reporters (counters,
/// writers) rather than heavy computations.
pub fn par_enumerate_streaming<R: CliqueReporter + Send>(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
    reporter: &mut R,
) -> EnumerationStats {
    struct SharedReporter<'a, R: CliqueReporter> {
        inner: &'a Mutex<&'a mut R>,
    }
    impl<R: CliqueReporter> CliqueReporter for SharedReporter<'_, R> {
        fn report(&mut self, clique: &[VertexId]) {
            self.inner.lock().unwrap().report(clique);
        }
    }

    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let shared = Mutex::new(reporter);
    let results = run_workers(&solver, &plan, threads, || SharedReporter {
        inner: &shared,
    });

    let mut merged = EnumerationStats::default();
    for (_, stats) in results {
        merged.merge(&stats);
    }
    merged
}

// ----------------------------------------------------------------------
// Deterministic ordered streaming
// ----------------------------------------------------------------------

/// Per-rank clique buffer: preserves the sequential recursion order of one
/// root branch without sorting anything.
#[derive(Default)]
struct RankBuffer {
    cliques: Vec<Vec<VertexId>>,
}

impl CliqueReporter for RankBuffer {
    fn report(&mut self, clique: &[VertexId]) {
        self.cliques.push(clique.to_vec());
    }
}

/// Reorders per-rank clique buffers arriving from any worker in any order
/// into strict root-rank order before they reach the output reporter.
struct Sequencer<'a, R: CliqueReporter + ?Sized> {
    next: usize,
    pending: BTreeMap<usize, Vec<Vec<VertexId>>>,
    /// Total cliques currently parked in `pending` (the backpressure gauge).
    buffered_cliques: usize,
    out: &'a mut R,
}

impl<'a, R: CliqueReporter + ?Sized> Sequencer<'a, R> {
    fn new(out: &'a mut R) -> Self {
        Sequencer {
            next: 0,
            pending: BTreeMap::new(),
            buffered_cliques: 0,
            out,
        }
    }

    fn emit(&mut self, cliques: &[Vec<VertexId>]) {
        for clique in cliques {
            self.out.report(clique);
        }
        self.next += 1;
    }

    fn deposit(&mut self, rank: usize, cliques: Vec<Vec<VertexId>>) {
        if rank == self.next {
            self.emit(&cliques);
            while let Some(buffered) = self.pending.remove(&self.next) {
                self.buffered_cliques -= buffered.len();
                self.emit(&buffered);
            }
        } else {
            self.buffered_cliques += cliques.len();
            self.pending.insert(rank, cliques);
        }
    }
}

/// Out-of-order cliques the sequencer may park before depositors must wait
/// for the stream head to catch up. Bounds the ordered driver's memory at
/// roughly this many cliques (plus one in-flight rank per worker) instead of
/// the full result set when one early root branch is much slower than the
/// rest.
const SEQUENCER_BUFFER_CAP: usize = 1 << 16;

/// Deposits `cliques` for `rank`, waiting while the out-of-order buffer is
/// over `cap`. Deadlock-free: the depositor holding the next-to-emit rank
/// never waits (its deposit is what drains the buffer and advances `next`,
/// which eventually makes every waiting depositor the head of the stream).
fn bounded_deposit<R: CliqueReporter + ?Sized>(
    sequencer: &Mutex<Sequencer<'_, R>>,
    drained: &Condvar,
    cap: usize,
    rank: usize,
    cliques: Vec<Vec<VertexId>>,
) {
    let mut seq = sequencer.lock().expect("sequencer lock poisoned");
    while rank != seq.next && seq.buffered_cliques + cliques.len() > cap {
        seq = drained.wait(seq).expect("sequencer lock poisoned");
    }
    let advanced = rank == seq.next;
    seq.deposit(rank, cliques);
    if advanced {
        // `next` moved (possibly past several parked ranks): capacity was
        // freed and some waiter may now be the stream head.
        drained.notify_all();
    }
}

/// Streams maximal cliques to `reporter` in a deterministic order that is
/// independent of the thread count and of the [`RootScheduler`] variant: the
/// rank-independent output first (graph-reduction cliques, then isolated
/// vertices under edge-oriented branching), then the cliques of root rank 0,
/// rank 1, … — each rank's cliques in sequential recursion order. The stream
/// is byte-for-byte reproducible for any formatting reporter layered on top,
/// which is what the CLI's golden-output determinism gate enforces.
///
/// Workers still *claim* root branches according to `config.scheduler`; a
/// rank-order sequencer reorders their buffered output before it reaches
/// `reporter`. Memory is bounded: at most a fixed cap (currently 2¹⁶) of
/// out-of-order cliques are parked (plus one in-flight rank per worker) —
/// when one early root branch lags far behind the rest, later depositors
/// wait instead of accumulating the full result set.
pub fn par_enumerate_ordered<R: CliqueReporter + Send + ?Sized>(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
    reporter: &mut R,
) -> Result<EnumerationStats, ConfigError> {
    par_enumerate_ordered_with_cap(g, config, threads, SEQUENCER_BUFFER_CAP, reporter)
}

/// [`par_enumerate_ordered`] with an explicit out-of-order buffer cap
/// (exposed for tests that force the backpressure path).
fn par_enumerate_ordered_with_cap<R: CliqueReporter + Send + ?Sized>(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
    cap: usize,
    mut reporter: &mut R,
) -> Result<EnumerationStats, ConfigError> {
    let start = Instant::now();
    let threads = threads.max(1);
    let solver = Solver::new(g, *config)?;
    let plan = solver.prepare();
    let total = plan.root_count();

    // Rank-independent output first (deterministic given the plan).
    // `&mut reporter` re-borrows through the blanket `&mut R: CliqueReporter`
    // impl so unsized `R` still coerces to `&mut dyn CliqueReporter`.
    let mut merged = {
        let mut warm = WorkerState::new();
        solver.run_on_plan(&plan, std::iter::empty(), true, &mut warm, &mut reporter)
    };

    if threads == 1 {
        let mut state = WorkerState::new();
        let stats = solver.run_on_plan(&plan, 0..total, false, &mut state, &mut reporter);
        merged.merge(&stats);
        merged.elapsed = start.elapsed();
        return Ok(merged);
    }

    let scheduler = solver.config().scheduler;
    let sequencer = Mutex::new(Sequencer::new(reporter));
    let drained = Condvar::new();
    let next_rank = AtomicUsize::new(0);
    let worker_stats: Vec<EnumerationStats> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker_id| {
                let sequencer = &sequencer;
                let drained = &drained;
                let next_rank = &next_rank;
                let solver = &solver;
                let plan = &plan;
                scope.spawn(move || {
                    let mut state = WorkerState::new();
                    let mut stats = EnumerationStats::default();
                    let run_rank =
                        |rank: usize, state: &mut WorkerState, stats: &mut EnumerationStats| {
                            let mut buffer = RankBuffer::default();
                            let s = solver.run_on_plan(
                                plan,
                                std::iter::once(rank),
                                false,
                                state,
                                &mut buffer,
                            );
                            stats.merge(&s);
                            bounded_deposit(sequencer, drained, cap, rank, buffer.cliques);
                        };
                    match scheduler {
                        RootScheduler::Dynamic => {
                            for rank in StealingRanks::new(next_rank, total) {
                                run_rank(rank, &mut state, &mut stats);
                            }
                        }
                        RootScheduler::Static => {
                            for rank in (worker_id..total).step_by(threads) {
                                run_rank(rank, &mut state, &mut stats);
                            }
                        }
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    });
    for stats in &worker_stats {
        merged.merge(stats);
    }
    let sequencer = sequencer.into_inner().expect("sequencer lock poisoned");
    debug_assert_eq!(sequencer.next, total, "every rank must have been emitted");
    debug_assert!(sequencer.pending.is_empty());
    debug_assert_eq!(sequencer.buffered_cliques, 0);
    merged.elapsed = start.elapsed();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_maximal_cliques;
    use crate::report::{CliqueLineFormat, WriterReporter};
    use crate::solver::count_maximal_cliques;

    fn test_graph() -> Graph {
        // Two overlapping communities plus sparse periphery.
        Graph::from_edges(
            12,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (6, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (9, 11),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let g = test_graph();
        let (seq, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        for threads in [1, 2, 4, 7] {
            let (par, stats) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), threads);
            assert_eq!(par, seq, "threads = {threads}");
            assert_eq!(stats.maximal_cliques, seq);
        }
    }

    #[test]
    fn static_scheduler_matches_dynamic() {
        let g = test_graph();
        let (seq, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.scheduler = RootScheduler::Static;
        for threads in [1, 3, 5] {
            let (par, _) = par_count_maximal_cliques(&g, &cfg, threads);
            assert_eq!(par, seq, "static, threads = {threads}");
        }
    }

    #[test]
    fn parallel_collect_matches_reference() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g);
        let (got, _) = par_enumerate_collect(&g, &SolverConfig::r_degen(), 3);
        assert_eq!(got, expected);
    }

    #[test]
    fn streaming_reporter_sees_every_clique() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g).len() as u64;
        let mut counter = CountReporter::new();
        let stats = par_enumerate_streaming(&g, &SolverConfig::hbbmc_pp(), 4, &mut counter);
        assert_eq!(counter.count, expected);
        assert_eq!(stats.maximal_cliques, expected);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let g = Graph::complete(4);
        let (count, _) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), 0);
        assert_eq!(count, 1);
    }

    #[test]
    fn more_threads_than_roots_is_fine() {
        let g = Graph::complete(3); // one root survives reduction
        for threads in [2, 8, 16] {
            let (count, _) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), threads);
            assert_eq!(count, 1, "threads = {threads}");
        }
    }

    /// Renders the full ordered stream of `g` to text bytes.
    fn ordered_bytes(g: &Graph, cfg: &SolverConfig, threads: usize) -> Vec<u8> {
        let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
        par_enumerate_ordered(g, cfg, threads, &mut reporter).unwrap();
        reporter.finish().unwrap()
    }

    #[test]
    fn ordered_stream_is_byte_identical_across_threads_and_schedulers() {
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::hbbmc_pp(), 1);
        assert!(!baseline.is_empty());
        for scheduler in [RootScheduler::Dynamic, RootScheduler::Static] {
            let mut cfg = SolverConfig::hbbmc_pp();
            cfg.scheduler = scheduler;
            for threads in [1, 2, 4, 7] {
                let bytes = ordered_bytes(&g, &cfg, threads);
                assert_eq!(
                    bytes, baseline,
                    "scheduler {scheduler:?}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn ordered_stream_with_tiny_buffer_cap_still_matches() {
        // Forces the backpressure path: with cap 0 every out-of-order deposit
        // waits until its rank becomes the stream head.
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::hbbmc_pp(), 1);
        for cap in [0usize, 1, 3] {
            let mut reporter = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
            par_enumerate_ordered_with_cap(&g, &SolverConfig::hbbmc_pp(), 4, cap, &mut reporter)
                .unwrap();
            assert_eq!(reporter.finish().unwrap(), baseline, "cap {cap}");
        }
    }

    #[test]
    fn ordered_stream_reports_every_clique() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g);
        let mut collector = CollectReporter::new();
        let stats =
            par_enumerate_ordered(&g, &SolverConfig::hbbmc_pp(), 4, &mut collector).unwrap();
        assert_eq!(collector.into_sorted(), expected);
        assert_eq!(stats.maximal_cliques as usize, expected.len());
    }

    #[test]
    fn ordered_stream_matches_for_vertex_oriented_presets() {
        let g = test_graph();
        let baseline = ordered_bytes(&g, &SolverConfig::r_degen(), 1);
        for threads in [2, 5] {
            assert_eq!(
                ordered_bytes(&g, &SolverConfig::r_degen(), threads),
                baseline
            );
        }
    }

    #[test]
    fn ordered_stream_rejects_invalid_config() {
        let g = Graph::complete(3);
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.early_termination_t = 9;
        let mut reporter = CountReporter::new();
        assert!(par_enumerate_ordered(&g, &cfg, 2, &mut reporter).is_err());
    }

    #[test]
    fn sequencer_reorders_out_of_order_deposits() {
        let mut out = CollectReporter::new();
        let mut seq = Sequencer::new(&mut out);
        seq.deposit(2, vec![vec![2]]);
        seq.deposit(0, vec![vec![0]]);
        assert_eq!(seq.next, 1);
        seq.deposit(1, vec![vec![1]]);
        assert_eq!(seq.next, 3);
        assert!(seq.pending.is_empty());
        assert_eq!(out.cliques, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn stealing_ranks_cover_every_rank_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut seen = vec![0usize; 100];
        // Two interleaved consumers of the same counter.
        let mut a = StealingRanks::new(&counter, 100);
        let mut b = StealingRanks::new(&counter, 100);
        loop {
            let ra = a.next();
            let rb = b.next();
            if ra.is_none() && rb.is_none() {
                break;
            }
            for r in [ra, rb].into_iter().flatten() {
                seen[r] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }
}
