//! Parallel enumeration over root branches.
//!
//! The paper's algorithms are sequential, but its root branching step (Eq. 1 /
//! Eq. 2) produces a large number of independent branches, which is exactly
//! the structure that shared-memory parallel MCE implementations exploit. The
//! [`Solver::run_partition`](crate::Solver::run_partition) API exposes that
//! independence: each worker processes every `k`-th root branch, and the union
//! of the workers' outputs is the exact set of maximal cliques. This module
//! wires the partitions to `std::thread::scope` scoped threads; it is used by
//! the `parallel_enumeration` example and is a natural extension point rather
//! than part of the paper's evaluation.

use std::sync::Mutex;
use std::thread;

use mce_graph::{Graph, VertexId};

use crate::config::SolverConfig;
use crate::report::{CliqueReporter, CollectReporter, CountReporter};
use crate::solver::Solver;
use crate::stats::EnumerationStats;

/// Counts maximal cliques using `threads` workers. Returns the total count and
/// the merged statistics (wall time is the maximum over workers).
pub fn par_count_maximal_cliques(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
) -> (u64, EnumerationStats) {
    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let results: Mutex<Vec<(u64, EnumerationStats)>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for part in 0..threads {
            let solver = &solver;
            let results = &results;
            scope.spawn(move || {
                let mut reporter = CountReporter::new();
                let stats = solver.run_partition(part, threads, &mut reporter);
                results.lock().unwrap().push((reporter.count, stats));
            });
        }
    });

    let mut total = 0u64;
    let mut merged = EnumerationStats::default();
    for (count, stats) in results.into_inner().unwrap() {
        total += count;
        merged.merge(&stats);
    }
    (total, merged)
}

/// Collects all maximal cliques using `threads` workers, in canonical order.
pub fn par_enumerate_collect(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
) -> (Vec<Vec<VertexId>>, EnumerationStats) {
    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let results: Mutex<(Vec<Vec<VertexId>>, EnumerationStats)> =
        Mutex::new((Vec::new(), EnumerationStats::default()));

    thread::scope(|scope| {
        for part in 0..threads {
            let solver = &solver;
            let results = &results;
            scope.spawn(move || {
                let mut reporter = CollectReporter::new();
                let stats = solver.run_partition(part, threads, &mut reporter);
                let mut guard = results.lock().unwrap();
                guard.0.extend(reporter.cliques);
                guard.1.merge(&stats);
            });
        }
    });

    let (mut cliques, stats) = results.into_inner().unwrap();
    cliques.sort();
    (cliques, stats)
}

/// Streams maximal cliques to a shared reporter from `threads` workers. The
/// reporter is locked per clique, so use this with cheap reporters (counters,
/// writers) rather than heavy computations.
pub fn par_enumerate_streaming<R: CliqueReporter + Send>(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
    reporter: &mut R,
) -> EnumerationStats {
    struct SharedReporter<'a, R: CliqueReporter> {
        inner: &'a Mutex<&'a mut R>,
    }
    impl<R: CliqueReporter> CliqueReporter for SharedReporter<'_, R> {
        fn report(&mut self, clique: &[VertexId]) {
            self.inner.lock().unwrap().report(clique);
        }
    }

    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let shared = Mutex::new(reporter);
    let merged: Mutex<EnumerationStats> = Mutex::new(EnumerationStats::default());

    thread::scope(|scope| {
        for part in 0..threads {
            let solver = &solver;
            let shared = &shared;
            let merged = &merged;
            scope.spawn(move || {
                let mut local = SharedReporter { inner: shared };
                let stats = solver.run_partition(part, threads, &mut local);
                merged.lock().unwrap().merge(&stats);
            });
        }
    });

    merged.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_maximal_cliques;
    use crate::solver::count_maximal_cliques;

    fn test_graph() -> Graph {
        // Two overlapping communities plus sparse periphery.
        Graph::from_edges(
            12,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (6, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (9, 11),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let g = test_graph();
        let (seq, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        for threads in [1, 2, 4, 7] {
            let (par, stats) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), threads);
            assert_eq!(par, seq, "threads = {threads}");
            assert_eq!(stats.maximal_cliques, seq);
        }
    }

    #[test]
    fn parallel_collect_matches_reference() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g);
        let (got, _) = par_enumerate_collect(&g, &SolverConfig::r_degen(), 3);
        assert_eq!(got, expected);
    }

    #[test]
    fn streaming_reporter_sees_every_clique() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g).len() as u64;
        let mut counter = CountReporter::new();
        let stats = par_enumerate_streaming(&g, &SolverConfig::hbbmc_pp(), 4, &mut counter);
        assert_eq!(counter.count, expected);
        assert_eq!(stats.maximal_cliques, expected);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let g = Graph::complete(4);
        let (count, _) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), 0);
        assert_eq!(count, 1);
    }
}
