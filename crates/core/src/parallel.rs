//! Parallel enumeration over root branches with dynamic work distribution.
//!
//! The paper's algorithms are sequential, but its root branching step (Eq. 1 /
//! Eq. 2) produces a large number of independent branches, which is exactly
//! the structure that shared-memory parallel MCE implementations exploit.
//! This module wires those branches to `std::thread::scope` scoped threads:
//!
//! * The graph reduction and root ordering are computed **once** into a
//!   shared [`RootPlan`](crate::solver) — previously every worker redid the
//!   `O(δm)` preprocessing, which dominated multi-threaded runs.
//! * Under the default [`RootScheduler::Dynamic`] policy, workers *pull*
//!   chunks of root ranks from a shared atomic counter as they drain their
//!   previous chunk. Root work is heavily skewed (a few hub vertices/edges
//!   own most of the recursion tree), so static `rank % threads` striping
//!   strands the fast workers; pulling keeps everyone busy until the queue is
//!   empty. [`RootScheduler::Static`] retains the old striping for
//!   deterministic per-worker assignment.
//! * Each worker owns a private scratch arena
//!   ([`EnumerationState`](crate::EnumerationState)-equivalent), so the
//!   recursion allocates nothing in steady state, and per-worker results are
//!   returned from the scoped threads' `JoinHandle`s and merged at join — no
//!   shared `Mutex` collection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use mce_graph::{Graph, VertexId};

use crate::config::{RootScheduler, SolverConfig};
use crate::report::{CliqueReporter, CollectReporter, CountReporter};
use crate::scratch::WorkerState;
use crate::solver::{RootPlan, Solver};
use crate::stats::EnumerationStats;

/// Ranks per atomic-counter claim. Small enough to balance skewed roots,
/// large enough to keep counter contention negligible.
const CHUNK: usize = 16;

/// An iterator handing out root ranks from a shared atomic counter in chunks.
struct StealingRanks<'a> {
    next_rank: &'a AtomicUsize,
    total: usize,
    current: usize,
    end: usize,
}

impl<'a> StealingRanks<'a> {
    fn new(next_rank: &'a AtomicUsize, total: usize) -> Self {
        StealingRanks {
            next_rank,
            total,
            current: 0,
            end: 0,
        }
    }
}

impl Iterator for StealingRanks<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.current == self.end {
            let start = self.next_rank.fetch_add(CHUNK, Ordering::Relaxed);
            if start >= self.total {
                return None;
            }
            self.current = start;
            self.end = (start + CHUNK).min(self.total);
        }
        let rank = self.current;
        self.current += 1;
        Some(rank)
    }
}

/// Runs `threads` workers over the shared plan, streaming cliques to the
/// per-worker reporters produced by `make_reporter`, and returns the
/// `(reporter, stats)` pairs collected from the join handles.
fn run_workers<R, F>(
    solver: &Solver<'_>,
    plan: &RootPlan,
    threads: usize,
    make_reporter: F,
) -> Vec<(R, EnumerationStats)>
where
    R: CliqueReporter + Send,
    F: Fn() -> R + Sync,
{
    let scheduler = solver.config().scheduler;
    let total = plan.root_count();
    let next_rank = AtomicUsize::new(0);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker_id| {
                let next_rank = &next_rank;
                let make_reporter = &make_reporter;
                scope.spawn(move || {
                    let mut reporter = make_reporter();
                    let mut state = WorkerState::new();
                    let stats = match scheduler {
                        RootScheduler::Dynamic => solver.run_on_plan(
                            plan,
                            StealingRanks::new(next_rank, total),
                            worker_id == 0,
                            &mut state,
                            &mut reporter,
                        ),
                        RootScheduler::Static => solver.run_on_plan(
                            plan,
                            (worker_id..total).step_by(threads),
                            worker_id == 0,
                            &mut state,
                            &mut reporter,
                        ),
                    };
                    (reporter, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    })
}

/// Counts maximal cliques using `threads` workers. Returns the total count and
/// the merged statistics (wall time is the maximum over workers).
pub fn par_count_maximal_cliques(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
) -> (u64, EnumerationStats) {
    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let results = run_workers(&solver, &plan, threads, CountReporter::new);

    let mut total = 0u64;
    let mut merged = EnumerationStats::default();
    for (reporter, stats) in results {
        total += reporter.count;
        merged.merge(&stats);
    }
    (total, merged)
}

/// Collects all maximal cliques using `threads` workers, in canonical order.
pub fn par_enumerate_collect(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
) -> (Vec<Vec<VertexId>>, EnumerationStats) {
    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let results = run_workers(&solver, &plan, threads, CollectReporter::new);

    let mut cliques = Vec::new();
    let mut merged = EnumerationStats::default();
    for (reporter, stats) in results {
        // CollectReporter already sorts each clique's members on report.
        cliques.extend(reporter.cliques);
        merged.merge(&stats);
    }
    cliques.sort();
    (cliques, merged)
}

/// Streams maximal cliques to a shared reporter from `threads` workers. The
/// reporter is locked per clique, so use this with cheap reporters (counters,
/// writers) rather than heavy computations.
pub fn par_enumerate_streaming<R: CliqueReporter + Send>(
    g: &Graph,
    config: &SolverConfig,
    threads: usize,
    reporter: &mut R,
) -> EnumerationStats {
    struct SharedReporter<'a, R: CliqueReporter> {
        inner: &'a Mutex<&'a mut R>,
    }
    impl<R: CliqueReporter> CliqueReporter for SharedReporter<'_, R> {
        fn report(&mut self, clique: &[VertexId]) {
            self.inner.lock().unwrap().report(clique);
        }
    }

    let threads = threads.max(1);
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let plan = solver.prepare();
    let shared = Mutex::new(reporter);
    let results = run_workers(&solver, &plan, threads, || SharedReporter {
        inner: &shared,
    });

    let mut merged = EnumerationStats::default();
    for (_, stats) in results {
        merged.merge(&stats);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_maximal_cliques;
    use crate::solver::count_maximal_cliques;

    fn test_graph() -> Graph {
        // Two overlapping communities plus sparse periphery.
        Graph::from_edges(
            12,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (6, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (9, 11),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let g = test_graph();
        let (seq, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        for threads in [1, 2, 4, 7] {
            let (par, stats) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), threads);
            assert_eq!(par, seq, "threads = {threads}");
            assert_eq!(stats.maximal_cliques, seq);
        }
    }

    #[test]
    fn static_scheduler_matches_dynamic() {
        let g = test_graph();
        let (seq, _) = count_maximal_cliques(&g, &SolverConfig::hbbmc_pp());
        let mut cfg = SolverConfig::hbbmc_pp();
        cfg.scheduler = RootScheduler::Static;
        for threads in [1, 3, 5] {
            let (par, _) = par_count_maximal_cliques(&g, &cfg, threads);
            assert_eq!(par, seq, "static, threads = {threads}");
        }
    }

    #[test]
    fn parallel_collect_matches_reference() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g);
        let (got, _) = par_enumerate_collect(&g, &SolverConfig::r_degen(), 3);
        assert_eq!(got, expected);
    }

    #[test]
    fn streaming_reporter_sees_every_clique() {
        let g = test_graph();
        let expected = naive_maximal_cliques(&g).len() as u64;
        let mut counter = CountReporter::new();
        let stats = par_enumerate_streaming(&g, &SolverConfig::hbbmc_pp(), 4, &mut counter);
        assert_eq!(counter.count, expected);
        assert_eq!(stats.maximal_cliques, expected);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let g = Graph::complete(4);
        let (count, _) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), 0);
        assert_eq!(count, 1);
    }

    #[test]
    fn more_threads_than_roots_is_fine() {
        let g = Graph::complete(3); // one root survives reduction
        for threads in [2, 8, 16] {
            let (count, _) = par_count_maximal_cliques(&g, &SolverConfig::hbbmc_pp(), threads);
            assert_eq!(count, 1, "threads = {threads}");
        }
    }

    #[test]
    fn stealing_ranks_cover_every_rank_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut seen = vec![0usize; 100];
        // Two interleaved consumers of the same counter.
        let mut a = StealingRanks::new(&counter, 100);
        let mut b = StealingRanks::new(&counter, 100);
        loop {
            let ra = a.next();
            let rb = b.next();
            if ra.is_none() && rb.is_none() {
                break;
            }
            for r in [ra, rb].into_iter().flatten() {
                seen[r] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }
}
