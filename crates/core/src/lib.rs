//! # hbbmc — Maximal Clique Enumeration with Hybrid Branching and Early Termination
//!
//! A from-scratch Rust implementation of the algorithms in *"Maximal Clique
//! Enumeration with Hybrid Branching and Early Termination"* (Wang, Yu & Long,
//! ICDE 2025), together with every baseline the paper compares against.
//!
//! ## What's inside
//!
//! * **`VBBMC`** — the vertex-oriented Bron–Kerbosch branch-and-bound family:
//!   plain BK, `BK_Pivot` (Tomita), `BK_Ref` (refined pivoting), `BK_Degen`
//!   (degeneracy ordering), `BK_Degree`, `BK_Rcd` and `BK_Fac`, each available
//!   with the graph-reduction preprocessing (`RRef`, `RDegen`, `RRcd`, `RFac`).
//! * **`EBBMC`** — edge-oriented BK branching with the truss-based edge
//!   ordering (Eq. 2 / Eq. 3 of the paper).
//! * **`HBBMC`** — the hybrid framework: edge-oriented branching at the root
//!   (bounding every sub-branch by the truss parameter τ < δ), classic-pivot
//!   vertex-oriented branching below, with worst-case time
//!   `O(δm + τm·3^{τ/3})`.
//! * **Early termination** — branches whose candidate graph is a t-plex
//!   (t ≤ 3) with an empty exclusion set emit their maximal cliques directly
//!   from the complement's paths and cycles (Algorithms 5–8).
//! * **Graph reduction** — simplicial vertices are reported and removed up
//!   front, acting as permanent exclusion members afterwards.
//! * A **parallel driver** over independent root branches, a **reference
//!   enumerator** and **verification utilities** for testing.
//!
//! ## Quick start
//!
//! ```
//! use hbbmc::{enumerate_collect, SolverConfig};
//! use mce_graph::Graph;
//!
//! // Two triangles sharing the edge (0, 2).
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]).unwrap();
//! let (cliques, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
//! assert_eq!(cliques, vec![vec![0, 1, 2], vec![0, 2, 3]]);
//! assert_eq!(stats.maximal_cliques, 2);
//! ```
//!
//! Named presets ([`SolverConfig::hbbmc_pp`], [`SolverConfig::r_degen`], …)
//! map one-to-one onto the algorithm names used in the paper's tables; the
//! `mce-bench` crate uses them to regenerate every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod config;
pub mod early_term;
pub mod kclique;
pub mod local;
pub mod maxclique;
pub mod naive;
pub mod parallel;
pub mod pivot;
mod pool;
pub mod query;
pub mod reduction;
pub mod report;
mod scratch;
pub mod solver;
pub mod stats;
pub mod verify;

pub use budget::{Budget, CancelToken, Outcome, TruncationReason};
pub use config::{
    ConfigError, InitialBranching, PivotStrategy, RecursionStrategy, RootScheduler, SolverConfig,
};
pub use kclique::{
    count_k_cliques, for_each_k_clique, for_each_k_clique_budgeted, k_clique_census, list_k_cliques,
};
pub use maxclique::{
    greedy_lower_bound, maximum_clique_bb, maximum_clique_bb_with_state, MaxCliqueState,
    TerminatingBound,
};
pub use naive::{naive_count, naive_maximal_cliques, naive_maximal_cliques_budgeted};
pub use parallel::{
    par_count_maximal_cliques, par_count_with_worker_stats, par_enumerate_collect,
    par_enumerate_ordered, par_enumerate_ordered_budgeted, par_enumerate_ordered_observed,
    par_enumerate_streaming, EngineError, ProgressCounters,
};
pub use query::{run_query, ExecSession, Query, QueryError, QueryResult, QuerySpec, QueryValue};
pub use report::{
    CallbackReporter, CliqueLineFormat, CliqueReporter, CollectReporter, CountReporter,
    MaximumCliqueReporter, MinSizeFilter, SizeHistogramReporter, TopKReporter, WriterReporter,
};
pub use solver::{
    count_maximal_cliques, enumerate, enumerate_collect, maximum_clique, EnumerationState, Solver,
};
pub use stats::EnumerationStats;
pub use verify::{
    is_maximal_clique, matches_reference, matches_reference_budgeted, verify_cliques,
    ReferenceError, Violation,
};

// Re-export the substrate types users need to build inputs.
pub use mce_graph::{Graph, GraphBuilder, GraphStats, VertexId};
