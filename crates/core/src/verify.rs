//! Verification utilities for enumeration output.
//!
//! Used by the integration tests, the property tests and the examples to
//! check the three defining properties of a correct MCE result: every reported
//! set is a clique, every reported set is maximal, and the collection contains
//! no duplicates (completeness is checked against [`crate::naive`] on small
//! graphs).

use std::collections::HashSet;

use mce_graph::{Graph, VertexId};

use crate::budget::{Budget, TruncationReason};

/// A violation found while verifying an enumeration result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The set at this index is not a clique.
    NotAClique(usize),
    /// The set at this index is a clique but not maximal; the extra vertex
    /// proves it.
    NotMaximal(usize, VertexId),
    /// Two indices hold the same vertex set.
    Duplicate(usize, usize),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotAClique(i) => write!(f, "set #{i} is not a clique"),
            Violation::NotMaximal(i, v) => {
                write!(f, "set #{i} is not maximal (vertex {v} extends it)")
            }
            Violation::Duplicate(i, j) => write!(f, "sets #{i} and #{j} are identical"),
        }
    }
}

/// Whether `set` is a maximal clique of `g`.
pub fn is_maximal_clique(g: &Graph, set: &[VertexId]) -> bool {
    if set.is_empty() || !g.is_clique(set) {
        return false;
    }
    find_extending_vertex(g, set).is_none()
}

/// Finds a vertex adjacent to every member of `set`, if any.
pub fn find_extending_vertex(g: &Graph, set: &[VertexId]) -> Option<VertexId> {
    if set.is_empty() {
        return g.vertices().next();
    }
    // Intersect the neighbourhoods, starting from the smallest one.
    let pivot = *set.iter().min_by_key(|&&v| g.degree(v))?;
    g.neighbors(pivot)
        .iter()
        .copied()
        .find(|&cand| !set.contains(&cand) && set.iter().all(|&s| s == cand || g.has_edge(s, cand)))
}

/// Verifies that `cliques` are distinct maximal cliques of `g`.
///
/// Returns every violation found (empty vector = valid). Completeness is *not*
/// checked here; compare against [`crate::naive::naive_maximal_cliques`] for that.
pub fn verify_cliques(g: &Graph, cliques: &[Vec<VertexId>]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut seen: std::collections::HashMap<Vec<VertexId>, usize> =
        std::collections::HashMap::new();
    for (i, clique) in cliques.iter().enumerate() {
        if !g.is_clique(clique) || clique.is_empty() {
            violations.push(Violation::NotAClique(i));
            continue;
        }
        if let Some(v) = find_extending_vertex(g, clique) {
            violations.push(Violation::NotMaximal(i, v));
        }
        let mut key = clique.clone();
        key.sort_unstable();
        if let Some(&j) = seen.get(&key) {
            violations.push(Violation::Duplicate(j, i));
        } else {
            seen.insert(key, i);
        }
    }
    violations
}

/// Why a budgeted reference comparison could not be completed or failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReferenceError {
    /// The result differs from the reference; the message names the first
    /// difference.
    Mismatch(String),
    /// The reference enumeration's [`Budget`] tripped before completing, so
    /// completeness could not be decided.
    BudgetExhausted(TruncationReason),
}

impl std::fmt::Display for ReferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReferenceError::Mismatch(msg) => write!(f, "{msg}"),
            ReferenceError::BudgetExhausted(reason) => write!(
                f,
                "naive reference enumeration exhausted its budget ({reason}) before completing"
            ),
        }
    }
}

impl std::error::Error for ReferenceError {}

/// Compares an enumeration result against the reference enumerator. Both sides
/// are canonicalised, so order does not matter. Returns `Ok(())` or a message
/// describing the first difference.
pub fn matches_reference(g: &Graph, cliques: &[Vec<VertexId>]) -> Result<(), String> {
    match matches_reference_budgeted(g, cliques, &Budget::unlimited()) {
        Ok(()) => Ok(()),
        Err(ReferenceError::Mismatch(msg)) => Err(msg),
        Err(e @ ReferenceError::BudgetExhausted(_)) => {
            unreachable!("unlimited budget cannot trip: {e}")
        }
    }
}

/// [`matches_reference`] with the exponential reference enumeration bounded
/// by a shared [`Budget`]: when the budget trips before the reference run
/// completes, the comparison is abandoned with
/// [`ReferenceError::BudgetExhausted`] instead of running unboundedly.
pub fn matches_reference_budgeted(
    g: &Graph,
    cliques: &[Vec<VertexId>],
    budget: &Budget,
) -> Result<(), ReferenceError> {
    let mut got: Vec<Vec<VertexId>> = cliques
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.sort_unstable();
            c
        })
        .collect();
    got.sort();
    let want = crate::naive::naive_maximal_cliques_budgeted(g, budget)
        .map_err(ReferenceError::BudgetExhausted)?;
    if got == want {
        return Ok(());
    }
    let got_set: HashSet<&Vec<VertexId>> = got.iter().collect();
    let want_set: HashSet<&Vec<VertexId>> = want.iter().collect();
    if let Some(missing) = want.iter().find(|c| !got_set.contains(c)) {
        return Err(ReferenceError::Mismatch(format!(
            "missing maximal clique {missing:?} ({} vs {} expected)",
            got.len(),
            want.len()
        )));
    }
    if let Some(extra) = got.iter().find(|c| !want_set.contains(c)) {
        return Err(ReferenceError::Mismatch(format!(
            "extra clique {extra:?} ({} vs {} expected)",
            got.len(),
            want.len()
        )));
    }
    Err(ReferenceError::Mismatch(format!(
        "duplicate cliques reported ({} vs {} expected)",
        got.len(),
        want.len()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn maximal_clique_detection() {
        let g = two_triangles();
        assert!(is_maximal_clique(&g, &[0, 1, 2]));
        assert!(is_maximal_clique(&g, &[0, 2, 3]));
        assert!(!is_maximal_clique(&g, &[0, 2]), "extendable by 1 or 3");
        assert!(!is_maximal_clique(&g, &[1, 3]), "not a clique");
        assert!(!is_maximal_clique(&g, &[]));
    }

    #[test]
    fn extending_vertex_found() {
        let g = two_triangles();
        let v = find_extending_vertex(&g, &[0, 2]).unwrap();
        assert!(v == 1 || v == 3);
        assert_eq!(find_extending_vertex(&g, &[0, 1, 2]), None);
    }

    #[test]
    fn verify_accepts_correct_output() {
        let g = two_triangles();
        let cliques = vec![vec![0, 1, 2], vec![0, 2, 3]];
        assert!(verify_cliques(&g, &cliques).is_empty());
        assert!(matches_reference(&g, &cliques).is_ok());
    }

    #[test]
    fn verify_flags_non_clique_and_non_maximal_and_duplicates() {
        let g = two_triangles();
        let cliques = vec![vec![1, 3], vec![0, 2], vec![0, 1, 2], vec![2, 1, 0]];
        let violations = verify_cliques(&g, &cliques);
        assert!(violations.contains(&Violation::NotAClique(0)));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::NotMaximal(1, _))));
        assert!(violations.contains(&Violation::Duplicate(2, 3)));
    }

    #[test]
    fn matches_reference_reports_missing_and_extra() {
        let g = two_triangles();
        let err = matches_reference(&g, &[vec![0, 1, 2]]).unwrap_err();
        assert!(err.contains("missing"));
        let err = matches_reference(&g, &[vec![0, 1, 2], vec![0, 2, 3], vec![0, 3]]).unwrap_err();
        assert!(err.contains("extra"));
    }

    #[test]
    fn budgeted_reference_check_reports_exhaustion() {
        let g = Graph::complete(8);
        let err = matches_reference_budgeted(&g, &[vec![0]], &Budget::steps(1)).unwrap_err();
        assert_eq!(
            err,
            ReferenceError::BudgetExhausted(TruncationReason::StepLimit)
        );
        assert!(err.to_string().contains("exhausted its budget"));
        // With enough budget the mismatch is reported as usual.
        let err = matches_reference_budgeted(&g, &[vec![0]], &Budget::unlimited()).unwrap_err();
        assert!(matches!(err, ReferenceError::Mismatch(_)));
    }

    #[test]
    fn violation_display() {
        assert!(Violation::NotAClique(3).to_string().contains("#3"));
        assert!(Violation::NotMaximal(1, 9).to_string().contains("9"));
        assert!(Violation::Duplicate(0, 2).to_string().contains("identical"));
    }
}
