//! Graph-reduction (GR) preprocessing.
//!
//! Deng, Zheng & Cheng (VLDB'24) accelerate every Bron–Kerbosch variant by
//! eliminating branches rooted at low-degree vertices and reporting the
//! maximal cliques that involve them directly. The paper treats GR as
//! orthogonal to the branching framework and enables it for every baseline
//! (`RRef`, `RDegen`, `RRcd`, `RFac`) as well as for `HBBMC++`; we do the same.
//!
//! The reduction implemented here removes every **simplicial** vertex of the
//! input graph — a vertex whose closed neighbourhood `N[v]` induces a clique.
//! For such a vertex `N[v]` is the unique maximal clique containing `v`, so it
//! can be reported immediately (deduplicated across simplicial vertices
//! sharing the same closed neighbourhood) and `v` never needs to seed a
//! branch. Vertices of degree 0 and 1, the primary target of the original
//! reduction rules, are always simplicial. During the main enumeration the
//! removed vertices act as permanent members of the exclusion set of every
//! branch they are adjacent to, which preserves maximality checking against
//! the *original* graph.

use mce_graph::{GraphTopology, VertexId};

/// Result of the graph-reduction preprocessing.
#[derive(Clone, Debug, Default)]
pub(crate) struct Reduction {
    /// `removed[v]` is true when `v` was eliminated by the reduction.
    pub removed: Vec<bool>,
    /// Maximal cliques reported directly by the reduction (each sorted).
    pub cliques: Vec<Vec<VertexId>>,
}

impl Reduction {
    /// A no-op reduction for graphs where GR is disabled.
    pub fn disabled(n: usize) -> Self {
        Reduction {
            removed: vec![false; n],
            cliques: Vec::new(),
        }
    }

    /// Number of removed vertices.
    pub fn removed_count(&self) -> usize {
        self.removed.iter().filter(|&&r| r).count()
    }
}

/// Runs the reduction on `g`.
pub(crate) fn reduce<G: GraphTopology>(g: &G) -> Reduction {
    let n = g.n();
    let mut nv: Vec<VertexId> = Vec::new();
    let mut simplicial = vec![false; n];
    for v in 0..n as VertexId {
        nv.clear();
        nv.extend(g.neighbors_iter(v));
        simplicial[v as usize] = is_simplicial(g, &nv);
    }

    let mut cliques = Vec::new();
    for v in 0..n as VertexId {
        if !simplicial[v as usize] {
            continue;
        }
        // Report N[v] only for the smallest simplicial vertex of the clique:
        // two adjacent simplicial vertices necessarily share the same closed
        // neighbourhood.
        let dominated = g.neighbors_iter(v).any(|u| u < v && simplicial[u as usize]);
        if dominated {
            continue;
        }
        let mut clique: Vec<VertexId> = g.neighbors_iter(v).collect();
        clique.push(v);
        clique.sort_unstable();
        cliques.push(clique);
    }

    Reduction {
        removed: simplicial,
        cliques,
    }
}

/// Whether the vertex set `nv` (a sorted neighbourhood) induces a clique.
fn is_simplicial<G: GraphTopology>(g: &G, nv: &[VertexId]) -> bool {
    for (i, &a) in nv.iter().enumerate() {
        for &b in &nv[i + 1..] {
            if !g.has_edge(a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::Graph;

    #[test]
    fn isolated_and_pendant_vertices_are_reduced() {
        // 0 isolated; 1-2 edge; triangle 3-4-5 with pendant 6 on 3.
        let g = Graph::from_edges(7, [(1, 2), (3, 4), (4, 5), (3, 5), (3, 6)]).unwrap();
        let r = reduce(&g);
        assert!(r.removed[0], "isolated vertex is simplicial");
        assert!(
            r.removed[1] && r.removed[2],
            "degree-1 endpoints are simplicial"
        );
        assert!(r.removed[6], "pendant vertex is simplicial");
        assert!(
            r.removed[4] && r.removed[5],
            "triangle corners not shared with others"
        );
        assert!(
            !r.removed[3],
            "vertex 3 has non-adjacent neighbours 4/5 vs 6"
        );
        let mut cliques = r.cliques.clone();
        cliques.sort();
        assert!(cliques.contains(&vec![0]));
        assert!(cliques.contains(&vec![1, 2]));
        assert!(cliques.contains(&vec![3, 4, 5]));
        assert!(cliques.contains(&vec![3, 6]));
        assert_eq!(cliques.len(), 4);
    }

    #[test]
    fn clique_graph_reports_single_clique() {
        let g = Graph::complete(5);
        let r = reduce(&g);
        assert_eq!(r.removed_count(), 5);
        assert_eq!(r.cliques, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn cycle_has_no_simplicial_vertices() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let r = reduce(&g);
        assert_eq!(r.removed_count(), 0);
        assert!(r.cliques.is_empty());
    }

    #[test]
    fn reported_cliques_are_maximal_in_original_graph() {
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (6, 7),
            ],
        )
        .unwrap();
        let r = reduce(&g);
        for clique in &r.cliques {
            assert!(g.is_clique(clique));
            // No outside vertex adjacent to all members.
            for v in 0..g.n() as VertexId {
                if clique.contains(&v) {
                    continue;
                }
                assert!(
                    !clique.iter().all(|&c| g.has_edge(c, v)),
                    "clique {clique:?} extendable by {v}"
                );
            }
        }
    }

    #[test]
    fn disabled_reduction_removes_nothing() {
        let r = Reduction::disabled(4);
        assert_eq!(r.removed_count(), 0);
        assert!(r.cliques.is_empty());
        assert_eq!(r.removed.len(), 4);
    }

    #[test]
    fn duplicate_closed_neighborhoods_reported_once() {
        // Two disjoint triangles: each triangle reported exactly once.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let r = reduce(&g);
        assert_eq!(r.cliques.len(), 2);
        assert_eq!(r.removed_count(), 6);
    }
}
