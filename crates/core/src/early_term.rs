//! Early termination: constructing maximal cliques of a dense candidate graph
//! directly from its complement (Algorithms 5–8 of the paper).
//!
//! When a branch `(S, gC, gX)` reaches a state where `gC` is a t-plex
//! (`t ≤ 3`) and `gX` is empty, the complement of `gC` has maximum degree at
//! most 2 and therefore decomposes into isolated vertices `F`, simple paths
//! and simple cycles. Every maximal clique of `gC` is obtained by taking all
//! of `F` plus, independently for each path and each cycle, one *maximal
//! independent set* of that path/cycle (an independent set in the complement
//! is a clique in `gC`). The paths' and cycles' maximal independent sets are
//! enumerated by the +2/+3 expansion of Algorithm 6 and the three-case
//! reduction of Algorithm 7; the cross product of the per-component choices
//! (lines 5–8 of Algorithm 8) yields every maximal clique of the branch in
//! time proportional to the output.

use mce_graph::{BitsRef, ComplementStructure, VertexId};

use crate::local::LocalGraph;

/// Enumerates all maximal cliques of the branch `(S, C, ∅)` assuming the
/// candidate set `C` induces (in the true graph adjacency) a t-plex with
/// `t ≤ 3` and that no candidate edge was excluded. Each clique is passed to
/// `emit` as `S ∪ F ∪ (per-component choice)`.
///
/// Returns the number of cliques emitted, or `None` if the complement of `C`
/// turned out to have a vertex of degree > 2 (the precondition did not hold),
/// in which case nothing was emitted and the caller should fall back to
/// regular branching.
pub(crate) fn enumerate_plex_branch(
    lg: &LocalGraph,
    c: BitsRef<'_>,
    s: &mut Vec<VertexId>,
    emit: &mut dyn FnMut(&[VertexId]),
) -> Option<u64> {
    let members: Vec<usize> = c.iter().collect();
    let k = members.len();
    if k == 0 {
        return Some(0);
    }

    // Complement adjacency among the members, using member *positions* as ids.
    let mut complement: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for (i, &vi) in members.iter().enumerate() {
        for (j, &vj) in members.iter().enumerate().skip(i + 1) {
            if !lg.gadj_contains(vi, vj) {
                complement[i].push(j as VertexId);
                complement[j].push(i as VertexId);
            }
        }
    }

    let structure = ComplementStructure::from_adjacency(&complement)?;
    debug_assert_eq!(structure.total_vertices(), k);

    // Per-component choice lists (positions into `members`).
    let mut component_choices: Vec<Vec<Vec<VertexId>>> = Vec::new();
    for path in &structure.paths {
        component_choices.push(path_choices(path));
    }
    for cycle in &structure.cycles {
        component_choices.push(cycle_choices(cycle));
    }

    let base_len = s.len();
    // F is part of every maximal clique.
    for &f in &structure.isolated {
        s.push(lg.orig[members[f as usize]]);
    }

    let mut emitted = 0u64;
    cross_product(lg, &members, &component_choices, 0, s, emit, &mut emitted);

    s.truncate(base_len);
    Some(emitted)
}

/// Recursively walks the cross product of the per-component choices.
fn cross_product(
    lg: &LocalGraph,
    members: &[usize],
    component_choices: &[Vec<Vec<VertexId>>],
    idx: usize,
    s: &mut Vec<VertexId>,
    emit: &mut dyn FnMut(&[VertexId]),
    emitted: &mut u64,
) {
    if idx == component_choices.len() {
        emit(s);
        *emitted += 1;
        return;
    }
    for choice in &component_choices[idx] {
        let before = s.len();
        for &pos in choice {
            s.push(lg.orig[members[pos as usize]]);
        }
        cross_product(lg, members, component_choices, idx + 1, s, emit, emitted);
        s.truncate(before);
    }
}

/// Algorithm 6: the maximal independent sets of a simple (complement) path,
/// returned as lists of the path's vertex labels.
pub(crate) fn path_choices(path: &[VertexId]) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    match path.len() {
        0 => {}
        1 => out.push(vec![path[0]]),
        _ => {
            let mut acc = Vec::new();
            expand_path(path, 0, &mut acc, &mut out);
            expand_path(path, 1, &mut acc, &mut out);
        }
    }
    out
}

/// The +2 / +3 expansion step of Algorithm 6 (0-based indices).
fn expand_path(
    path: &[VertexId],
    idx: usize,
    acc: &mut Vec<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
) {
    acc.push(path[idx]);
    if idx + 2 >= path.len() {
        out.push(acc.clone());
    } else {
        expand_path(path, idx + 2, acc, out);
        if idx + 3 < path.len() {
            expand_path(path, idx + 3, acc, out);
        }
    }
    acc.pop();
}

/// Algorithm 7: the maximal independent sets of a simple (complement) cycle.
pub(crate) fn cycle_choices(cycle: &[VertexId]) -> Vec<Vec<VertexId>> {
    let l = cycle.len();
    match l {
        0..=2 => path_choices(cycle),
        3 => vec![vec![cycle[0]], vec![cycle[1]], vec![cycle[2]]],
        4 => vec![vec![cycle[0], cycle[2]], vec![cycle[1], cycle[3]]],
        5 => vec![
            vec![cycle[0], cycle[2]],
            vec![cycle[0], cycle[3]],
            vec![cycle[1], cycle[3]],
            vec![cycle[1], cycle[4]],
            vec![cycle[2], cycle[4]],
        ],
        _ => {
            let mut out = Vec::new();
            let mut acc = Vec::new();
            // Case 1: v1 in the clique — walk the path v1 … v_{l-1}.
            expand_path(&cycle[0..l - 1], 0, &mut acc, &mut out);
            // Case 2: v2 in the clique — walk the path v2 … v_l.
            expand_path(&cycle[1..l], 0, &mut acc, &mut out);
            // Case 3: neither v1 nor v2 — v_l and v3 are forced, walk v3 … v_{l-2}.
            acc.push(cycle[l - 1]);
            expand_path(&cycle[2..l - 2], 0, &mut acc, &mut out);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::{BitSet, Graph};

    fn choices_sorted(mut v: Vec<Vec<VertexId>>) -> Vec<Vec<VertexId>> {
        for c in v.iter_mut() {
            c.sort_unstable();
        }
        v.sort();
        v
    }

    #[test]
    fn path_choices_small_lengths() {
        assert!(path_choices(&[]).is_empty());
        assert_eq!(path_choices(&[7]), vec![vec![7]]);
        assert_eq!(
            choices_sorted(path_choices(&[0, 1])),
            vec![vec![0], vec![1]]
        );
        assert_eq!(
            choices_sorted(path_choices(&[0, 1, 2])),
            vec![vec![0, 2], vec![1]]
        );
        assert_eq!(
            choices_sorted(path_choices(&[0, 1, 2, 3])),
            vec![vec![0, 2], vec![0, 3], vec![1, 3]]
        );
    }

    /// Reference: maximal independent sets of a path/cycle by brute force.
    fn brute_force_mis(n: usize, cycle: bool) -> Vec<Vec<VertexId>> {
        let adjacent = |a: usize, b: usize| {
            (a + 1 == b || b + 1 == a)
                || (cycle && ((a == 0 && b == n - 1) || (b == 0 && a == n - 1)))
        };
        let mut out = Vec::new();
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            let independent = set
                .iter()
                .all(|&a| set.iter().all(|&b| a == b || !adjacent(a, b)));
            if !independent || set.is_empty() {
                continue;
            }
            let maximal = (0..n)
                .filter(|i| !set.contains(i))
                .all(|v| set.iter().any(|&a| adjacent(a, v)));
            if maximal {
                out.push(set.iter().map(|&v| v as VertexId).collect());
            }
        }
        out.sort();
        out
    }

    #[test]
    fn path_choices_match_brute_force_up_to_ten() {
        for n in 2..=10usize {
            let path: Vec<VertexId> = (0..n as VertexId).collect();
            let got = choices_sorted(path_choices(&path));
            let want = brute_force_mis(n, false);
            assert_eq!(got, want, "path length {n}");
        }
    }

    #[test]
    fn cycle_choices_match_brute_force_up_to_ten() {
        for n in 3..=10usize {
            let cycle: Vec<VertexId> = (0..n as VertexId).collect();
            let got = choices_sorted(cycle_choices(&cycle));
            let want = brute_force_mis(n, true);
            assert_eq!(got, want, "cycle length {n}");
        }
    }

    #[test]
    fn clique_candidate_emits_single_clique() {
        let g = Graph::complete(5);
        let lg = LocalGraph::from_vertices(&g, &[0, 1, 2, 3, 4]);
        let c = BitSet::full(5);
        let mut s = vec![100];
        let mut got = Vec::new();
        let count = enumerate_plex_branch(&lg, c.view(), &mut s, &mut |cl| {
            let mut v = cl.to_vec();
            v.sort_unstable();
            got.push(v);
        })
        .unwrap();
        assert_eq!(count, 1);
        assert_eq!(got, vec![vec![0, 1, 2, 3, 4, 100]]);
        assert_eq!(s, vec![100], "partial clique restored");
    }

    #[test]
    fn two_plex_figure3_example() {
        // Paper Figure 3: complement is the matching {(2,4), (3,5)} → 4 maximal cliques.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                if (u, v) != (2, 4) && (u, v) != (3, 5) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        let lg = LocalGraph::from_vertices(&g, &[0, 1, 2, 3, 4, 5]);
        let c = BitSet::full(6);
        let mut s = Vec::new();
        let mut got = Vec::new();
        let count = enumerate_plex_branch(&lg, c.view(), &mut s, &mut |cl| {
            let mut v = cl.to_vec();
            v.sort_unstable();
            got.push(v);
        })
        .unwrap();
        got.sort();
        assert_eq!(count, 4);
        assert_eq!(
            got,
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1, 2, 5],
                vec![0, 1, 3, 4],
                vec![0, 1, 4, 5]
            ]
        );
    }

    #[test]
    fn three_plex_figure4_example() {
        // Paper Figure 4: complement has path 0-1-2 and triangle 3-4-5 → 6 maximal cliques.
        let complement_edges = [(0u32, 1u32), (1, 2), (3, 4), (4, 5), (3, 5)];
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                if !complement_edges.contains(&(u, v)) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        let lg = LocalGraph::from_vertices(&g, &[0, 1, 2, 3, 4, 5]);
        let c = BitSet::full(6);
        let mut s = Vec::new();
        let mut got = Vec::new();
        let count = enumerate_plex_branch(&lg, c.view(), &mut s, &mut |cl| {
            let mut v = cl.to_vec();
            v.sort_unstable();
            got.push(v);
        })
        .unwrap();
        got.sort();
        assert_eq!(count, 6);
        assert_eq!(
            got,
            vec![
                vec![0, 2, 3],
                vec![0, 2, 4],
                vec![0, 2, 5],
                vec![1, 3],
                vec![1, 4],
                vec![1, 5]
            ]
        );
    }

    #[test]
    fn non_plex_candidate_returns_none() {
        // A path on 6 vertices is far from a 3-plex: complement has high degree.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let lg = LocalGraph::from_vertices(&g, &[0, 1, 2, 3, 4, 5]);
        let c = BitSet::full(6);
        let mut s = Vec::new();
        let mut calls = 0;
        let result = enumerate_plex_branch(&lg, c.view(), &mut s, &mut |_| calls += 1);
        assert!(result.is_none());
        assert_eq!(calls, 0);
    }

    #[test]
    fn empty_candidate_emits_nothing() {
        let g = Graph::complete(3);
        let lg = LocalGraph::from_vertices(&g, &[0, 1, 2]);
        let c = BitSet::with_capacity(3);
        let mut s = vec![9];
        let count = enumerate_plex_branch(&lg, c.view(), &mut s, &mut |_| {}).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn cross_product_counts_match_component_product() {
        // Complement = two disjoint matchings (2-plex) on 8 vertices → 2*2 = 4 cliques…
        // plus a 5-cycle complement (3-plex) on 5 more → 4 * 5 = 20 cliques.
        let comp_edges = [(0u32, 1u32), (2, 3), (4, 5), (5, 6), (6, 7), (7, 8), (4, 8)];
        let n = 9;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if !comp_edges.contains(&(u, v)) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, edges).unwrap();
        let lg = LocalGraph::from_vertices(&g, &(0..n as u32).collect::<Vec<_>>());
        let c = BitSet::full(n);
        let mut s = Vec::new();
        let count = enumerate_plex_branch(&lg, c.view(), &mut s, &mut |_| {}).unwrap();
        assert_eq!(count, 2 * 2 * 5);
    }
}
