//! Reusable per-worker enumeration state: the depth-indexed scratch arena and
//! the root-phase buffers.
//!
//! The recursion of the paper's Algorithms 1–4 creates one `(C, X)` pair per
//! tree node. Allocating fresh `BitSet`s (and `Vec` branch lists) at every
//! node makes the hot loop allocator-bound; instead, each worker owns a
//! [`SearchScratch`] whose **frames are indexed by recursion depth**. A node
//! at depth `d` reads its branch sets from frame `d` and writes its child's
//! sets into frame `d + 1`; because siblings run sequentially, one frame per
//! depth is enough, and after the arena has grown to the deepest branch every
//! further node runs with **zero heap allocations**.
//!
//! [`WorkerState`] bundles the arena with the root-phase buffers (the
//! candidate/exclusion splits, the dense [`LocalGraph`] whose adjacency
//! matrices are rebuilt in place per root, and the original-id → local-id
//! position map), so a whole enumeration run touches the allocator only while
//! warming up.

use mce_graph::{BitSet, VertexId};

use crate::local::LocalGraph;

/// Scratch buffers of one recursion depth.
#[derive(Clone, Debug, Default)]
pub(crate) struct Frame {
    /// Candidate set `C` of the node at this depth.
    pub c: BitSet,
    /// Exclusion set `X` of the node at this depth.
    pub x: BitSet,
    /// Branch vertex list (pivot-pruned candidates, or the member list of an
    /// edge-oriented step).
    pub branch: Vec<usize>,
    /// Secondary vertex list (the alternative branching set of `BK_Fac`).
    pub alt: Vec<usize>,
    /// Candidate edges of an edge-oriented step: `(global position, a, b)`.
    pub edges: Vec<(usize, usize, usize)>,
}

/// Depth-indexed arena of [`Frame`]s for one worker.
#[derive(Clone, Debug, Default)]
pub(crate) struct SearchScratch {
    frames: Vec<Frame>,
}

impl SearchScratch {
    /// Immutable access to the frame at `depth` (must exist).
    #[inline]
    pub fn frame(&self, depth: usize) -> &Frame {
        &self.frames[depth]
    }

    /// Mutable access to the frame at `depth` (must exist).
    #[inline]
    pub fn frame_mut(&mut self, depth: usize) -> &mut Frame {
        &mut self.frames[depth]
    }

    /// Grows the arena so frames `0..=depth` exist.
    #[inline]
    pub fn ensure(&mut self, depth: usize) {
        if self.frames.len() <= depth {
            self.frames.resize_with(depth + 1, Frame::default);
        }
    }

    /// Splits the arena into the frames at `depth` and `depth + 1`, growing
    /// it as needed. The pair is how a node derives its child: read from the
    /// first, write into the second.
    #[inline]
    pub fn pair(&mut self, depth: usize) -> (&mut Frame, &mut Frame) {
        self.ensure(depth + 1);
        let (left, right) = self.frames.split_at_mut(depth + 1);
        (&mut left[depth], &mut right[0])
    }

    /// Loads frame 0 with an externally captured branch state (the resume
    /// path of a donated [`BranchTask`](crate::pool::BranchTask)): the
    /// `(C, X)` sets and the remaining branch list, reusing the frame's
    /// buffers.
    pub fn load_root(&mut self, c: &BitSet, x: &BitSet, branch: &[usize]) {
        self.ensure(0);
        let f0 = self.frame_mut(0);
        f0.c.copy_from(c);
        f0.x.copy_from(x);
        f0.branch.clear();
        f0.branch.extend_from_slice(branch);
    }

    /// Fills frame `depth + 1` with the child branch obtained by moving local
    /// vertex `v` into the partial clique:
    /// `C' = C ∩ N_cand(v)`, `X' = ((C ∪ X) ∩ N_G(v)) \ C'`.
    ///
    /// Candidates that are graph-adjacent but candidate-non-adjacent to `v`
    /// (their edge was excluded by an edge-oriented ancestor) move to the
    /// exclusion side, preserving maximality checks against the original
    /// graph. Performs no heap allocation once the frame's buffers have grown
    /// to the branch size.
    #[inline]
    pub fn make_child(&mut self, depth: usize, lg: &LocalGraph, v: usize) {
        let (parent, child) = self.pair(depth);
        parent.c.intersect_into(lg.cand(v), &mut child.c);
        child.x.copy_from(&parent.c);
        child.x.union_with(&parent.x);
        child.x.intersect_with_words(lg.gadj(v));
        child.x.difference_with(&child.c);
    }
}

/// Donation bookkeeping for one in-progress branch loop: which frame it owns,
/// how much of the partial clique belongs to it, and where its next
/// unexplored sibling sits in the frame's branch list. The splitting
/// scheduler walks these entries shallowest-first to find the largest
/// donatable remainder; see [`pool`](crate::pool).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SplitFrame {
    /// Recursion depth of the loop (index into the scratch arena).
    pub depth: usize,
    /// Length of the partial clique `R` when the loop started.
    pub partial_len: usize,
    /// Index into the frame's branch list of the next unexplored sibling;
    /// `branch[next_idx - 1]` is the vertex currently being recursed into.
    pub next_idx: usize,
    /// Whether this loop's remaining siblings have been donated — the loop
    /// must stop after its current vertex returns.
    pub donated: bool,
}

/// The complete reusable state of one enumeration worker.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkerState {
    /// Depth-indexed recursion arena.
    pub scratch: SearchScratch,
    /// Dense local view of the current root branch, rebuilt in place.
    pub lg: LocalGraph,
    /// Original-id → local-id scratch map (`u32::MAX` when unused); length is
    /// the input graph's vertex count.
    pub position: Vec<u32>,
    /// Candidate vertices of the current root branch.
    pub candidates: Vec<VertexId>,
    /// Exclusion vertices of the current root branch.
    pub excluded: Vec<VertexId>,
    /// Combined `candidates ++ excluded` universe of the current root branch.
    pub vertices: Vec<VertexId>,
    /// Common-neighbour buffer of the edge-oriented root step.
    pub common: Vec<VertexId>,
    /// The growing partial clique `S` (original vertex ids).
    pub partial: Vec<VertexId>,
}

impl WorkerState {
    /// Fresh state; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the state for a run over a graph with `n` vertices.
    pub fn prepare_for(&mut self, n: usize) {
        debug_assert!(self.position.iter().all(|&p| p == u32::MAX));
        self.position.clear();
        self.position.resize(n, u32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::Graph;

    #[test]
    fn ensure_grows_and_pair_splits() {
        let mut s = SearchScratch::default();
        s.ensure(3);
        assert!(s.frames.len() >= 4);
        let (a, b) = s.pair(3);
        a.branch.push(1);
        b.branch.push(2);
        assert_eq!(s.frame(3).branch, vec![1]);
        assert_eq!(s.frame(4).branch, vec![2]);
    }

    #[test]
    fn make_child_matches_formula() {
        // Diamond: 0-1-2-3 cycle with chord (0,2).
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let lg = LocalGraph::from_vertices(&g, &[0, 1, 2, 3]);
        let mut s = SearchScratch::default();
        s.ensure(0);
        let f0 = s.frame_mut(0);
        f0.c.reset(4);
        for v in [1, 2, 3] {
            f0.c.insert(v);
        }
        f0.x.reset(4);
        f0.x.insert(0);
        // Branch on local vertex 2: C' = {1, 3}, X' = {0} (0 adjacent to 2).
        s.make_child(0, &lg, 2);
        assert_eq!(s.frame(1).c.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s.frame(1).x.iter().collect::<Vec<_>>(), vec![0]);
        // Parent frame is untouched.
        assert_eq!(s.frame(0).c.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn load_root_restores_a_captured_branch_state() {
        let mut s = SearchScratch::default();
        let mut c = BitSet::with_capacity(6);
        c.insert(1);
        c.insert(4);
        let mut x = BitSet::with_capacity(6);
        x.insert(0);
        s.load_root(&c, &x, &[4, 1]);
        assert_eq!(s.frame(0).c.iter().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(s.frame(0).x.iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.frame(0).branch, vec![4, 1]);
        // Reloading reuses the frame and replaces its contents.
        s.load_root(&x, &c, &[2]);
        assert_eq!(s.frame(0).c.iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.frame(0).branch, vec![2]);
    }

    #[test]
    fn worker_state_prepare_sizes_position_map() {
        let mut w = WorkerState::new();
        w.prepare_for(5);
        assert_eq!(w.position.len(), 5);
        assert!(w.position.iter().all(|&p| p == u32::MAX));
        w.prepare_for(3);
        assert_eq!(w.position.len(), 3);
    }
}
