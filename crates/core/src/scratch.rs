//! Reusable per-worker enumeration state: the depth-indexed scratch arena and
//! the root-phase buffers.
//!
//! The recursion of the paper's Algorithms 1–4 creates one `(C, X)` pair per
//! tree node. Allocating fresh `BitSet`s (and `Vec` branch lists) at every
//! node makes the hot loop allocator-bound; instead, each worker owns a
//! [`SearchScratch`] whose **frames are indexed by recursion depth**. A node
//! at depth `d` reads its branch sets from frame `d` and writes its child's
//! sets into frame `d + 1`; because siblings run sequentially, one frame per
//! depth is enough, and after the arena has grown to the deepest branch every
//! further node runs with **zero heap allocations**.
//!
//! # Frame slab layout
//!
//! Each [`Frame`] stores its `C` and `X` rows in **one contiguous `Vec<u64>`
//! slab**: the `C` row starts at a 64-byte-aligned offset and the `X` row
//! follows at a stride rounded up to a whole number of cache lines (8 words).
//! The node's two hottest bit rows therefore live on adjacent cache lines
//! with no pointer chase between them, and `C`/`X` never share a line (no
//! false sharing between the intersect and exclusion kernels of one child
//! derivation). Rows are exposed as [`BitsRef`]/[`BitsMut`] views carrying
//! the exact `BitSet` word semantics; the branch/alt/edge lists stay separate
//! `Vec`s because their lengths are data-dependent.
//!
//! After [`Frame::set_cap`] changes the row geometry the row *contents* are
//! unspecified — every caller either fully rewrites both rows (the child
//! derivation) or explicitly resets them ([`Frame::reset`], the root loader).
//!
//! [`WorkerState`] bundles the arena with the root-phase buffers (the
//! candidate/exclusion splits, the dense [`LocalGraph`] whose adjacency
//! matrices are rebuilt in place per root, and the original-id → local-id
//! position map), so a whole enumeration run touches the allocator only while
//! warming up.

use mce_graph::{kernels, BitSet, BitsMut, BitsRef, VertexId};

use crate::local::LocalGraph;

const WORD_BITS: usize = 64;
/// Words per cache line; row strides are rounded up to this.
const LINE_WORDS: usize = 8;

/// Scratch buffers of one recursion depth. `C` and `X` live in one
/// cache-line-aligned slab (see the module docs); the vertex/edge lists are
/// plain `Vec`s.
#[derive(Clone, Debug, Default)]
pub(crate) struct Frame {
    /// The C/X slab: alignment padding, then the `C` row, then the `X` row.
    cx: Vec<u64>,
    /// Start offset (in words) of the `C` row within the slab.
    base: usize,
    /// Row stride in words (`live` rounded up to a cache line).
    row_words: usize,
    /// Live words per row: `cap.div_ceil(64)`, the `BitSet` invariant.
    live: usize,
    /// Capacity (universe size) of both rows.
    cap: usize,
    /// Branch vertex list (pivot-pruned candidates, or the member list of an
    /// edge-oriented step).
    pub branch: Vec<usize>,
    /// Secondary vertex list (the alternative branching set of `BK_Fac`).
    pub alt: Vec<usize>,
    /// Candidate edges of an edge-oriented step: `(global position, a, b)`.
    pub edges: Vec<(usize, usize, usize)>,
}

impl Frame {
    /// Capacity (universe size) of the frame's `C`/`X` rows.
    #[inline]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Adjusts the slab geometry for rows of capacity `cap`. Row contents are
    /// **unspecified** after a capacity change (callers fully rewrite or
    /// [`Frame::reset`]); a same-capacity call keeps the rows intact.
    pub fn set_cap(&mut self, cap: usize) {
        if cap == self.cap && !self.cx.is_empty() {
            return;
        }
        let live = cap.div_ceil(WORD_BITS);
        let row_words = live.div_ceil(LINE_WORDS).max(1) * LINE_WORDS;
        // Up to 7 leading words bring the C row to a 64-byte boundary.
        self.cx.resize(LINE_WORDS - 1 + 2 * row_words, 0);
        // align_offset counts elements; a u64 pointer is 8-byte aligned, so
        // the offset is always < 8 and fits the padding above. Alignment is a
        // performance property only — offsets stay valid if the Vec is ever
        // cloned onto a differently aligned allocation.
        let base = self.cx.as_ptr().align_offset(64).min(LINE_WORDS - 1);
        self.base = base;
        self.row_words = row_words;
        self.live = live;
        self.cap = cap;
    }

    /// [`Frame::set_cap`] followed by zeroing both rows — the slab analogue
    /// of `BitSet::reset` on `C` and `X`.
    pub fn reset(&mut self, cap: usize) {
        self.set_cap(cap);
        let end = self.base + self.row_words + self.live;
        self.cx[self.base..end].iter_mut().for_each(|w| *w = 0);
    }

    /// The candidate row `C` as a read-only view.
    #[inline]
    pub fn c(&self) -> BitsRef<'_> {
        BitsRef::new(&self.cx[self.base..self.base + self.live], self.cap)
    }

    /// The exclusion row `X` as a read-only view.
    #[inline]
    pub fn x(&self) -> BitsRef<'_> {
        let x0 = self.base + self.row_words;
        BitsRef::new(&self.cx[x0..x0 + self.live], self.cap)
    }

    /// The candidate row `C` as a mutable view.
    #[inline]
    pub fn c_mut(&mut self) -> BitsMut<'_> {
        BitsMut::new(&mut self.cx[self.base..self.base + self.live], self.cap)
    }

    /// The exclusion row `X` as a mutable view.
    #[inline]
    pub fn x_mut(&mut self) -> BitsMut<'_> {
        let x0 = self.base + self.row_words;
        BitsMut::new(&mut self.cx[x0..x0 + self.live], self.cap)
    }

    /// Both rows as simultaneous mutable views.
    #[inline]
    pub fn cx_mut(&mut self) -> (BitsMut<'_>, BitsMut<'_>) {
        let x0 = self.base + self.row_words;
        let (left, right) = self.cx.split_at_mut(x0);
        (
            BitsMut::new(&mut left[self.base..self.base + self.live], self.cap),
            BitsMut::new(&mut right[..self.live], self.cap),
        )
    }

    /// Rebuilds the branch list from the current contents of `C` (ascending
    /// local ids), reusing the list's allocation.
    #[inline]
    pub fn branch_from_c(&mut self) {
        let c = BitsRef::new(&self.cx[self.base..self.base + self.live], self.cap);
        self.branch.clear();
        self.branch.extend(c.iter());
    }

    /// Rebuilds the branch list as `C \ row` (the pivot-pruned candidate
    /// list), reusing the list's allocation.
    #[inline]
    pub fn branch_from_c_and_not(&mut self, row: &[u64]) {
        let c = BitsRef::new(&self.cx[self.base..self.base + self.live], self.cap);
        self.branch.clear();
        c.and_not_collect(row, &mut self.branch);
    }

    /// Splits the frame into disjoint mutable borrows of every buffer, for
    /// callers that mix row kernels with list edits in one pass.
    pub fn parts(&mut self) -> FrameParts<'_> {
        let x0 = self.base + self.row_words;
        let (left, right) = self.cx.split_at_mut(x0);
        FrameParts {
            c: BitsMut::new(&mut left[self.base..self.base + self.live], self.cap),
            x: BitsMut::new(&mut right[..self.live], self.cap),
            branch: &mut self.branch,
            alt: &mut self.alt,
        }
    }
}

/// Disjoint mutable borrows of one [`Frame`]'s buffers (see [`Frame::parts`]).
pub(crate) struct FrameParts<'a> {
    /// The candidate row `C`.
    pub c: BitsMut<'a>,
    /// The exclusion row `X`.
    pub x: BitsMut<'a>,
    /// The branch vertex list.
    pub branch: &'a mut Vec<usize>,
    /// The alternative branching list of `BK_Fac`.
    pub alt: &'a mut Vec<usize>,
}

/// Depth-indexed arena of [`Frame`]s for one worker.
#[derive(Clone, Debug, Default)]
pub(crate) struct SearchScratch {
    frames: Vec<Frame>,
}

impl SearchScratch {
    /// Immutable access to the frame at `depth` (must exist).
    #[inline]
    pub fn frame(&self, depth: usize) -> &Frame {
        &self.frames[depth]
    }

    /// Mutable access to the frame at `depth` (must exist).
    #[inline]
    pub fn frame_mut(&mut self, depth: usize) -> &mut Frame {
        &mut self.frames[depth]
    }

    /// Grows the arena so frames `0..=depth` exist.
    #[inline]
    pub fn ensure(&mut self, depth: usize) {
        if self.frames.len() <= depth {
            self.frames.resize_with(depth + 1, Frame::default);
        }
    }

    /// Splits the arena into the frames at `depth` and `depth + 1`, growing
    /// it as needed. The pair is how a node derives its child: read from the
    /// first, write into the second.
    #[inline]
    pub fn pair(&mut self, depth: usize) -> (&mut Frame, &mut Frame) {
        self.ensure(depth + 1);
        let (left, right) = self.frames.split_at_mut(depth + 1);
        (&mut left[depth], &mut right[0])
    }

    /// Loads frame 0 with an externally captured branch state (the resume
    /// path of a donated [`BranchTask`](crate::pool::BranchTask)): the
    /// `(C, X)` sets and the remaining branch list, reusing the frame's
    /// buffers.
    pub fn load_root(&mut self, c: &BitSet, x: &BitSet, branch: &[usize]) {
        debug_assert_eq!(c.capacity(), x.capacity());
        self.ensure(0);
        let f0 = self.frame_mut(0);
        f0.set_cap(c.capacity());
        f0.c_mut().copy_from(c.view());
        f0.x_mut().copy_from(x.view());
        f0.branch.clear();
        f0.branch.extend_from_slice(branch);
    }

    /// Fills frame `depth + 1` with the child branch obtained by moving local
    /// vertex `v` into the partial clique:
    /// `C' = C ∩ N_cand(v)`, `X' = ((C ∪ X) ∩ N_G(v)) \ C'`.
    ///
    /// Candidates that are graph-adjacent but candidate-non-adjacent to `v`
    /// (their edge was excluded by an edge-oriented ancestor) move to the
    /// exclusion side, preserving maximality checks against the original
    /// graph. Performs no heap allocation once the frame's buffers have grown
    /// to the branch size. Returns `|C'|` (free from the fused intersect
    /// kernel).
    #[inline]
    pub fn make_child(&mut self, depth: usize, lg: &LocalGraph, v: usize) -> usize {
        let (parent, child) = self.pair(depth);
        child.set_cap(parent.cap());
        let (pc, px) = (parent.c(), parent.x());
        let (mut cc, mut cx) = child.cx_mut();
        let count = cc.assign_and_count(pc, lg.cand(v));
        cx.copy_from(pc);
        cx.union_with_words(px.words());
        cx.intersect_with_words(lg.gadj(v));
        cx.difference_with_words(cc.as_ref().words());
        count
    }

    /// The `C`-only child derivation of the branch-and-bound engine:
    /// `C' = C ∩ row`, returning `|C'|`. The child's `X` row is left
    /// untouched (the B&B recursion never reads it).
    #[inline]
    pub fn make_child_c(&mut self, depth: usize, row: &[u64]) -> usize {
        let (parent, child) = self.pair(depth);
        child.set_cap(parent.cap());
        let pc = parent.c();
        child.c_mut().assign_and_count(pc, row)
    }

    /// Prefetches the adjacency rows the *next* branch iteration will
    /// intersect against, overlapping the memory fetch with the current
    /// child's subtree.
    #[inline]
    pub fn prefetch_rows(lg: &LocalGraph, v: usize) {
        kernels::prefetch(lg.cand(v));
        kernels::prefetch(lg.gadj(v));
    }
}

/// Donation bookkeeping for one in-progress branch loop: which frame it owns,
/// how much of the partial clique belongs to it, and where its next
/// unexplored sibling sits in the frame's branch list. The splitting
/// scheduler walks these entries shallowest-first to find the largest
/// donatable remainder; see [`pool`](crate::pool).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SplitFrame {
    /// Recursion depth of the loop (index into the scratch arena).
    pub depth: usize,
    /// Length of the partial clique `R` when the loop started.
    pub partial_len: usize,
    /// Index into the frame's branch list of the next unexplored sibling;
    /// `branch[next_idx - 1]` is the vertex currently being recursed into.
    pub next_idx: usize,
    /// Whether this loop's remaining siblings have been donated — the loop
    /// must stop after its current vertex returns.
    pub donated: bool,
}

/// The complete reusable state of one enumeration worker.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkerState {
    /// Depth-indexed recursion arena.
    pub scratch: SearchScratch,
    /// Dense local view of the current root branch, rebuilt in place.
    pub lg: LocalGraph,
    /// Original-id → local-id scratch map (`u32::MAX` when unused); length is
    /// the input graph's vertex count.
    pub position: Vec<u32>,
    /// Candidate vertices of the current root branch.
    pub candidates: Vec<VertexId>,
    /// Exclusion vertices of the current root branch.
    pub excluded: Vec<VertexId>,
    /// Combined `candidates ++ excluded` universe of the current root branch.
    pub vertices: Vec<VertexId>,
    /// Common-neighbour buffer of the edge-oriented root step.
    pub common: Vec<VertexId>,
    /// The growing partial clique `S` (original vertex ids).
    pub partial: Vec<VertexId>,
}

impl WorkerState {
    /// Fresh state; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the state for a run over a graph with `n` vertices.
    pub fn prepare_for(&mut self, n: usize) {
        debug_assert!(self.position.iter().all(|&p| p == u32::MAX));
        self.position.clear();
        self.position.resize(n, u32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::Graph;

    #[test]
    fn ensure_grows_and_pair_splits() {
        let mut s = SearchScratch::default();
        s.ensure(3);
        assert!(s.frames.len() >= 4);
        let (a, b) = s.pair(3);
        a.branch.push(1);
        b.branch.push(2);
        assert_eq!(s.frame(3).branch, vec![1]);
        assert_eq!(s.frame(4).branch, vec![2]);
    }

    #[test]
    fn frame_rows_share_one_slab_with_line_stride() {
        let mut f = Frame::default();
        f.reset(130); // 3 live words → stride 8
        assert_eq!(f.cap(), 130);
        assert_eq!(f.c().words().len(), 3);
        assert_eq!(f.x().words().len(), 3);
        let c0 = f.c().words().as_ptr() as usize;
        let x0 = f.x().words().as_ptr() as usize;
        assert_eq!(x0 - c0, 8 * 8, "X starts one cache-line stride after C");
        assert_eq!(c0 % 64, 0, "C row is cache-line aligned");
    }

    #[test]
    fn frame_reset_zeroes_and_set_cap_keeps_same_cap() {
        let mut f = Frame::default();
        f.reset(70);
        f.c_mut().insert(69);
        f.x_mut().insert(1);
        // Same capacity: rows intact.
        f.set_cap(70);
        assert!(f.c().contains(69) && f.x().contains(1));
        // Reset clears both rows.
        f.reset(70);
        assert!(f.c().is_empty() && f.x().is_empty());
    }

    #[test]
    fn frame_rows_have_bitset_out_of_range_contract() {
        let mut f = Frame::default();
        f.reset(70);
        let mut c = f.c_mut();
        assert!(!c.insert(70), "insert past cap is a no-op");
        assert!(!c.insert(1000));
        assert!(c.is_empty());
        assert!(!c.contains(70));
        assert!(!c.remove(70));
        assert!(c.insert(69));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn branch_from_c_lists_candidates_in_order() {
        let mut f = Frame::default();
        f.reset(100);
        for v in [70, 3, 65] {
            f.c_mut().insert(v);
        }
        f.branch.push(999); // stale content is replaced
        f.branch_from_c();
        assert_eq!(f.branch, vec![3, 65, 70]);
    }

    #[test]
    fn make_child_matches_formula() {
        // Diamond: 0-1-2-3 cycle with chord (0,2).
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let lg = LocalGraph::from_vertices(&g, &[0, 1, 2, 3]);
        let mut s = SearchScratch::default();
        s.ensure(0);
        let f0 = s.frame_mut(0);
        f0.reset(4);
        for v in [1, 2, 3] {
            f0.c_mut().insert(v);
        }
        f0.x_mut().insert(0);
        // Branch on local vertex 2: C' = {1, 3}, X' = {0} (0 adjacent to 2).
        let count = s.make_child(0, &lg, 2);
        assert_eq!(count, 2, "fused count is |C'|");
        assert_eq!(s.frame(1).c().iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s.frame(1).x().iter().collect::<Vec<_>>(), vec![0]);
        // Parent frame is untouched.
        assert_eq!(s.frame(0).c().iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn make_child_c_intersects_without_touching_x() {
        let g = Graph::complete(3);
        let lg = LocalGraph::from_vertices(&g, &[0, 1, 2]);
        let mut s = SearchScratch::default();
        s.ensure(0);
        let f0 = s.frame_mut(0);
        f0.reset(3);
        for v in [0, 1, 2] {
            f0.c_mut().insert(v);
        }
        let count = s.make_child_c(0, lg.cand(0));
        assert_eq!(count, 2);
        assert_eq!(s.frame(1).c().iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn load_root_restores_a_captured_branch_state() {
        let mut s = SearchScratch::default();
        let mut c = BitSet::with_capacity(6);
        c.insert(1);
        c.insert(4);
        let mut x = BitSet::with_capacity(6);
        x.insert(0);
        s.load_root(&c, &x, &[4, 1]);
        assert_eq!(s.frame(0).c().iter().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(s.frame(0).x().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.frame(0).branch, vec![4, 1]);
        // Reloading reuses the frame and replaces its contents.
        s.load_root(&x, &c, &[2]);
        assert_eq!(s.frame(0).c().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.frame(0).branch, vec![2]);
    }

    #[test]
    fn worker_state_prepare_sizes_position_map() {
        let mut w = WorkerState::new();
        w.prepare_for(5);
        assert_eq!(w.position.len(), 5);
        assert!(w.position.iter().all(|&p| p == u32::MAX));
        w.prepare_for(3);
        assert_eq!(w.position.len(), 3);
    }
}
