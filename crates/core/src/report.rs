//! Clique reporters: how enumerated maximal cliques are consumed.
//!
//! Enumeration frameworks produce cliques one at a time; a [`CliqueReporter`]
//! decides what happens to them (count, collect, stream to a callback, …).
//! Keeping this behind a trait lets the benchmark harness count millions of
//! cliques without materialising them while the tests collect and compare
//! exact sets.

use std::io::{self, Write};

use mce_graph::VertexId;

/// Consumer of maximal cliques produced by the enumeration frameworks.
pub trait CliqueReporter {
    /// Called once per maximal clique. `clique` is unsorted and only valid for
    /// the duration of the call.
    fn report(&mut self, clique: &[VertexId]);
}

impl<R: CliqueReporter + ?Sized> CliqueReporter for &mut R {
    fn report(&mut self, clique: &[VertexId]) {
        (**self).report(clique)
    }
}

/// Counts cliques and tracks size statistics without storing them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountReporter {
    /// Number of maximal cliques reported.
    pub count: u64,
    /// Size of the largest maximal clique seen.
    pub max_size: usize,
    /// Sum of clique sizes (for computing the average).
    pub total_size: u64,
}

impl CountReporter {
    /// Creates a fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average clique size (0.0 when nothing was reported).
    pub fn average_size(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_size as f64 / self.count as f64
        }
    }
}

impl CliqueReporter for CountReporter {
    fn report(&mut self, clique: &[VertexId]) {
        self.count += 1;
        self.max_size = self.max_size.max(clique.len());
        self.total_size += clique.len() as u64;
    }
}

/// Collects every clique as a sorted vector (intended for tests and small graphs).
#[derive(Clone, Debug, Default)]
pub struct CollectReporter {
    /// All reported cliques, each sorted ascending.
    pub cliques: Vec<Vec<VertexId>>,
}

impl CollectReporter {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the collected cliques sorted canonically (each clique sorted,
    /// cliques sorted lexicographically) — convenient for equality checks.
    pub fn into_sorted(mut self) -> Vec<Vec<VertexId>> {
        self.cliques.sort();
        self.cliques
    }
}

impl CliqueReporter for CollectReporter {
    fn report(&mut self, clique: &[VertexId]) {
        let mut c = clique.to_vec();
        c.sort_unstable();
        self.cliques.push(c);
    }
}

/// Streams every clique to a user callback.
pub struct CallbackReporter<F: FnMut(&[VertexId])> {
    callback: F,
}

impl<F: FnMut(&[VertexId])> CallbackReporter<F> {
    /// Wraps `callback` as a reporter.
    pub fn new(callback: F) -> Self {
        CallbackReporter { callback }
    }
}

impl<F: FnMut(&[VertexId])> CliqueReporter for CallbackReporter<F> {
    fn report(&mut self, clique: &[VertexId]) {
        (self.callback)(clique)
    }
}

/// Keeps only the **canonical** maximum clique seen.
///
/// Ties are broken deterministically: among equal-size cliques the one whose
/// ascending-sorted member list is lexicographically smallest wins — the
/// first maximum in the canonical (sorted-members) enumeration order. This
/// makes the winner independent of stream order, preset, thread count and
/// engine, so the enumeration-riding path and the branch-and-bound engine
/// ([`maxclique`](crate::maxclique)) return byte-identical results.
#[derive(Clone, Debug, Default)]
pub struct MaximumCliqueReporter {
    /// The canonical maximum clique reported so far, sorted ascending.
    pub best: Vec<VertexId>,
    /// Reusable sort buffer for tie comparisons.
    scratch: Vec<VertexId>,
}

impl MaximumCliqueReporter {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CliqueReporter for MaximumCliqueReporter {
    fn report(&mut self, clique: &[VertexId]) {
        use std::cmp::Ordering;
        match clique.len().cmp(&self.best.len()) {
            Ordering::Less => {}
            Ordering::Greater => {
                self.best.clear();
                self.best.extend_from_slice(clique);
                self.best.sort_unstable();
            }
            Ordering::Equal => {
                if clique.is_empty() {
                    return;
                }
                self.scratch.clear();
                self.scratch.extend_from_slice(clique);
                self.scratch.sort_unstable();
                if self.scratch < self.best {
                    std::mem::swap(&mut self.best, &mut self.scratch);
                }
            }
        }
    }
}

/// Retains only cliques with at least `min_size` vertices, forwarding them to
/// an inner reporter. Useful for the community-detection style applications in
/// the examples.
pub struct MinSizeFilter<R: CliqueReporter> {
    inner: R,
    min_size: usize,
}

impl<R: CliqueReporter> MinSizeFilter<R> {
    /// Wraps `inner`, dropping cliques smaller than `min_size`.
    pub fn new(inner: R, min_size: usize) -> Self {
        MinSizeFilter { inner, min_size }
    }

    /// Unwraps the inner reporter.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: CliqueReporter> CliqueReporter for MinSizeFilter<R> {
    fn report(&mut self, clique: &[VertexId]) {
        if clique.len() >= self.min_size {
            self.inner.report(clique);
        }
    }
}

/// Builds a histogram of clique sizes (`histogram[s]` = number of maximal
/// cliques with exactly `s` vertices).
#[derive(Clone, Debug, Default)]
pub struct SizeHistogramReporter {
    /// Clique counts indexed by clique size (index 0 is unused).
    pub histogram: Vec<u64>,
}

impl SizeHistogramReporter {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of cliques recorded.
    pub fn total(&self) -> u64 {
        self.histogram.iter().sum()
    }

    /// Size of the largest clique recorded (0 when empty).
    pub fn max_size(&self) -> usize {
        self.histogram.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

impl CliqueReporter for SizeHistogramReporter {
    fn report(&mut self, clique: &[VertexId]) {
        let size = clique.len();
        if self.histogram.len() <= size {
            self.histogram.resize(size + 1, 0);
        }
        self.histogram[size] += 1;
    }
}

/// Keeps the `k` largest cliques seen, with a deterministic ranking: larger
/// cliques first, ties broken by arrival order (earliest first). Fed from a
/// deterministic stream (e.g. [`par_enumerate_ordered`]) the selection is
/// identical at any thread count, which is what the query layer's
/// `TopKBySize` spec relies on.
///
/// [`par_enumerate_ordered`]: crate::par_enumerate_ordered
#[derive(Clone, Debug, Default)]
pub struct TopKReporter {
    k: usize,
    /// `(size, arrival sequence number, sorted members)`, ordered by
    /// descending size then ascending arrival.
    entries: Vec<(usize, u64, Vec<VertexId>)>,
    seen: u64,
    /// Cliques strictly smaller than this are counted but never retained.
    min_size: usize,
}

impl TopKReporter {
    /// A reporter keeping the `k` largest cliques.
    pub fn new(k: usize) -> Self {
        TopKReporter {
            k,
            entries: Vec::new(),
            seen: 0,
            min_size: 0,
        }
    }

    /// A reporter keeping the `k` largest cliques, never retaining one with
    /// fewer than `min_size` members (they still count toward
    /// [`TopKReporter::seen`]).
    ///
    /// The floor is only a *correct* top-k selection when the caller proves
    /// no retained clique could rank among the k largest below it. The query
    /// layer uses this for `TopKBySize { k: 1 }` with the greedy clique
    /// lower bound of [`greedy_lower_bound`](crate::maxclique::greedy_lower_bound):
    /// the bound witnesses a clique of that size, so every maximal-clique
    /// stream contains one at least that large and nothing smaller can be
    /// the single largest. For `k > 1` no such argument holds (the 2nd
    /// largest may be smaller than the bound), so the query layer never
    /// applies a floor there.
    pub fn with_size_floor(k: usize, min_size: usize) -> Self {
        TopKReporter {
            k,
            entries: Vec::new(),
            seen: 0,
            min_size,
        }
    }

    /// Total cliques observed (not just the retained ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained cliques in ranking order (descending size, ties by
    /// arrival), each sorted ascending.
    pub fn into_cliques(self) -> Vec<Vec<VertexId>> {
        self.entries.into_iter().map(|(_, _, c)| c).collect()
    }
}

impl CliqueReporter for TopKReporter {
    fn report(&mut self, clique: &[VertexId]) {
        let seq = self.seen;
        self.seen += 1;
        if self.k == 0 {
            return;
        }
        let size = clique.len();
        if size < self.min_size {
            return; // below the caller-proven size floor
        }
        if self.entries.len() == self.k && size <= self.entries.last().map(|e| e.0).unwrap_or(0) {
            return; // ties keep the earlier clique
        }
        let mut sorted = clique.to_vec();
        sorted.sort_unstable();
        // Insert after every entry of the same-or-larger size: among equal
        // sizes, the earlier arrival ranks first.
        let at = self.entries.partition_point(|e| e.0 >= size);
        self.entries.insert(at, (size, seq, sorted));
        self.entries.truncate(self.k);
    }
}

/// How a [`WriterReporter`] renders each clique.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CliqueLineFormat {
    /// One line per clique: members sorted ascending, space-separated.
    Text,
    /// One JSON object per line: `{"size":3,"clique":[0,1,2]}` (NDJSON).
    Ndjson,
}

/// Streams every clique to a [`Write`] sink, one line per clique, without ever
/// materialising the full result set.
///
/// `report` cannot return errors, so the first I/O failure is stashed and all
/// subsequent cliques are dropped; [`WriterReporter::finish`] flushes the sink
/// and surfaces that error. Drivers that care about broken pipes or full disks
/// must call `finish` (or [`WriterReporter::take_error`]) before exiting 0.
pub struct WriterReporter<W: Write> {
    out: W,
    format: CliqueLineFormat,
    sorted: Vec<VertexId>,
    line: String,
    error: Option<io::Error>,
}

impl<W: Write> WriterReporter<W> {
    /// Wraps `out`, rendering cliques as `format` lines.
    pub fn new(out: W, format: CliqueLineFormat) -> Self {
        WriterReporter {
            out,
            format,
            sorted: Vec::new(),
            line: String::new(),
            error: None,
        }
    }

    /// Takes the first I/O error hit while streaming, if any.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes the sink and returns it, or the first error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn render(&mut self, clique: &[VertexId]) {
        use std::fmt::Write as _;
        self.sorted.clear();
        self.sorted.extend_from_slice(clique);
        self.sorted.sort_unstable();
        self.line.clear();
        match self.format {
            CliqueLineFormat::Text => {
                for (i, v) in self.sorted.iter().enumerate() {
                    if i > 0 {
                        self.line.push(' ');
                    }
                    let _ = write!(self.line, "{v}");
                }
            }
            CliqueLineFormat::Ndjson => {
                let _ = write!(self.line, "{{\"size\":{},\"clique\":[", self.sorted.len());
                for (i, v) in self.sorted.iter().enumerate() {
                    if i > 0 {
                        self.line.push(',');
                    }
                    let _ = write!(self.line, "{v}");
                }
                self.line.push_str("]}");
            }
        }
        self.line.push('\n');
    }
}

impl<W: Write> CliqueReporter for WriterReporter<W> {
    fn report(&mut self, clique: &[VertexId]) {
        if self.error.is_some() {
            return;
        }
        self.render(clique);
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_reporter_tracks_sizes() {
        let mut r = CountReporter::new();
        r.report(&[1, 2, 3]);
        r.report(&[4]);
        assert_eq!(r.count, 2);
        assert_eq!(r.max_size, 3);
        assert_eq!(r.total_size, 4);
        assert!((r.average_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn count_reporter_empty_average() {
        assert_eq!(CountReporter::new().average_size(), 0.0);
    }

    #[test]
    fn collect_reporter_sorts_members_and_canonical_order() {
        let mut r = CollectReporter::new();
        r.report(&[3, 1, 2]);
        r.report(&[0, 5]);
        let sorted = r.into_sorted();
        assert_eq!(sorted, vec![vec![0, 5], vec![1, 2, 3]]);
    }

    #[test]
    fn callback_reporter_invokes_closure() {
        let mut seen = Vec::new();
        {
            let mut r = CallbackReporter::new(|c: &[VertexId]| seen.push(c.len()));
            r.report(&[1, 2]);
            r.report(&[1, 2, 3]);
        }
        assert_eq!(seen, vec![2, 3]);
    }

    #[test]
    fn maximum_clique_reporter_keeps_largest() {
        let mut r = MaximumCliqueReporter::new();
        r.report(&[5, 4]);
        r.report(&[9, 7, 8]);
        r.report(&[1, 2]);
        assert_eq!(r.best, vec![7, 8, 9]);
    }

    #[test]
    fn maximum_clique_tie_break_is_order_independent() {
        // Regression: the winner among equal-size cliques is the canonical
        // (lexicographically smallest sorted) one, regardless of the order
        // the stream delivers them in — the contract that lets the
        // enumeration path and the branch-and-bound engine agree
        // byte-for-byte.
        let cliques: [&[VertexId]; 4] = [&[9, 7, 8], &[2, 6, 4], &[3, 2, 9], &[2, 4, 5]];
        let expected = vec![2, 3, 9]; // sorted lists: [2,3,9] < [2,4,5] < [2,4,6] < [7,8,9]
                                      // Forward arrival order.
        let mut fwd = MaximumCliqueReporter::new();
        for c in cliques {
            fwd.report(c);
        }
        assert_eq!(fwd.best, expected);
        // Reverse arrival order must pick the identical winner.
        let mut rev = MaximumCliqueReporter::new();
        for c in cliques.iter().rev() {
            rev.report(c);
        }
        assert_eq!(rev.best, expected);
        // A strictly larger clique still beats any canonical smaller one.
        fwd.report(&[50, 40, 30, 20]);
        assert_eq!(fwd.best, vec![20, 30, 40, 50]);
    }

    #[test]
    fn size_histogram_counts_by_size() {
        let mut r = SizeHistogramReporter::new();
        r.report(&[1, 2, 3]);
        r.report(&[4, 5, 6]);
        r.report(&[7]);
        assert_eq!(r.histogram[3], 2);
        assert_eq!(r.histogram[1], 1);
        assert_eq!(r.total(), 3);
        assert_eq!(r.max_size(), 3);
        assert_eq!(SizeHistogramReporter::new().max_size(), 0);
    }

    #[test]
    fn writer_reporter_streams_sorted_text_lines() {
        let mut r = WriterReporter::new(Vec::new(), CliqueLineFormat::Text);
        r.report(&[3, 1, 2]);
        r.report(&[7]);
        let out = String::from_utf8(r.finish().unwrap()).unwrap();
        assert_eq!(out, "1 2 3\n7\n");
    }

    #[test]
    fn writer_reporter_streams_ndjson_lines() {
        let mut r = WriterReporter::new(Vec::new(), CliqueLineFormat::Ndjson);
        r.report(&[2, 0]);
        let out = String::from_utf8(r.finish().unwrap()).unwrap();
        assert_eq!(out, "{\"size\":2,\"clique\":[0,2]}\n");
    }

    #[test]
    fn writer_reporter_stashes_io_errors() {
        struct FailingSink;
        impl std::io::Write for FailingSink {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut r = WriterReporter::new(FailingSink, CliqueLineFormat::Text);
        r.report(&[1]);
        r.report(&[2]); // silently dropped after the first failure
        assert!(r.finish().is_err());
    }

    #[test]
    fn mut_reference_is_a_reporter() {
        let mut inner = CountReporter::new();
        {
            let mut r: &mut CountReporter = &mut inner;
            CliqueReporter::report(&mut r, &[1, 2]);
        }
        assert_eq!(inner.count, 1);
    }

    #[test]
    fn top_k_keeps_largest_with_earliest_tiebreak() {
        let mut r = TopKReporter::new(2);
        r.report(&[5, 4]); // size 2, first
        r.report(&[3, 2, 1]); // size 3
        r.report(&[9, 8]); // size 2, later than [4,5] — must lose the tie
        r.report(&[7, 6]); // same
        assert_eq!(r.seen(), 4);
        assert_eq!(r.into_cliques(), vec![vec![1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn top_k_zero_and_underfull() {
        let mut r = TopKReporter::new(0);
        r.report(&[1]);
        assert!(r.into_cliques().is_empty());
        let mut r = TopKReporter::new(5);
        r.report(&[2, 1]);
        assert_eq!(r.into_cliques(), vec![vec![1, 2]]);
    }

    #[test]
    fn min_size_filter_drops_small_cliques() {
        let mut f = MinSizeFilter::new(CountReporter::new(), 3);
        f.report(&[1, 2]);
        f.report(&[1, 2, 3]);
        f.report(&[1, 2, 3, 4]);
        let inner = f.into_inner();
        assert_eq!(inner.count, 2);
        assert_eq!(inner.max_size, 4);
    }
}
