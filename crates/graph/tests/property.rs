//! Property-based tests for the graph substrate: ordering invariants, the
//! τ < δ relationship the paper's complexity argument relies on, and model
//! checks of the bitset against a reference set.

use std::collections::BTreeSet;

use mce_graph::degeneracy::degeneracy_ordering;
use mce_graph::triangles::{edge_supports, triangle_count};
use mce_graph::truss::truss_ordering;
use mce_graph::{AdjMatrix, BitSet, Graph, GraphStats, KernelBackend, PlexCheck};
use proptest::prelude::*;

/// Word vectors biased toward the shapes where SIMD arms can diverge from
/// scalar code: all-zero words (empty rows), all-one words (full rows) and
/// arbitrary bit soup, at every length from empty through several SIMD chunks
/// plus a ragged tail.
fn arb_words() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u32..9, any::<u64>()), 0..=21).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, soup)| match kind {
                0 | 1 => 0u64,
                2 | 3 => !0u64,
                _ => soup,
            })
            .collect()
    })
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(200))
            .prop_map(move |edges| Graph::from_edges(n, edges).expect("endpoints in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn degeneracy_ordering_is_valid_peeling(g in arb_graph()) {
        let d = degeneracy_ordering(&g);
        // The ordering is a permutation.
        let mut sorted = d.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.n() as u32).collect::<Vec<_>>());
        // Every vertex has at most δ neighbours later in the ordering.
        for v in g.vertices() {
            prop_assert!(d.later_neighbors(&g, v).len() <= d.degeneracy);
        }
        // δ is tight: some vertex attains it… unless the graph is edgeless.
        if g.m() > 0 {
            prop_assert!(d.degeneracy >= 1);
        } else {
            prop_assert_eq!(d.degeneracy, 0);
        }
    }

    #[test]
    fn truss_parameter_is_below_degeneracy(g in arb_graph()) {
        let tau = truss_ordering(&g).tau;
        let delta = degeneracy_ordering(&g).degeneracy;
        // τ ≤ δ always; strictly smaller whenever the graph has an edge
        // (matches the paper's τ < δ claim: a degeneracy-δ graph has an edge
        // whose endpoints share at most δ − 1 neighbours).
        prop_assert!(tau <= delta);
        if g.m() > 0 {
            prop_assert!(tau < delta.max(1) || delta == 0 || tau < delta,
                "tau={} delta={}", tau, delta);
        }
    }

    #[test]
    fn truss_peeling_supports_bound_remaining_supports(g in arb_graph()) {
        let t = truss_ordering(&g);
        let mut buf = Vec::new();
        for i in 0..t.len() {
            let e = t.order[i];
            let (u, v) = t.index.endpoints(e);
            g.common_neighbors_into(u, v, &mut buf);
            let later = buf
                .iter()
                .filter(|&&w| {
                    let uw = t.index.edge_id(u, w).unwrap() as usize;
                    let vw = t.index.edge_id(v, w).unwrap() as usize;
                    t.position[uw] > i && t.position[vw] > i
                })
                .count();
            prop_assert!(later <= t.tau);
        }
    }

    #[test]
    fn edge_support_sum_is_three_times_triangles(g in arb_graph()) {
        let (_, supports) = edge_supports(&g);
        let sum: u64 = supports.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(sum, 3 * triangle_count(&g));
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph(), keep in proptest::collection::vec(any::<bool>(), 0..40)) {
        let vertices: Vec<u32> = g
            .vertices()
            .filter(|&v| keep.get(v as usize).copied().unwrap_or(false))
            .collect();
        let (sub, map) = g.induced_subgraph(&vertices);
        prop_assert_eq!(sub.n(), vertices.len());
        for a in 0..sub.n() as u32 {
            for b in (a + 1)..sub.n() as u32 {
                prop_assert_eq!(sub.has_edge(a, b), g.has_edge(map[a as usize], map[b as usize]));
            }
        }
    }

    #[test]
    fn complement_involution_on_small_graphs(g in arb_graph()) {
        if g.n() <= 20 {
            prop_assert_eq!(g.complement().complement(), g);
        }
    }

    #[test]
    fn plex_level_matches_complement_max_degree(g in arb_graph()) {
        let level = PlexCheck::plex_level(&g);
        let complement_max = g.complement().max_degree();
        if g.n() > 0 {
            prop_assert_eq!(level, complement_max + 1);
        }
    }

    #[test]
    fn stats_condition_is_consistent(g in arb_graph()) {
        let s = GraphStats::compute(&g);
        prop_assert_eq!(s.n, g.n());
        prop_assert_eq!(s.m, g.m());
        prop_assert!(s.tau <= s.degeneracy);
        let threshold = s.condition_threshold();
        prop_assert!(threshold >= 3.0 - 1e-9);
        prop_assert_eq!(s.hbbmc_condition_holds(), s.degeneracy as f64 >= threshold - 1e-12);
    }

    #[test]
    fn bitset_behaves_like_btreeset(ops in proptest::collection::vec((0usize..128, any::<bool>()), 0..200)) {
        let mut bits = BitSet::with_capacity(128);
        let mut model = BTreeSet::new();
        for (value, insert) in ops {
            if insert {
                prop_assert_eq!(bits.insert(value), model.insert(value));
            } else {
                prop_assert_eq!(bits.remove(value), model.remove(&value));
            }
        }
        prop_assert_eq!(bits.len(), model.len());
        prop_assert_eq!(bits.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn unrolled_word_kernels_match_scalar_reference(
        words_a in proptest::collection::vec(any::<u64>(), 0..=9),
        mask in proptest::collection::vec(any::<u64>(), 0..=9),
    ) {
        // The 4×-unrolled kernels must be bit-identical to the plain
        // one-word-at-a-time definitions on every ragged tail length:
        // 0..=9 words covers empty, sub-chunk, exact-chunk and
        // chunk-plus-tail shapes on both sides, including every mismatched
        // (self longer / mask longer) combination.
        let mut a = BitSet::with_capacity(words_a.len() * 64);
        for (wi, &w) in words_a.iter().enumerate() {
            for b in 0..64 {
                if w >> b & 1 == 1 {
                    a.insert(wi * 64 + b);
                }
            }
        }
        prop_assert_eq!(a.words(), words_a.as_slice());
        let shared = words_a.len().min(mask.len());

        // intersection_len_words == Σ popcount(a & m) over shared words.
        let expected_len: usize = (0..shared)
            .map(|i| (words_a[i] & mask[i]).count_ones() as usize)
            .sum();
        prop_assert_eq!(a.intersection_len_words(&mask), expected_len);

        // intersect_into: a & m on shared words, zero tail, same word count.
        let mut expected_inter: Vec<u64> =
            (0..shared).map(|i| words_a[i] & mask[i]).collect();
        expected_inter.resize(words_a.len(), 0);
        let mut out = BitSet::default();
        a.intersect_into(&mask, &mut out);
        prop_assert_eq!(out.words(), expected_inter.as_slice());
        prop_assert_eq!(out.capacity(), a.capacity());

        // intersect_into_count: same words, and the count is the popcount.
        let count = a.intersect_into_count(&mask, &mut out);
        prop_assert_eq!(out.words(), expected_inter.as_slice());
        prop_assert_eq!(count, expected_len);

        // difference_into: a & !m on shared words, verbatim tail copy.
        let mut expected_diff: Vec<u64> =
            (0..shared).map(|i| words_a[i] & !mask[i]).collect();
        expected_diff.extend_from_slice(&words_a[shared..]);
        a.difference_into(&mask, &mut out);
        prop_assert_eq!(out.words(), expected_diff.as_slice());

        // and_not_collect: identical element stream to and_not_iter.
        let mut collected = Vec::new();
        a.and_not_collect(&mask, &mut collected);
        prop_assert_eq!(collected, a.and_not_iter(&mask).collect::<Vec<_>>());
    }

    #[test]
    fn bitset_intersection_matches_model(
        a in proptest::collection::btree_set(0usize..96, 0..60),
        b in proptest::collection::btree_set(0usize..96, 0..60),
    ) {
        let mut sa = BitSet::with_capacity(96);
        for &v in &a { sa.insert(v); }
        let mut sb = BitSet::with_capacity(96);
        for &v in &b { sb.insert(v); }
        let expected: Vec<usize> = a.intersection(&b).copied().collect();
        prop_assert_eq!(sa.intersection_len(&sb), expected.len());
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        prop_assert_eq!(inter.iter().collect::<Vec<_>>(), expected);
        let mut diff = sa.clone();
        diff.difference_with(&sb);
        let expected_diff: Vec<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(diff.iter().collect::<Vec<_>>(), expected_diff);
    }

    /// Every available SIMD backend is bit-identical to scalar on the raw
    /// equal-length kernel tables, for empty, full and arbitrary words at
    /// every chunk/tail shape.
    #[test]
    fn kernel_backends_match_scalar_on_raw_tables(a in arb_words(), b in arb_words()) {
        let shared = a.len().min(b.len());
        let (a, b) = (&a[..shared], &b[..shared]);
        let scalar = KernelBackend::Scalar.table().expect("scalar is always available");
        let mut want_inter = vec![0u64; shared];
        let want_count = (scalar.intersect_count)(a, b, &mut want_inter);
        let want_len = (scalar.intersection_len)(a, b);
        let mut want_diff = vec![0u64; shared];
        (scalar.difference)(a, b, &mut want_diff);
        let mut want_bits = vec![usize::MAX]; // non-empty: appends must preserve
        (scalar.and_not_collect)(a, b, &mut want_bits);
        let want_pop = (scalar.popcount)(a);

        for backend in KernelBackend::available() {
            let k = backend.table().expect("available implies table");
            let mut inter = vec![!0u64; shared];
            prop_assert_eq!((k.intersect_count)(a, b, &mut inter), want_count, "{}", backend);
            prop_assert_eq!(&inter, &want_inter, "{}", backend);
            prop_assert_eq!((k.intersection_len)(a, b), want_len, "{}", backend);
            let mut diff = vec![!0u64; shared];
            (k.difference)(a, b, &mut diff);
            prop_assert_eq!(&diff, &want_diff, "{}", backend);
            let mut bits = vec![usize::MAX];
            (k.and_not_collect)(a, b, &mut bits);
            prop_assert_eq!(&bits, &want_bits, "{}", backend);
            prop_assert_eq!((k.popcount)(a), want_pop, "{}", backend);
        }
    }

    /// Backend equivalence through the `BitSet` fused operations, where the
    /// operands are ragged (different word counts) and the set's capacity
    /// need not be word-aligned — the tail and out-of-range handling in
    /// `bitset.rs` must compose identically with every backend.
    #[test]
    fn kernel_backends_match_scalar_through_bitset(
        a_words in arb_words(),
        row in arb_words(),
        slack in 0usize..64,
    ) {
        let cap = (a_words.len() * 64).saturating_sub(slack);
        let mut a = BitSet::with_capacity(cap);
        for (wi, &w) in a_words.iter().enumerate() {
            for bit in 0..64 {
                let idx = wi * 64 + bit;
                if idx < cap && w >> bit & 1 == 1 {
                    a.insert(idx);
                }
            }
        }
        let scalar = KernelBackend::Scalar.table().expect("scalar is always available");
        let want_len = a.intersection_len_words_with(scalar, &row);
        let mut want_inter = BitSet::default();
        let want_count = a.intersect_into_count_with(scalar, &row, &mut want_inter);
        let mut want_diff = BitSet::default();
        a.difference_into_with(scalar, &row, &mut want_diff);
        let mut want_bits = Vec::new();
        a.and_not_collect_with(scalar, &row, &mut want_bits);

        for backend in KernelBackend::available() {
            let k = backend.table().expect("available implies table");
            prop_assert_eq!(a.intersection_len_words_with(k, &row), want_len, "{}", backend);
            let mut inter = BitSet::default();
            prop_assert_eq!(
                a.intersect_into_count_with(k, &row, &mut inter), want_count, "{}", backend
            );
            prop_assert_eq!(inter.words(), want_inter.words(), "{}", backend);
            let mut diff = BitSet::default();
            a.difference_into_with(k, &row, &mut diff);
            prop_assert_eq!(diff.words(), want_diff.words(), "{}", backend);
            let mut bits = Vec::new();
            a.and_not_collect_with(k, &row, &mut bits);
            prop_assert_eq!(&bits, &want_bits, "{}", backend);
        }
    }

    /// Backend equivalence on real adjacency data, both representations: the
    /// dense `AdjMatrix` rows (stride-padded, so SIMD sees the padding words)
    /// and bitsets built from the sparse CSR neighbour lists.
    #[test]
    fn kernel_backends_agree_on_dense_and_csr_rows(g in arb_graph()) {
        let n = g.n();
        let mut dense = AdjMatrix::new(n);
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                dense.insert(v as usize, u as usize);
            }
        }
        let scalar = KernelBackend::Scalar.table().expect("scalar is always available");
        for v in g.vertices() {
            // CSR side: the neighbour list as a bitset…
            let mut csr_row = BitSet::with_capacity(n);
            for &u in g.neighbors(v) {
                csr_row.insert(u as usize);
            }
            // …must see the same counts over the dense rows on every backend.
            let dense_row = dense.row(v as usize);
            prop_assert_eq!((scalar.popcount)(dense_row), g.neighbors(v).len());
            let want = csr_row.intersection_len_words_with(scalar, dense_row);
            let mut want_branch = Vec::new();
            csr_row.and_not_collect_with(scalar, dense_row, &mut want_branch);
            for backend in KernelBackend::available() {
                let k = backend.table().expect("available implies table");
                prop_assert_eq!((k.popcount)(dense_row), g.neighbors(v).len(), "{}", backend);
                prop_assert_eq!(
                    csr_row.intersection_len_words_with(k, dense_row), want, "{}", backend
                );
                let mut branch = Vec::new();
                csr_row.and_not_collect_with(k, dense_row, &mut branch);
                prop_assert_eq!(&branch, &want_branch, "{}", backend);
            }
        }
    }
}
