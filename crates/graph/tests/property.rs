//! Property-based tests for the graph substrate: ordering invariants, the
//! τ < δ relationship the paper's complexity argument relies on, and model
//! checks of the bitset against a reference set.

use std::collections::BTreeSet;

use mce_graph::degeneracy::degeneracy_ordering;
use mce_graph::triangles::{edge_supports, triangle_count};
use mce_graph::truss::truss_ordering;
use mce_graph::{BitSet, Graph, GraphStats, PlexCheck};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(200))
            .prop_map(move |edges| Graph::from_edges(n, edges).expect("endpoints in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn degeneracy_ordering_is_valid_peeling(g in arb_graph()) {
        let d = degeneracy_ordering(&g);
        // The ordering is a permutation.
        let mut sorted = d.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.n() as u32).collect::<Vec<_>>());
        // Every vertex has at most δ neighbours later in the ordering.
        for v in g.vertices() {
            prop_assert!(d.later_neighbors(&g, v).len() <= d.degeneracy);
        }
        // δ is tight: some vertex attains it… unless the graph is edgeless.
        if g.m() > 0 {
            prop_assert!(d.degeneracy >= 1);
        } else {
            prop_assert_eq!(d.degeneracy, 0);
        }
    }

    #[test]
    fn truss_parameter_is_below_degeneracy(g in arb_graph()) {
        let tau = truss_ordering(&g).tau;
        let delta = degeneracy_ordering(&g).degeneracy;
        // τ ≤ δ always; strictly smaller whenever the graph has an edge
        // (matches the paper's τ < δ claim: a degeneracy-δ graph has an edge
        // whose endpoints share at most δ − 1 neighbours).
        prop_assert!(tau <= delta);
        if g.m() > 0 {
            prop_assert!(tau < delta.max(1) || delta == 0 || tau < delta,
                "tau={} delta={}", tau, delta);
        }
    }

    #[test]
    fn truss_peeling_supports_bound_remaining_supports(g in arb_graph()) {
        let t = truss_ordering(&g);
        let mut buf = Vec::new();
        for i in 0..t.len() {
            let e = t.order[i];
            let (u, v) = t.index.endpoints(e);
            g.common_neighbors_into(u, v, &mut buf);
            let later = buf
                .iter()
                .filter(|&&w| {
                    let uw = t.index.edge_id(u, w).unwrap() as usize;
                    let vw = t.index.edge_id(v, w).unwrap() as usize;
                    t.position[uw] > i && t.position[vw] > i
                })
                .count();
            prop_assert!(later <= t.tau);
        }
    }

    #[test]
    fn edge_support_sum_is_three_times_triangles(g in arb_graph()) {
        let (_, supports) = edge_supports(&g);
        let sum: u64 = supports.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(sum, 3 * triangle_count(&g));
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph(), keep in proptest::collection::vec(any::<bool>(), 0..40)) {
        let vertices: Vec<u32> = g
            .vertices()
            .filter(|&v| keep.get(v as usize).copied().unwrap_or(false))
            .collect();
        let (sub, map) = g.induced_subgraph(&vertices);
        prop_assert_eq!(sub.n(), vertices.len());
        for a in 0..sub.n() as u32 {
            for b in (a + 1)..sub.n() as u32 {
                prop_assert_eq!(sub.has_edge(a, b), g.has_edge(map[a as usize], map[b as usize]));
            }
        }
    }

    #[test]
    fn complement_involution_on_small_graphs(g in arb_graph()) {
        if g.n() <= 20 {
            prop_assert_eq!(g.complement().complement(), g);
        }
    }

    #[test]
    fn plex_level_matches_complement_max_degree(g in arb_graph()) {
        let level = PlexCheck::plex_level(&g);
        let complement_max = g.complement().max_degree();
        if g.n() > 0 {
            prop_assert_eq!(level, complement_max + 1);
        }
    }

    #[test]
    fn stats_condition_is_consistent(g in arb_graph()) {
        let s = GraphStats::compute(&g);
        prop_assert_eq!(s.n, g.n());
        prop_assert_eq!(s.m, g.m());
        prop_assert!(s.tau <= s.degeneracy);
        let threshold = s.condition_threshold();
        prop_assert!(threshold >= 3.0 - 1e-9);
        prop_assert_eq!(s.hbbmc_condition_holds(), s.degeneracy as f64 >= threshold - 1e-12);
    }

    #[test]
    fn bitset_behaves_like_btreeset(ops in proptest::collection::vec((0usize..128, any::<bool>()), 0..200)) {
        let mut bits = BitSet::with_capacity(128);
        let mut model = BTreeSet::new();
        for (value, insert) in ops {
            if insert {
                prop_assert_eq!(bits.insert(value), model.insert(value));
            } else {
                prop_assert_eq!(bits.remove(value), model.remove(&value));
            }
        }
        prop_assert_eq!(bits.len(), model.len());
        prop_assert_eq!(bits.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn unrolled_word_kernels_match_scalar_reference(
        words_a in proptest::collection::vec(any::<u64>(), 0..=9),
        mask in proptest::collection::vec(any::<u64>(), 0..=9),
    ) {
        // The 4×-unrolled kernels must be bit-identical to the plain
        // one-word-at-a-time definitions on every ragged tail length:
        // 0..=9 words covers empty, sub-chunk, exact-chunk and
        // chunk-plus-tail shapes on both sides, including every mismatched
        // (self longer / mask longer) combination.
        let mut a = BitSet::with_capacity(words_a.len() * 64);
        for (wi, &w) in words_a.iter().enumerate() {
            for b in 0..64 {
                if w >> b & 1 == 1 {
                    a.insert(wi * 64 + b);
                }
            }
        }
        prop_assert_eq!(a.words(), words_a.as_slice());
        let shared = words_a.len().min(mask.len());

        // intersection_len_words == Σ popcount(a & m) over shared words.
        let expected_len: usize = (0..shared)
            .map(|i| (words_a[i] & mask[i]).count_ones() as usize)
            .sum();
        prop_assert_eq!(a.intersection_len_words(&mask), expected_len);

        // intersect_into: a & m on shared words, zero tail, same word count.
        let mut expected_inter: Vec<u64> =
            (0..shared).map(|i| words_a[i] & mask[i]).collect();
        expected_inter.resize(words_a.len(), 0);
        let mut out = BitSet::default();
        a.intersect_into(&mask, &mut out);
        prop_assert_eq!(out.words(), expected_inter.as_slice());
        prop_assert_eq!(out.capacity(), a.capacity());

        // intersect_into_count: same words, and the count is the popcount.
        let count = a.intersect_into_count(&mask, &mut out);
        prop_assert_eq!(out.words(), expected_inter.as_slice());
        prop_assert_eq!(count, expected_len);

        // difference_into: a & !m on shared words, verbatim tail copy.
        let mut expected_diff: Vec<u64> =
            (0..shared).map(|i| words_a[i] & !mask[i]).collect();
        expected_diff.extend_from_slice(&words_a[shared..]);
        a.difference_into(&mask, &mut out);
        prop_assert_eq!(out.words(), expected_diff.as_slice());

        // and_not_collect: identical element stream to and_not_iter.
        let mut collected = Vec::new();
        a.and_not_collect(&mask, &mut collected);
        prop_assert_eq!(collected, a.and_not_iter(&mask).collect::<Vec<_>>());
    }

    #[test]
    fn bitset_intersection_matches_model(
        a in proptest::collection::btree_set(0usize..96, 0..60),
        b in proptest::collection::btree_set(0usize..96, 0..60),
    ) {
        let mut sa = BitSet::with_capacity(96);
        for &v in &a { sa.insert(v); }
        let mut sb = BitSet::with_capacity(96);
        for &v in &b { sb.insert(v); }
        let expected: Vec<usize> = a.intersection(&b).copied().collect();
        prop_assert_eq!(sa.intersection_len(&sb), expected.len());
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        prop_assert_eq!(inter.iter().collect::<Vec<_>>(), expected);
        let mut diff = sa.clone();
        diff.difference_with(&sb);
        let expected_diff: Vec<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(diff.iter().collect::<Vec<_>>(), expected_diff);
    }
}
