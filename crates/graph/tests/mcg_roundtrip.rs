//! Property and adversarial tests for the `.mcg` binary container: every
//! graph must survive the encode → decode round trip byte-exactly, and every
//! truncation or corruption of a valid file must be rejected with a typed
//! error instead of a panic or a silently wrong graph.

use mce_graph::mcg::{encoded_len, is_mcg, read_mcg, write_mcg, FORMAT_VERSION, MAGIC};
use mce_graph::{Graph, GraphError};
use proptest::prelude::*;

fn encode(g: &Graph) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_mcg(g, &mut bytes).expect("encoding into a Vec cannot fail");
    bytes
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..48).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(256))
            .prop_map(move |edges| Graph::from_edges(n, edges).expect("endpoints in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn round_trip_preserves_the_graph_exactly(g in arb_graph()) {
        let bytes = encode(&g);
        prop_assert!(is_mcg(&bytes));
        prop_assert_eq!(bytes.len() as u64, encoded_len(&g));
        let back = read_mcg(&bytes[..]).expect("own encoding must load");
        prop_assert_eq!(back, g);
    }

    #[test]
    fn encoding_is_deterministic(g in arb_graph()) {
        prop_assert_eq!(encode(&g), encode(&g));
    }

    #[test]
    fn every_truncation_is_rejected(g in arb_graph(), cut in 0usize..10_000) {
        let bytes = encode(&g);
        let cut = cut % bytes.len(); // strictly shorter than the full file
        prop_assert!(
            read_mcg(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes must not parse",
            bytes.len()
        );
    }

    #[test]
    fn single_byte_corruption_never_yields_a_different_graph(
        g in arb_graph(),
        pos in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(&g);
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Either the typed validation rejects the file, or the flip hit a
        // byte that does not change the decoded graph (e.g. a reserved
        // field is not checksummed). What must never happen is decoding
        // to a *different* graph.
        if let Ok(back) = read_mcg(&bytes[..]) {
            prop_assert_eq!(back, g, "flipped byte {pos} silently changed the graph");
        }
    }
}

#[test]
fn empty_and_isolated_graphs_round_trip() {
    for g in [
        Graph::from_edges(0, std::iter::empty::<(u32, u32)>()).unwrap(),
        Graph::from_edges(5, std::iter::empty::<(u32, u32)>()).unwrap(),
        Graph::from_edges(6, [(0, 1), (4, 5)]).unwrap(), // isolated 2, 3
    ] {
        let bytes = encode(&g);
        let back = read_mcg(&bytes[..]).expect("must load");
        assert_eq!(back, g);
        assert_eq!(back.n(), g.n(), "isolated vertices must survive");
    }
}

#[test]
fn bad_magic_is_a_typed_error() {
    let mut bytes = encode(&Graph::complete(3));
    bytes[0] ^= 0xff;
    assert!(matches!(read_mcg(&bytes[..]), Err(GraphError::BadMagic)));
    assert!(!is_mcg(&bytes));
    // Arbitrary text is also BadMagic, not a pile of InvalidData noise.
    assert!(matches!(
        read_mcg(&b"0 1\n1 2\n"[..]),
        Err(GraphError::BadMagic)
    ));
}

#[test]
fn future_version_is_a_typed_error() {
    let mut bytes = encode(&Graph::complete(3));
    let version_at = MAGIC.len();
    bytes[version_at..version_at + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match read_mcg(&bytes[..]) {
        Err(GraphError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn payload_corruption_is_a_checksum_mismatch() {
    let g = Graph::complete(8);
    let clean = encode(&g);
    // Flip one byte in the adjacency payload (the last section of the file).
    let mut bytes = clean.clone();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    match read_mcg(&bytes[..]) {
        Err(GraphError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn truncation_error_message_names_the_missing_piece() {
    let bytes = encode(&Graph::complete(4));
    let err = read_mcg(&bytes[..bytes.len() - 3]).unwrap_err();
    assert!(
        err.to_string().contains("truncated"),
        "unhelpful truncation error: {err}"
    );
}
