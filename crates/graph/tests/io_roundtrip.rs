//! Round-trip property tests for the text I/O formats.
//!
//! DIMACS declares its vertex count, so `write → read` must reproduce the
//! graph *exactly* (isolated vertices included). The edge-list format carries
//! no vertex universe and relabels in first-seen order, so its round trip is
//! exact up to that documented relabelling: replaying the writer's edge
//! sequence through the same first-seen rule must reproduce the read graph.
//! Comment lines, blank lines and the 1-based DIMACS indexing are fuzzed in.

use std::collections::HashMap;

use mce_graph::io::{read_dimacs, read_edge_list, read_graph_str, write_dimacs, write_edge_list};
use mce_graph::{Graph, GraphFormat, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..40).prop_flat_map(|n| {
        let max_edges = n * n.saturating_sub(1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(160))
            .prop_map(move |edges| Graph::from_edges(n, edges).expect("endpoints in range"))
    })
}

/// Interleaves comment and blank lines into serialized graph text, exercising
/// the reader's skip logic. `style` selects the comment flavour per line.
fn salt_with_comments(text: &str, style: usize) -> String {
    let comments = ["# comment", "% comment", "// comment", ""];
    let mut salted = String::new();
    for (i, line) in text.lines().enumerate() {
        if i % 3 == 0 {
            salted.push_str(comments[(style + i) % comments.len()]);
            salted.push('\n');
        }
        salted.push_str(line);
        salted.push('\n');
    }
    salted
}

/// The edge-list reader's documented relabelling: dense ids in first-seen
/// order over the written edge sequence.
fn first_seen_relabel(g: &Graph) -> (Vec<(VertexId, VertexId)>, usize) {
    let mut map: HashMap<VertexId, VertexId> = HashMap::new();
    let mut edges = Vec::new();
    for (u, v) in g.edges() {
        let next = map.len() as VertexId;
        let iu = *map.entry(u).or_insert(next);
        let next = map.len() as VertexId;
        let iv = *map.entry(v).or_insert(next);
        edges.push((iu, iv));
    }
    (edges, map.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dimacs_round_trip_is_exact(g in arb_graph()) {
        let mut bytes = Vec::new();
        write_dimacs(&g, &mut bytes).unwrap();
        let g2 = read_dimacs(bytes.as_slice()).unwrap();
        prop_assert_eq!(&g, &g2);
    }

    #[test]
    fn dimacs_round_trip_survives_comments_and_blank_lines(g in arb_graph(), style in 0usize..4) {
        let mut bytes = Vec::new();
        write_dimacs(&g, &mut bytes).unwrap();
        // DIMACS comments are 'c' lines; blanks are legal everywhere.
        let mut salted = String::new();
        for (i, line) in String::from_utf8(bytes).unwrap().lines().enumerate() {
            if i % 2 == style % 2 {
                salted.push_str(if style < 2 { "c noise\n" } else { "\n" });
            }
            salted.push_str(line);
            salted.push('\n');
        }
        let g2 = read_dimacs(salted.as_bytes()).unwrap();
        prop_assert_eq!(&g, &g2);
    }

    #[test]
    fn dimacs_indices_on_the_wire_are_one_based(g in arb_graph()) {
        let mut bytes = Vec::new();
        write_dimacs(&g, &mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        for line in text.lines().filter(|l| l.starts_with('e')) {
            let mut it = line.split_whitespace().skip(1);
            let u: usize = it.next().unwrap().parse().unwrap();
            let v: usize = it.next().unwrap().parse().unwrap();
            prop_assert!(u >= 1 && v >= 1, "{line} must be 1-based");
            prop_assert!(u <= g.n() && v <= g.n());
        }
    }

    #[test]
    fn edge_list_round_trip_matches_first_seen_relabelling(g in arb_graph(), style in 0usize..4) {
        let mut bytes = Vec::new();
        write_edge_list(&g, &mut bytes).unwrap();
        let salted = salt_with_comments(&String::from_utf8(bytes).unwrap(), style);
        let g2 = read_edge_list(salted.as_bytes()).unwrap();

        let (edges, seen) = first_seen_relabel(&g);
        let expected = Graph::from_edges(seen, edges).unwrap();
        prop_assert_eq!(&expected, &g2);
        // Invariants that hold regardless of the relabelling.
        prop_assert_eq!(g.m(), g2.m());
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).filter(|&d| d > 0).collect();
        let mut degrees2: Vec<usize> = g2.vertices().map(|v| g2.degree(v)).filter(|&d| d > 0).collect();
        degrees.sort_unstable();
        degrees2.sort_unstable();
        prop_assert_eq!(degrees, degrees2);
    }

    #[test]
    fn sniffing_recovers_the_written_format(g in arb_graph()) {
        let mut dimacs = Vec::new();
        write_dimacs(&g, &mut dimacs).unwrap();
        let dimacs = String::from_utf8(dimacs).unwrap();
        prop_assert_eq!(GraphFormat::sniff(&dimacs), GraphFormat::Dimacs);
        let roundtrip = read_graph_str(&dimacs, GraphFormat::sniff(&dimacs)).unwrap();
        prop_assert_eq!(&g, &roundtrip);

        if g.m() > 0 {
            let mut el = Vec::new();
            write_edge_list(&g, &mut el).unwrap();
            let el = String::from_utf8(el).unwrap();
            prop_assert_eq!(GraphFormat::sniff(&el), GraphFormat::EdgeList);
        }
    }
}
