//! t-plex detection and complement-graph topology analysis.
//!
//! A graph `g` is a *t-plex* when every vertex has at most `t` non-neighbours,
//! counting itself; equivalently `deg(v) ≥ |V(g)| − t` for every `v`. The
//! paper's early-termination technique relies on the observation that the
//! complement of a 2-plex or 3-plex has maximum degree ≤ 2, i.e. it decomposes
//! into isolated vertices, simple paths and simple cycles. This module
//! provides the plex test and that decomposition.

use crate::graph::{Graph, VertexId};

/// t-plex classification helpers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlexCheck;

impl PlexCheck {
    /// The smallest `t` such that `g` is a t-plex (0 for the empty graph).
    ///
    /// Equal to `n − min_degree(g)` on non-empty graphs: the vertex with the
    /// fewest neighbours is the one missing the most, and it misses
    /// `n − deg(v)` vertices counting itself.
    pub fn plex_level(g: &Graph) -> usize {
        let n = g.n();
        if n == 0 {
            return 0;
        }
        (0..n as VertexId)
            .map(|v| n - g.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether `g` is a t-plex.
    pub fn is_t_plex(g: &Graph, t: usize) -> bool {
        Self::plex_level(g) <= t || g.n() == 0
    }

    /// Whether `g` is a clique (1-plex).
    pub fn is_clique(g: &Graph) -> bool {
        Self::is_t_plex(g, 1)
    }
}

/// Decomposition of a maximum-degree-≤-2 graph into its connected components.
///
/// Used on the *complement* of a candidate subgraph: when the candidate is a
/// 3-plex, its complement has maximum degree ≤ 2 and therefore consists of
/// isolated vertices, simple paths and simple cycles only (West, *Introduction
/// to Graph Theory*).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComplementStructure {
    /// Vertices with no incident complement edge (adjacent to everything in the
    /// original candidate subgraph).
    pub isolated: Vec<VertexId>,
    /// Simple paths, each listed endpoint-to-endpoint with consecutive
    /// vertices adjacent (in the complement).
    pub paths: Vec<Vec<VertexId>>,
    /// Simple cycles, each listed in traversal order (length ≥ 3).
    pub cycles: Vec<Vec<VertexId>>,
}

impl ComplementStructure {
    /// Decomposes a graph of maximum degree ≤ 2 given as adjacency lists.
    ///
    /// Returns `None` if any vertex has degree > 2 (the caller's subgraph was
    /// not a 3-plex).
    pub fn from_adjacency(adjacency: &[Vec<VertexId>]) -> Option<Self> {
        let n = adjacency.len();
        if adjacency.iter().any(|a| a.len() > 2) {
            return None;
        }
        let mut visited = vec![false; n];
        let mut structure = ComplementStructure::default();

        // Isolated vertices.
        for v in 0..n {
            if adjacency[v].is_empty() {
                visited[v] = true;
                structure.isolated.push(v as VertexId);
            }
        }

        // Paths: start a walk from every unvisited degree-1 vertex.
        for start in 0..n {
            if visited[start] || adjacency[start].len() != 1 {
                continue;
            }
            let path = walk(adjacency, start, &mut visited);
            structure.paths.push(path);
        }

        // Cycles: whatever is left has degree exactly 2 everywhere.
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let cycle = walk(adjacency, start, &mut visited);
            debug_assert!(cycle.len() >= 3, "a simple cycle has at least 3 vertices");
            structure.cycles.push(cycle);
        }

        Some(structure)
    }

    /// Decomposes the **complement** of `g`.
    ///
    /// Returns `None` when the complement has a vertex of degree > 2 (i.e. `g`
    /// is not a 3-plex).
    pub fn of_complement(g: &Graph) -> Option<Self> {
        let n = g.n();
        let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for u in 0..n as VertexId {
            // Early exit: a vertex with more than 2 complement-neighbours.
            if n - 1 - g.degree(u) > 2 {
                return None;
            }
            for v in 0..n as VertexId {
                if u != v && !g.has_edge(u, v) {
                    adjacency[u as usize].push(v);
                }
            }
        }
        Self::from_adjacency(&adjacency)
    }

    /// Total number of vertices covered by the decomposition.
    pub fn total_vertices(&self) -> usize {
        self.isolated.len()
            + self.paths.iter().map(Vec::len).sum::<usize>()
            + self.cycles.iter().map(Vec::len).sum::<usize>()
    }
}

/// Walks a path or cycle component starting at `start`, marking vertices visited.
fn walk(adjacency: &[Vec<VertexId>], start: usize, visited: &mut [bool]) -> Vec<VertexId> {
    let mut component = vec![start as VertexId];
    visited[start] = true;
    let mut prev = usize::MAX;
    let mut cur = start;
    loop {
        let next = adjacency[cur]
            .iter()
            .map(|&x| x as usize)
            .find(|&x| x != prev && !visited[x]);
        match next {
            Some(nx) => {
                visited[nx] = true;
                component.push(nx as VertexId);
                prev = cur;
                cur = nx;
            }
            None => break,
        }
    }
    component
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plex_level_of_special_graphs() {
        assert_eq!(PlexCheck::plex_level(&Graph::empty(0)), 0);
        assert_eq!(PlexCheck::plex_level(&Graph::complete(5)), 1);
        assert_eq!(PlexCheck::plex_level(&Graph::empty(4)), 4);
        // C5: every vertex misses 2 others plus itself => 3-plex but not 2-plex.
        let c5 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(PlexCheck::plex_level(&c5), 3);
        assert!(PlexCheck::is_t_plex(&c5, 3));
        assert!(!PlexCheck::is_t_plex(&c5, 2));
    }

    #[test]
    fn clique_detection() {
        assert!(PlexCheck::is_clique(&Graph::complete(4)));
        assert!(PlexCheck::is_clique(&Graph::complete(1)));
        assert!(PlexCheck::is_clique(&Graph::empty(0)));
        assert!(!PlexCheck::is_clique(
            &Graph::from_edges(3, [(0, 1)]).unwrap()
        ));
    }

    #[test]
    fn two_plex_complement_is_perfect_matching_plus_isolated() {
        // Paper's Figure 3: 6-vertex 2-plex whose complement has edges (2,4),(3,5)
        // (relabelled 0-based: complement edges between the two "L/R" pairs).
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                // complement pairs: (2,4) and (3,5)
                if (u, v) == (2, 4) || (u, v) == (3, 5) {
                    continue;
                }
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        assert_eq!(PlexCheck::plex_level(&g), 2);
        let s = ComplementStructure::of_complement(&g).unwrap();
        assert_eq!(s.isolated, vec![0, 1]);
        assert_eq!(s.cycles.len(), 0);
        assert_eq!(s.paths.len(), 2);
        assert_eq!(s.total_vertices(), 6);
    }

    #[test]
    fn three_plex_complement_path_and_cycle() {
        // Paper's Figure 4: complement has path 0-1-2 and triangle 3-4-5.
        let complement_edges = [(0u32, 1u32), (1, 2), (3, 4), (4, 5), (3, 5)];
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                if complement_edges.contains(&(u, v)) {
                    continue;
                }
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        assert_eq!(PlexCheck::plex_level(&g), 3);
        let s = ComplementStructure::of_complement(&g).unwrap();
        assert!(s.isolated.is_empty());
        assert_eq!(s.paths.len(), 1);
        assert_eq!(s.paths[0].len(), 3);
        assert_eq!(s.cycles.len(), 1);
        assert_eq!(s.cycles[0].len(), 3);
    }

    #[test]
    fn of_complement_rejects_non_three_plex() {
        // A path graph: its complement has high degree for n >= 6.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert!(ComplementStructure::of_complement(&g).is_none());
    }

    #[test]
    fn from_adjacency_rejects_degree_three() {
        let adjacency = vec![vec![1, 2, 3], vec![0], vec![0], vec![0]];
        assert!(ComplementStructure::from_adjacency(&adjacency).is_none());
    }

    #[test]
    fn from_adjacency_decomposes_mixed_structure() {
        // isolated: 0; path: 1-2-3; cycle: 4-5-6-7.
        let adjacency: Vec<Vec<VertexId>> = vec![
            vec![],
            vec![2],
            vec![1, 3],
            vec![2],
            vec![5, 7],
            vec![4, 6],
            vec![5, 7],
            vec![6, 4],
        ];
        let s = ComplementStructure::from_adjacency(&adjacency).unwrap();
        assert_eq!(s.isolated, vec![0]);
        assert_eq!(s.paths.len(), 1);
        assert_eq!(s.paths[0].first(), Some(&1));
        assert_eq!(s.paths[0].last(), Some(&3));
        assert_eq!(s.cycles.len(), 1);
        assert_eq!(s.cycles[0].len(), 4);
        assert_eq!(s.total_vertices(), 8);
    }

    #[test]
    fn paths_list_consecutive_adjacent_vertices() {
        let adjacency: Vec<Vec<VertexId>> = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let s = ComplementStructure::from_adjacency(&adjacency).unwrap();
        assert_eq!(s.paths.len(), 1);
        let p = &s.paths[0];
        assert_eq!(p.len(), 4);
        for w in p.windows(2) {
            assert!(adjacency[w[0] as usize].contains(&w[1]));
        }
    }

    #[test]
    fn complement_of_complete_graph_is_all_isolated() {
        let g = Graph::complete(5);
        let s = ComplementStructure::of_complement(&g).unwrap();
        assert_eq!(s.isolated.len(), 5);
        assert!(s.paths.is_empty() && s.cycles.is_empty());
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::empty(1);
        let s = ComplementStructure::of_complement(&g).unwrap();
        assert_eq!(s.isolated, vec![0]);
    }
}
