//! Error type shared across the graph substrate.

use std::fmt;

/// Errors raised while constructing or parsing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex identifier referenced an index outside the declared range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A line of an input file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The graph is too large for the 32-bit vertex id space.
    TooManyVertices(usize),
    /// A binary `.mcg` input did not start with the format magic.
    BadMagic,
    /// A binary `.mcg` input declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// A binary `.mcg` section's checksum did not match its decoded bytes.
    ChecksumMismatch {
        /// Name of the failing section.
        section: &'static str,
    },
    /// Structurally invalid graph data: violated CSR invariants, truncated
    /// or inconsistent binary sections, malformed headers.
    InvalidData {
        /// Human readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex id {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::TooManyVertices(n) => {
                write!(f, "graph with {n} vertices exceeds the u32 vertex id space")
            }
            GraphError::BadMagic => {
                write!(f, "not an mcg file: bad magic bytes")
            }
            GraphError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported mcg format version {found} (this build reads up to {supported})"
                )
            }
            GraphError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in mcg section '{section}'")
            }
            GraphError::InvalidData { message } => {
                write!(f, "invalid graph data: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_vertex_out_of_range() {
        let e = GraphError::VertexOutOfRange { vertex: 10, n: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn display_parse() {
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(e.to_string().contains("missing"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn too_many_vertices_display() {
        let e = GraphError::TooManyVertices(5_000_000_000);
        assert!(e.to_string().contains("5000000000"));
    }

    #[test]
    fn binary_format_errors_display() {
        assert!(GraphError::BadMagic.to_string().contains("magic"));
        let e = GraphError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('1'));
        let e = GraphError::ChecksumMismatch {
            section: "adjacency",
        };
        assert!(e.to_string().contains("adjacency"));
        let e = GraphError::InvalidData {
            message: "bad offsets".into(),
        };
        assert!(e.to_string().contains("bad offsets"));
    }
}
