//! Compressed sparse row (CSR) representation of an undirected simple graph.

use crate::error::GraphError;

/// Vertex identifier. Kept at 32 bits so adjacency arrays stay compact.
pub type VertexId = u32;

/// Alias naming the CSR role of [`Graph`] in the hybrid layout.
///
/// The engine's hybrid memory layout (ARCHITECTURE.md) keeps the *global*
/// graph in `O(n + m)` compressed sparse row form and only densifies the
/// per-root neighbourhood subgraphs into bit matrices. `CsrGraph` is that
/// global sparse layer; it is the same type as [`Graph`] — use whichever name
/// reads better at the call site.
pub type CsrGraph = Graph;

/// An immutable, undirected, simple graph in CSR form.
///
/// * vertices are `0..n()`,
/// * each adjacency list is sorted in increasing order,
/// * there are no self-loops and no parallel edges.
///
/// Construct one with [`Graph::from_edges`], a [`crate::GraphBuilder`], or one
/// of the generators in the `mce-gen` crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    adjacency: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Self-loops are dropped and duplicate edges (in either orientation) are
    /// collapsed, so any iterator of pairs is accepted.
    ///
    /// # Errors
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyVertices(n));
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u as u64,
                    n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v as u64,
                    n,
                });
            }
            if u == v {
                continue;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut adjacency = Vec::new();
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
            adjacency.extend_from_slice(list);
            offsets.push(adjacency.len());
        }
        Ok(Graph { offsets, adjacency })
    }

    /// Builds a graph directly from raw CSR arrays in `O(n + m)` memory.
    ///
    /// This is the scale-path constructor: unlike [`Graph::from_edges`] it
    /// never materialises a `Vec<Vec<VertexId>>` intermediate, so loading a
    /// 1M-vertex / 10M-edge graph peaks at the size of the two arrays plus
    /// constants. The binary `.mcg` loader ([`crate::mcg`]) and large
    /// generators feed this directly.
    ///
    /// Every CSR invariant is validated before the graph is accepted:
    ///
    /// * `offsets` has `n + 1` entries, starts at 0, ends at
    ///   `adjacency.len()`, and is non-decreasing,
    /// * each adjacency list is strictly increasing (sorted, no duplicates),
    /// * every entry is a valid vertex id and never the list's own vertex
    ///   (no self-loops),
    /// * adjacency is symmetric: `(u, v)` present iff `(v, u)` present.
    ///
    /// # Errors
    /// [`GraphError::TooManyVertices`] if `n > u32::MAX`;
    /// [`GraphError::VertexOutOfRange`] for an out-of-range entry;
    /// [`GraphError::InvalidData`] for any other violated invariant.
    pub fn from_csr_parts(
        offsets: Vec<usize>,
        adjacency: Vec<VertexId>,
    ) -> Result<Self, GraphError> {
        let Some(n) = offsets.len().checked_sub(1) else {
            return Err(GraphError::InvalidData {
                message: "offset array must have n + 1 entries, got 0".into(),
            });
        };
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyVertices(n));
        }
        if offsets[0] != 0 {
            return Err(GraphError::InvalidData {
                message: format!("first offset must be 0, got {}", offsets[0]),
            });
        }
        if offsets[n] != adjacency.len() {
            return Err(GraphError::InvalidData {
                message: format!(
                    "last offset {} does not match adjacency length {}",
                    offsets[n],
                    adjacency.len()
                ),
            });
        }
        if let Some(v) = (0..n).find(|&v| offsets[v] > offsets[v + 1]) {
            return Err(GraphError::InvalidData {
                message: format!(
                    "offsets decrease at vertex {v}: {} > {}",
                    offsets[v],
                    offsets[v + 1]
                ),
            });
        }
        let g = Graph { offsets, adjacency };
        // Per-list invariants: strictly increasing, in range, no self-loop.
        for v in 0..n as VertexId {
            let list = g.neighbors(v);
            let mut prev: Option<VertexId> = None;
            for &u in list {
                if u as usize >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: u as u64,
                        n,
                    });
                }
                if u == v {
                    return Err(GraphError::InvalidData {
                        message: format!("self-loop on vertex {v}"),
                    });
                }
                if let Some(p) = prev {
                    if u <= p {
                        return Err(GraphError::InvalidData {
                            message: format!(
                                "adjacency list of vertex {v} is not strictly increasing \
                                 ({p} followed by {u})"
                            ),
                        });
                    }
                }
                prev = Some(u);
            }
        }
        // Symmetry: every forward entry (u < v) must have its mirror, and the
        // forward/backward entry counts must agree — with strictly sorted
        // lists this proves the adjacency relation is symmetric.
        let (mut forward, mut backward) = (0usize, 0usize);
        for u in 0..n as VertexId {
            for &v in g.neighbors(u) {
                if v > u {
                    forward += 1;
                    if g.neighbors(v).binary_search(&u).is_err() {
                        return Err(GraphError::InvalidData {
                            message: format!("edge ({u}, {v}) has no mirror entry ({v}, {u})"),
                        });
                    }
                } else {
                    backward += 1;
                }
            }
        }
        if forward != backward {
            return Err(GraphError::InvalidData {
                message: format!(
                    "asymmetric adjacency: {forward} forward entries vs {backward} backward"
                ),
            });
        }
        Ok(g)
    }

    /// The raw CSR offset array: `n + 1` non-decreasing entries, where
    /// `csr_offsets()[v]..csr_offsets()[v + 1]` spans [`Graph::neighbors`]`(v)`
    /// inside [`Graph::csr_adjacency`].
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array (length `2m`, each list sorted).
    #[inline]
    pub fn csr_adjacency(&self) -> &[VertexId] {
        &self.adjacency
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adjacency: Vec::new(),
        }
    }

    /// The complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let edges = (0..n as VertexId).flat_map(|u| ((u + 1)..n as VertexId).map(move |v| (u, v)));
        Graph::from_edges(n, edges).expect("complete graph endpoints are in range")
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge `(u, v)` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n() as VertexId
    }

    /// Iterates over every undirected edge exactly once as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Edge density ρ = m / n as used throughout the paper (0 when n = 0).
    pub fn edge_density(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.m() as f64 / self.n() as f64
        }
    }

    /// Number of common neighbours of `u` and `v` (linear merge of the two sorted lists).
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        let (mut i, mut j, a, b) = (0usize, 0usize, self.neighbors(u), self.neighbors(v));
        let mut count = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Collects the common neighbours of `u` and `v` into `out` (cleared first).
    pub fn common_neighbors_into(&self, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let (mut i, mut j, a, b) = (0usize, 0usize, self.neighbors(u), self.neighbors(v));
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Returns whether the vertex set `vs` induces a clique in this graph.
    pub fn is_clique(&self, vs: &[VertexId]) -> bool {
        for (i, &u) in vs.iter().enumerate() {
            for &v in &vs[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the subgraph induced by `vertices`.
    ///
    /// Returns the induced [`Graph`] (with vertices relabelled to `0..k` in
    /// the order given) together with the mapping from new id to original id.
    /// Duplicate vertices in the input are ignored after their first
    /// occurrence.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut map: Vec<VertexId> = Vec::with_capacity(vertices.len());
        let mut position = vec![u32::MAX; self.n()];
        for &v in vertices {
            if position[v as usize] == u32::MAX {
                position[v as usize] = map.len() as u32;
                map.push(v);
            }
        }
        let k = map.len();
        let mut edges = Vec::new();
        for (new_u, &orig_u) in map.iter().enumerate() {
            for &orig_v in self.neighbors(orig_u) {
                let new_v = position[orig_v as usize];
                if new_v != u32::MAX && (new_u as u32) < new_v {
                    edges.push((new_u as VertexId, new_v));
                }
            }
        }
        let g = Graph::from_edges(k, edges).expect("relabelled vertices are in range");
        (g, map)
    }

    /// Builds the complement of this graph (only sensible for small graphs).
    pub fn complement(&self) -> Graph {
        let n = self.n();
        let mut edges = Vec::new();
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                if !self.has_edge(u, v) {
                    edges.push((u, v));
                }
            }
        }
        Graph::from_edges(n, edges).expect("complement endpoints are in range")
    }

    /// Total degree sum (2m); handy for sanity checks.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_basic_counts() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn from_edges_dedups_and_drops_self_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, n: 2 }
        ));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = path4();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 10);
        assert!(g.is_clique(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        let g0 = Graph::empty(0);
        assert_eq!(g0.n(), 0);
        assert_eq!(g0.edge_density(), 0.0);
    }

    #[test]
    fn edge_density_matches_paper_definition() {
        let g = Graph::complete(4); // n=4, m=6
        assert!((g.edge_density() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn common_neighbors() {
        // Triangle 0-1-2 plus pendant 3 attached to 0 and 1.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)]).unwrap();
        assert_eq!(g.common_neighbor_count(0, 1), 2);
        let mut out = Vec::new();
        g.common_neighbors_into(0, 1, &mut out);
        assert_eq!(out, vec![2, 3]);
        assert_eq!(g.common_neighbor_count(2, 3), 2); // both adjacent to 0 and 1
    }

    #[test]
    fn is_clique_detects_missing_edge() {
        let g = path4();
        assert!(g.is_clique(&[0, 1]));
        assert!(g.is_clique(&[2]));
        assert!(g.is_clique(&[]));
        assert!(!g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[2, 0, 1]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3);
        assert_eq!(map, vec![2, 0, 1]);
        assert!(sub.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates_and_outside_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[0, 1, 1, 4]);
        assert_eq!(sub.n(), 3);
        assert_eq!(map, vec![0, 1, 4]);
        assert_eq!(sub.m(), 1); // only (0,1) survives
    }

    #[test]
    fn complement_of_path() {
        let g = path4();
        let c = g.complement();
        assert_eq!(c.m(), 3); // K4 has 6 edges, path has 3
        assert!(c.has_edge(0, 2));
        assert!(c.has_edge(0, 3));
        assert!(c.has_edge(1, 3));
        assert!(!c.has_edge(0, 1));
    }

    #[test]
    fn from_csr_parts_roundtrips_from_edges() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)]).unwrap();
        let rebuilt =
            Graph::from_csr_parts(g.csr_offsets().to_vec(), g.csr_adjacency().to_vec()).unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn from_csr_parts_accepts_empty_graph() {
        let g = Graph::from_csr_parts(vec![0], Vec::new()).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        let g = Graph::from_csr_parts(vec![0, 0, 0], Vec::new()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn from_csr_parts_rejects_empty_offsets() {
        assert!(matches!(
            Graph::from_csr_parts(Vec::new(), Vec::new()),
            Err(GraphError::InvalidData { .. })
        ));
    }

    #[test]
    fn from_csr_parts_rejects_bad_offsets() {
        // First offset non-zero.
        assert!(Graph::from_csr_parts(vec![1, 2], vec![0, 1]).is_err());
        // Last offset disagrees with adjacency length.
        assert!(Graph::from_csr_parts(vec![0, 1, 2], vec![1, 0, 0]).is_err());
        // Decreasing offsets.
        assert!(Graph::from_csr_parts(vec![0, 2, 1, 2], vec![1, 0]).is_err());
    }

    #[test]
    fn from_csr_parts_rejects_bad_lists() {
        // Out of range entry.
        assert!(matches!(
            Graph::from_csr_parts(vec![0, 1, 2], vec![7, 0]),
            Err(GraphError::VertexOutOfRange { vertex: 7, n: 2 })
        ));
        // Self-loop.
        assert!(Graph::from_csr_parts(vec![0, 1, 1], vec![0]).is_err());
        // Duplicate entry (not strictly increasing).
        assert!(Graph::from_csr_parts(vec![0, 2, 4], vec![1, 1, 0, 0]).is_err());
        // Unsorted list.
        assert!(Graph::from_csr_parts(vec![0, 2, 3, 4], vec![2, 1, 0, 0]).is_err());
    }

    #[test]
    fn from_csr_parts_rejects_asymmetry() {
        // (0,1) present but (1,0) missing — vertex 1's list is empty.
        assert!(matches!(
            Graph::from_csr_parts(vec![0, 1, 1], vec![1]),
            Err(GraphError::InvalidData { .. })
        ));
        // Backward-only entry: (1,0) present without (0,1).
        assert!(matches!(
            Graph::from_csr_parts(vec![0, 0, 1], vec![0]),
            Err(GraphError::InvalidData { .. })
        ));
    }

    #[test]
    fn complement_of_complete_is_empty() {
        let g = Graph::complete(6);
        let c = g.complement();
        assert_eq!(c.m(), 0);
        assert_eq!(c.n(), 6);
    }
}
