//! The h-index of a graph's degree sequence.
//!
//! `BK_Degree` (Xu et al.) orders the initial branching by degree and its
//! worst-case bound is `O(nh·3^{h/3})` where `h` is the graph's h-index: the
//! largest `h` such that the graph has at least `h` vertices of degree ≥ `h`.
//! The h-index always satisfies `δ ≤ h ≤ Δ`, which is why the degeneracy
//! ordering (bound `δ`) dominates it in the paper's Table VII.

use crate::topology::GraphTopology;

/// Computes the h-index of `g`'s degree sequence in `O(n)` after an `O(n)`
/// counting pass (no sort needed).
pub fn h_index<G: GraphTopology>(g: &G) -> usize {
    let n = g.n();
    if n == 0 {
        return 0;
    }
    // bucket[d] = number of vertices of degree exactly d (degrees capped at n).
    let mut buckets = vec![0usize; n + 1];
    for v in g.vertices_iter() {
        let d = g.degree(v).min(n);
        buckets[d] += 1;
    }
    // Walk down from the largest degree, accumulating how many vertices have
    // degree >= h; the first h where the count reaches h is the h-index.
    let mut at_least = 0usize;
    for h in (0..=n).rev() {
        at_least += buckets[h];
        if at_least >= h {
            return h;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneracy::degeneracy;
    use crate::graph::Graph;

    #[test]
    fn empty_and_edgeless_graphs() {
        assert_eq!(h_index(&Graph::empty(0)), 0);
        assert_eq!(h_index(&Graph::empty(10)), 0);
    }

    #[test]
    fn complete_graph_h_index_is_n_minus_one() {
        for n in 2..8 {
            assert_eq!(h_index(&Graph::complete(n)), n - 1);
        }
    }

    #[test]
    fn star_graph_h_index_is_one() {
        let g = Graph::from_edges(8, (1..8).map(|v| (0, v))).unwrap();
        assert_eq!(h_index(&g), 1);
    }

    #[test]
    fn path_h_index_is_two() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        // Four internal vertices of degree 2 => h = 2.
        assert_eq!(h_index(&g), 2);
    }

    #[test]
    fn h_index_bounded_by_degeneracy_and_max_degree() {
        let graphs = vec![
            Graph::from_edges(
                7,
                [
                    (0, 1),
                    (0, 2),
                    (0, 3),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                ],
            )
            .unwrap(),
            Graph::complete(6),
            Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap(),
        ];
        for g in graphs {
            let h = h_index(&g);
            assert!(degeneracy(&g) <= h, "δ ≤ h");
            assert!(h <= g.max_degree(), "h ≤ Δ");
        }
    }

    #[test]
    fn mixed_degree_sequence() {
        // Degrees: 4,3,3,2,1,1 → h = 3.
        let g =
            Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (2, 5)]).unwrap();
        assert_eq!(h_index(&g), 3);
    }
}
