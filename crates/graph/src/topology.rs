//! The [`GraphTopology`] trait: representation-independent read access to an
//! undirected simple graph.
//!
//! The enumeration engine's *global* phase — degeneracy ordering, root
//! planning, per-root `LocalGraph` extraction — only ever **reads** the input
//! graph through a handful of operations: vertex/edge counts, degrees, sorted
//! neighbour iteration and adjacency tests. This trait names exactly that
//! surface so the engine can run unchanged over either global representation:
//!
//! * [`Graph`] (= [`CsrGraph`](crate::graph::CsrGraph)) — compressed sparse
//!   row, `O(n + m)` memory. The production representation: a 1M-vertex /
//!   10M-edge graph costs ~88 MB of adjacency data.
//! * [`AdjMatrix`] — a dense `n × n` bit matrix, `O(n²/64)` memory. Only
//!   sensible as a *global* representation for small graphs (it is the
//!   per-root *local* representation in the hot kernels); implementing the
//!   trait for it lets the test suite prove that enumeration output is
//!   byte-identical under both representations.
//!
//! # Contract
//!
//! Implementations must describe an **undirected simple graph** on vertices
//! `0..n()`: no self-loops, no parallel edges, and `has_edge(u, v) ==
//! has_edge(v, u)`. [`GraphTopology::neighbors_iter`] must yield each
//! neighbour exactly once in **strictly increasing** order — the provided
//! sorted-merge helpers ([`GraphTopology::common_neighbors_into`] et al.) and
//! the deterministic output contract of the solver both rely on it.

use crate::adjmatrix::AdjMatrix;
use crate::graph::{Graph, VertexId};

/// Read-only access to an undirected simple graph, independent of its
/// in-memory representation.
///
/// See the [module docs](self) for the contract every implementation must
/// uphold (simple, undirected, sorted neighbour iteration).
pub trait GraphTopology {
    /// The sorted neighbour iterator of one vertex.
    type Neighbors<'a>: Iterator<Item = VertexId>
    where
        Self: 'a;

    /// Number of vertices; vertex ids are `0..n()`.
    fn n(&self) -> usize;

    /// Number of undirected edges.
    fn m(&self) -> usize;

    /// Degree of vertex `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// The neighbours of `v` in strictly increasing order.
    fn neighbors_iter(&self, v: VertexId) -> Self::Neighbors<'_>;

    /// Whether the undirected edge `{u, v}` exists (`false` when `u == v`).
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool;

    /// Iterates over all vertices `0..n()`.
    fn vertices_iter(&self) -> std::ops::Range<VertexId> {
        0..self.n() as VertexId
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    fn max_degree(&self) -> usize {
        self.vertices_iter()
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Edge density ρ = m / n as used throughout the paper (0 when n = 0).
    fn edge_density(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.m() as f64 / self.n() as f64
        }
    }

    /// Total degree sum (2m).
    fn degree_sum(&self) -> usize {
        2 * self.m()
    }

    /// Number of common neighbours of `u` and `v` (linear merge of the two
    /// sorted neighbour streams).
    fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        let mut count = 0;
        merge_common(self.neighbors_iter(u), self.neighbors_iter(v), |_| {
            count += 1
        });
        count
    }

    /// Collects the common neighbours of `u` and `v` into `out` (cleared
    /// first), in increasing order.
    fn common_neighbors_into(&self, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        merge_common(self.neighbors_iter(u), self.neighbors_iter(v), |w| {
            out.push(w)
        });
    }

    /// Whether the vertex set `vs` induces a clique.
    fn is_clique(&self, vs: &[VertexId]) -> bool {
        for (i, &u) in vs.iter().enumerate() {
            for &v in &vs[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Calls `each` for every value produced by both strictly increasing streams.
fn merge_common<A, B, F>(mut a: A, mut b: B, mut each: F)
where
    A: Iterator<Item = VertexId>,
    B: Iterator<Item = VertexId>,
    F: FnMut(VertexId),
{
    let (mut x, mut y) = (a.next(), b.next());
    while let (Some(u), Some(v)) = (x, y) {
        match u.cmp(&v) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                each(u);
                x = a.next();
                y = b.next();
            }
        }
    }
}

impl GraphTopology for Graph {
    type Neighbors<'a> = std::iter::Copied<std::slice::Iter<'a, VertexId>>;

    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }

    #[inline]
    fn m(&self) -> usize {
        Graph::m(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }

    #[inline]
    fn neighbors_iter(&self, v: VertexId) -> Self::Neighbors<'_> {
        self.neighbors(v).iter().copied()
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        Graph::has_edge(self, u, v)
    }
}

/// The sorted neighbour iterator of one [`AdjMatrix`] row.
///
/// Wraps the matrix's word-scanning bit iterator and converts local indices
/// to [`VertexId`]s.
pub struct AdjMatrixNeighbors<'a> {
    inner: Box<dyn Iterator<Item = usize> + 'a>,
}

impl Iterator for AdjMatrixNeighbors<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        self.inner.next().map(|i| i as VertexId)
    }
}

impl GraphTopology for AdjMatrix {
    type Neighbors<'a> = AdjMatrixNeighbors<'a>;

    #[inline]
    fn n(&self) -> usize {
        AdjMatrix::n(self)
    }

    /// `O(n²/64)` — counts the set bits of the whole matrix. The dense global
    /// representation is only used on small graphs; callers needing `m`
    /// repeatedly should cache it.
    fn m(&self) -> usize {
        (0..AdjMatrix::n(self))
            .map(|i| self.row_len(i))
            .sum::<usize>()
            / 2
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.row_len(v as usize)
    }

    fn neighbors_iter(&self, v: VertexId) -> Self::Neighbors<'_> {
        AdjMatrixNeighbors {
            inner: Box::new(self.row_iter(v as usize)),
        }
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.contains(u as usize, v as usize)
    }
}

impl AdjMatrix {
    /// Builds a dense global adjacency matrix from any topology.
    ///
    /// Memory is `O(n²/64)` — only use this for small graphs (the
    /// representation-equivalence tests, dense benchmark instances). The
    /// result satisfies the [`GraphTopology`] contract because the source
    /// does.
    pub fn from_topology<G: GraphTopology>(g: &G) -> AdjMatrix {
        let n = g.n();
        let mut m = AdjMatrix::new(n);
        for u in g.vertices_iter() {
            for v in g.neighbors_iter(u) {
                if v > u {
                    m.insert_sym(u as usize, v as usize);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // K4 on {0,1,2,3} plus a tail 3-4-5 and isolated vertex 6.
        Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
        .unwrap()
    }

    fn assert_same_topology<A: GraphTopology, B: GraphTopology>(a: &A, b: &B) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        assert_eq!(a.max_degree(), b.max_degree());
        assert_eq!(a.degree_sum(), b.degree_sum());
        for v in a.vertices_iter() {
            assert_eq!(a.degree(v), b.degree(v), "degree({v})");
            let na: Vec<VertexId> = a.neighbors_iter(v).collect();
            let nb: Vec<VertexId> = b.neighbors_iter(v).collect();
            assert_eq!(na, nb, "neighbors({v})");
            assert!(na.windows(2).all(|w| w[0] < w[1]), "sorted({v})");
        }
        for u in a.vertices_iter() {
            for v in a.vertices_iter() {
                assert_eq!(a.has_edge(u, v), b.has_edge(u, v), "edge({u},{v})");
            }
        }
    }

    #[test]
    fn graph_impl_matches_inherent_methods() {
        let g = sample();
        let t: &dyn Fn(&Graph) -> usize = &|g| GraphTopology::n(g);
        assert_eq!(t(&g), g.n());
        assert_eq!(GraphTopology::m(&g), g.m());
        assert_eq!(GraphTopology::max_degree(&g), g.max_degree());
        let via_trait: Vec<VertexId> = g.neighbors_iter(3).collect();
        assert_eq!(via_trait, g.neighbors(3));
        assert_eq!(GraphTopology::common_neighbor_count(&g, 0, 1), 2);
        let mut out = Vec::new();
        GraphTopology::common_neighbors_into(&g, 0, 1, &mut out);
        let mut expected = Vec::new();
        g.common_neighbors_into(0, 1, &mut expected);
        assert_eq!(out, expected);
    }

    #[test]
    fn adjmatrix_from_topology_is_equivalent() {
        let g = sample();
        let m = AdjMatrix::from_topology(&g);
        assert_same_topology(&g, &m);
    }

    #[test]
    fn adjmatrix_trait_counts_edges_once() {
        let g = Graph::complete(5);
        let m = AdjMatrix::from_topology(&g);
        assert_eq!(GraphTopology::m(&m), 10);
        assert_eq!(m.degree(0), 4);
        assert!(!m.has_edge(2, 2), "self-loops never exist");
    }

    #[test]
    fn empty_graph_topologies() {
        let g = Graph::empty(0);
        let m = AdjMatrix::from_topology(&g);
        assert_same_topology(&g, &m);
        assert_eq!(GraphTopology::max_degree(&m), 0);
        assert_eq!(m.edge_density(), 0.0);
    }

    #[test]
    fn provided_is_clique() {
        let g = sample();
        let m = AdjMatrix::from_topology(&g);
        assert!(GraphTopology::is_clique(&m, &[0, 1, 2, 3]));
        assert!(!GraphTopology::is_clique(&m, &[2, 3, 4]));
        assert!(GraphTopology::is_clique(&m, &[]));
    }
}
