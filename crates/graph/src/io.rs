//! Text I/O: edge-list and DIMACS graph formats.
//!
//! Real-world MCE datasets (networkrepository / SNAP) are distributed as
//! whitespace-separated edge lists, sometimes with `#`/`%` comment lines, or
//! as DIMACS `.col`/`.clq` files (`p edge n m` header followed by `e u v`
//! lines with 1-based vertices). Both are supported here so a user can run
//! the library on the paper's original inputs when they have them locally.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Reads a whitespace-separated edge list from `reader`.
///
/// Lines starting with `#`, `%` or `//` and blank lines are ignored. Vertex
/// labels may be arbitrary non-negative integers; they are densely relabelled
/// in first-seen order.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut builder = GraphBuilder::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.starts_with('#')
            || trimmed.starts_with('%')
            || trimmed.starts_with("//")
        {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_token(it.next(), lineno + 1)?;
        let v = parse_token(it.next(), lineno + 1)?;
        builder.add_edge(u, v);
    }
    builder.build()
}

/// Reads an edge list from a file path. See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_edge_list(File::open(path)?)
}

/// Reads a DIMACS `.col` / `.clq` graph (`p edge n m` header, `e u v` edges,
/// 1-based vertex ids).
pub fn read_dimacs<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let buf = BufReader::new(reader);
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        match it.next() {
            Some("p") => {
                let _format = it.next();
                let nv = parse_token(it.next(), lineno + 1)? as usize;
                n = Some(nv);
            }
            Some("e") => {
                let u = parse_token(it.next(), lineno + 1)?;
                let v = parse_token(it.next(), lineno + 1)?;
                if u == 0 || v == 0 {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        message: "DIMACS vertices are 1-based; found 0".into(),
                    });
                }
                edges.push((u - 1, v - 1));
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("unexpected record type '{other}'"),
                })
            }
            None => continue,
        }
    }
    let n = n.ok_or(GraphError::Parse {
        line: 0,
        message: "missing 'p edge n m' header".into(),
    })?;
    let mut builder = GraphBuilder::with_num_vertices(n);
    for (u, v) in edges {
        if u as usize >= n || v as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v),
                n,
            });
        }
        builder.add_edge(u, v);
    }
    builder.build()
}

/// Reads a DIMACS graph from a file path. See [`read_dimacs`].
pub fn read_dimacs_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_dimacs(File::open(path)?)
}

/// Writes `g` as a whitespace-separated edge list (one `u v` pair per line).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# {} vertices, {} edges", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()?;
    Ok(())
}

/// Writes `g` as an edge list to a file path. See [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, File::create(path)?)
}

fn parse_token(token: Option<&str>, line: usize) -> Result<u64, GraphError> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "missing field".into(),
    })?;
    token.parse::<u64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("'{token}' is not a vertex id"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_edge_list_with_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n1 2\n% other comment\n// c style\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn edge_list_relabels_sparse_ids() {
        let text = "1000 2000\n2000 3000\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn reads_dimacs_triangle() {
        let text = "c sample\np edge 4 3\ne 1 2\ne 2 3\ne 1 3\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn dimacs_requires_header() {
        let err = read_dimacs("e 1 2\n".as_bytes()).unwrap_err();
        // Edge before header still parses the edge, but missing n fails at the end
        // or the edge is out of range; either way it's an error.
        assert!(matches!(
            err,
            GraphError::Parse { .. } | GraphError::VertexOutOfRange { .. }
        ));
    }

    #[test]
    fn dimacs_rejects_zero_based_vertices() {
        let err = read_dimacs("p edge 3 1\ne 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn dimacs_rejects_unknown_records() {
        let err = read_dimacs("p edge 3 1\nq 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn dimacs_rejects_out_of_range_vertex() {
        let err = read_dimacs("p edge 2 1\ne 1 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn edge_list_round_trip() {
        let g = Graph::complete(5);
        let mut bytes = Vec::new();
        write_edge_list(&g, &mut bytes).unwrap();
        let g2 = read_edge_list(bytes.as_slice()).unwrap();
        assert_eq!(g2.n(), 5);
        assert_eq!(g2.m(), 10);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("mce_graph_io_roundtrip_test.txt");
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.m(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/definitely/not/a/path.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
