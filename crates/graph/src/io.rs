//! Graph I/O: edge-list and DIMACS text formats plus the `.mcg` binary.
//!
//! Real-world MCE datasets (networkrepository / SNAP) are distributed as
//! whitespace-separated edge lists, sometimes with `#`/`%` comment lines, or
//! as DIMACS `.col`/`.clq` files (`p edge n m` header followed by `e u v`
//! lines with 1-based vertices). Both are supported here so a user can run
//! the library on the paper's original inputs when they have them locally.
//! The [`crate::mcg`] binary format (`.mcg`) is dispatched through the same
//! [`GraphFormat`] surface: it stores the CSR arrays verbatim, so loading it
//! is a streamed `O(n + m)` copy instead of a parse (see `docs/FORMAT.md`).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::mcg;

/// The graph file formats understood by this module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFormat {
    /// Whitespace-separated `u v` pairs, `#`/`%`/`//` comments.
    EdgeList,
    /// DIMACS `.col`/`.clq`: `p edge n m` header, `e u v` records, 1-based ids.
    Dimacs,
    /// The `.mcg` binary CSR container (see [`crate::mcg`] and `docs/FORMAT.md`).
    Mcg,
}

impl GraphFormat {
    /// Guesses the format from a *recognised* file extension: `.col`, `.clq`,
    /// `.dimacs` → DIMACS; `.txt`, `.edges`, `.el`, `.edgelist` → edge list;
    /// `.mcg` → binary CSR. Returns `None` for anything else (including no
    /// extension), so callers can fall back to content sniffing.
    pub fn from_extension(path: &Path) -> Option<GraphFormat> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "col" | "clq" | "dimacs" => Some(GraphFormat::Dimacs),
            "txt" | "edges" | "el" | "edgelist" => Some(GraphFormat::EdgeList),
            "mcg" => Some(GraphFormat::Mcg),
            _ => None,
        }
    }

    /// Sniffs the format from raw file bytes: the `.mcg` magic wins outright
    /// (it starts with a non-ASCII byte precisely so no text file can collide),
    /// anything else is treated as text and dispatched by [`GraphFormat::sniff`].
    pub fn sniff_bytes(content: &[u8]) -> GraphFormat {
        if mcg::is_mcg(content) {
            return GraphFormat::Mcg;
        }
        GraphFormat::sniff(&String::from_utf8_lossy(content))
    }

    /// Sniffs the format from file content: the first line whose leading token
    /// is `p` or `e` marks DIMACS; the first line that parses as `u v` marks
    /// an edge list. Defaults to edge list when nothing decides.
    pub fn sniff(content: &str) -> GraphFormat {
        for line in content.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty()
                || trimmed.starts_with('#')
                || trimmed.starts_with('%')
                || trimmed.starts_with("//")
            {
                continue;
            }
            let mut it = trimmed.split_whitespace();
            match it.next() {
                Some("p") | Some("e") | Some("c") => return GraphFormat::Dimacs,
                Some(tok) if tok.parse::<u64>().is_ok() => return GraphFormat::EdgeList,
                _ => return GraphFormat::EdgeList,
            }
        }
        GraphFormat::EdgeList
    }
}

/// Parses `content` as `format`.
///
/// The text formats accept any `&str`; [`GraphFormat::Mcg`] is a binary
/// container, so prefer [`read_graph_bytes`] when the input may be `.mcg` —
/// this wrapper only works for it when the caller's string round-tripped the
/// raw bytes losslessly.
pub fn read_graph_str(content: &str, format: GraphFormat) -> Result<Graph, GraphError> {
    read_graph_bytes(content.as_bytes(), format)
}

/// Parses raw file bytes as `format`. This is the dispatch point that treats
/// all three formats uniformly; use [`GraphFormat::sniff_bytes`] first when
/// the format is unknown.
pub fn read_graph_bytes(content: &[u8], format: GraphFormat) -> Result<Graph, GraphError> {
    match format {
        GraphFormat::EdgeList => read_edge_list(content),
        GraphFormat::Dimacs => read_dimacs(content),
        GraphFormat::Mcg => mcg::read_mcg(content),
    }
}

/// Reads a whitespace-separated edge list from `reader`.
///
/// Lines starting with `#`, `%` or `//` and blank lines are ignored. Vertex
/// labels may be arbitrary non-negative integers; they are densely relabelled
/// in first-seen order.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut builder = GraphBuilder::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.starts_with('#')
            || trimmed.starts_with('%')
            || trimmed.starts_with("//")
        {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_token(it.next(), lineno + 1)?;
        let v = parse_token(it.next(), lineno + 1)?;
        builder.add_edge(u, v);
    }
    builder.build()
}

/// Reads an edge list from a file path. See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_edge_list(File::open(path)?)
}

/// Reads a DIMACS `.col` / `.clq` graph (`p edge n m` header, `e u v` edges,
/// 1-based vertex ids).
pub fn read_dimacs<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let buf = BufReader::new(reader);
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        match it.next() {
            Some("p") => {
                let _format = it.next();
                let nv = parse_token(it.next(), lineno + 1)? as usize;
                n = Some(nv);
            }
            Some("e") => {
                let u = parse_token(it.next(), lineno + 1)?;
                let v = parse_token(it.next(), lineno + 1)?;
                if u == 0 || v == 0 {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        message: "DIMACS vertices are 1-based; found 0".into(),
                    });
                }
                edges.push((u - 1, v - 1));
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("unexpected record type '{other}'"),
                })
            }
            None => continue,
        }
    }
    let n = n.ok_or(GraphError::Parse {
        line: 0,
        message: "missing 'p edge n m' header".into(),
    })?;
    let mut builder = GraphBuilder::with_num_vertices(n);
    for (u, v) in edges {
        if u as usize >= n || v as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v),
                n,
            });
        }
        builder.add_edge(u, v);
    }
    builder.build()
}

/// Reads a DIMACS graph from a file path. See [`read_dimacs`].
pub fn read_dimacs_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_dimacs(File::open(path)?)
}

/// Writes `g` as a whitespace-separated edge list (one `u v` pair per line).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# {} vertices, {} edges", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()?;
    Ok(())
}

/// Writes `g` as an edge list to a file path. See [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, File::create(path)?)
}

/// Writes `g` in DIMACS format (`p edge n m` header, 1-based `e u v` lines).
///
/// Unlike the edge-list format, DIMACS declares the vertex count in its
/// header, so isolated vertices survive a round trip through this writer.
pub fn write_dimacs<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "c generated by mce-graph")?;
    writeln!(out, "p edge {} {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(out, "e {} {}", u + 1, v + 1)?;
    }
    out.flush()?;
    Ok(())
}

/// Writes `g` in DIMACS format to a file path. See [`write_dimacs`].
pub fn write_dimacs_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_dimacs(g, File::create(path)?)
}

/// Writes `g` as `format` to `writer`.
pub fn write_graph<W: Write>(g: &Graph, writer: W, format: GraphFormat) -> Result<(), GraphError> {
    match format {
        GraphFormat::EdgeList => write_edge_list(g, writer),
        GraphFormat::Dimacs => write_dimacs(g, writer),
        GraphFormat::Mcg => mcg::write_mcg(g, writer),
    }
}

fn parse_token(token: Option<&str>, line: usize) -> Result<u64, GraphError> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "missing field".into(),
    })?;
    token.parse::<u64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("'{token}' is not a vertex id"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_edge_list_with_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n1 2\n% other comment\n// c style\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn edge_list_relabels_sparse_ids() {
        let text = "1000 2000\n2000 3000\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn reads_dimacs_triangle() {
        let text = "c sample\np edge 4 3\ne 1 2\ne 2 3\ne 1 3\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn dimacs_requires_header() {
        let err = read_dimacs("e 1 2\n".as_bytes()).unwrap_err();
        // Edge before header still parses the edge, but missing n fails at the end
        // or the edge is out of range; either way it's an error.
        assert!(matches!(
            err,
            GraphError::Parse { .. } | GraphError::VertexOutOfRange { .. }
        ));
    }

    #[test]
    fn dimacs_rejects_zero_based_vertices() {
        let err = read_dimacs("p edge 3 1\ne 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn dimacs_rejects_unknown_records() {
        let err = read_dimacs("p edge 3 1\nq 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn dimacs_rejects_out_of_range_vertex() {
        let err = read_dimacs("p edge 2 1\ne 1 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn edge_list_round_trip() {
        let g = Graph::complete(5);
        let mut bytes = Vec::new();
        write_edge_list(&g, &mut bytes).unwrap();
        let g2 = read_edge_list(bytes.as_slice()).unwrap();
        assert_eq!(g2.n(), 5);
        assert_eq!(g2.m(), 10);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("mce_graph_io_roundtrip_test.txt");
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.m(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/definitely/not/a/path.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    #[test]
    fn dimacs_round_trip_preserves_isolated_vertices() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (4, 5)]).unwrap();
        let mut bytes = Vec::new();
        write_dimacs(&g, &mut bytes).unwrap();
        let g2 = read_dimacs(bytes.as_slice()).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.degree(3), 0);
    }

    #[test]
    fn sniff_detects_dimacs_and_edge_list() {
        assert_eq!(
            GraphFormat::sniff("c comment\np edge 3 1\ne 1 2\n"),
            GraphFormat::Dimacs
        );
        assert_eq!(GraphFormat::sniff("# hello\n0 1\n"), GraphFormat::EdgeList);
        assert_eq!(GraphFormat::sniff(""), GraphFormat::EdgeList);
        // DIMACS without a leading comment still sniffs via the 'p' header.
        assert_eq!(
            GraphFormat::sniff("p edge 2 1\ne 1 2\n"),
            GraphFormat::Dimacs
        );
    }

    #[test]
    fn format_from_extension() {
        use std::path::Path;
        assert_eq!(
            GraphFormat::from_extension(Path::new("g.col")),
            Some(GraphFormat::Dimacs)
        );
        assert_eq!(
            GraphFormat::from_extension(Path::new("g.CLQ")),
            Some(GraphFormat::Dimacs)
        );
        assert_eq!(
            GraphFormat::from_extension(Path::new("g.txt")),
            Some(GraphFormat::EdgeList)
        );
        assert_eq!(GraphFormat::from_extension(Path::new("graph")), None);
        // Unrecognised extensions defer to content sniffing.
        assert_eq!(GraphFormat::from_extension(Path::new("g.dat")), None);
    }

    #[test]
    fn read_graph_str_dispatches_on_format() {
        let g = read_graph_str("0 1\n1 2\n", GraphFormat::EdgeList).unwrap();
        assert_eq!(g.m(), 2);
        let g = read_graph_str("p edge 3 1\ne 1 3\n", GraphFormat::Dimacs).unwrap();
        assert_eq!(g.n(), 3);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn write_graph_dispatches_on_format() {
        let g = Graph::complete(3);
        let mut el = Vec::new();
        write_graph(&g, &mut el, GraphFormat::EdgeList).unwrap();
        assert!(String::from_utf8(el).unwrap().contains("0 1"));
        let mut dm = Vec::new();
        write_graph(&g, &mut dm, GraphFormat::Dimacs).unwrap();
        assert!(String::from_utf8(dm).unwrap().contains("p edge 3 3"));
    }

    #[test]
    fn mcg_dispatches_through_graph_format() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap();
        let mut bytes = Vec::new();
        write_graph(&g, &mut bytes, GraphFormat::Mcg).unwrap();
        assert_eq!(GraphFormat::sniff_bytes(&bytes), GraphFormat::Mcg);
        let g2 = read_graph_bytes(&bytes, GraphFormat::Mcg).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn sniff_bytes_falls_back_to_text_sniffing() {
        assert_eq!(
            GraphFormat::sniff_bytes(b"0 1\n1 2\n"),
            GraphFormat::EdgeList
        );
        assert_eq!(
            GraphFormat::sniff_bytes(b"p edge 3 1\ne 1 2\n"),
            GraphFormat::Dimacs
        );
        assert_eq!(GraphFormat::sniff_bytes(b""), GraphFormat::EdgeList);
        // Arbitrary binary junk that is not the magic does not panic.
        assert_eq!(
            GraphFormat::sniff_bytes(&[0xff, 0xfe, 0x00, 0x01]),
            GraphFormat::EdgeList
        );
    }

    #[test]
    fn mcg_extension_is_recognised() {
        use std::path::Path;
        assert_eq!(
            GraphFormat::from_extension(Path::new("g.mcg")),
            Some(GraphFormat::Mcg)
        );
        assert_eq!(
            GraphFormat::from_extension(Path::new("g.MCG")),
            Some(GraphFormat::Mcg)
        );
    }
}
