//! # mce-graph — graph substrate for maximal clique enumeration
//!
//! This crate provides every graph-side building block used by the `hbbmc`
//! crate (the reproduction of *"Maximal Clique Enumeration with Hybrid
//! Branching and Early Termination"*, ICDE 2025):
//!
//! * a compact **CSR (compressed sparse row) undirected graph** with sorted
//!   adjacency lists ([`Graph`], alias [`CsrGraph`]) and a forgiving
//!   [`GraphBuilder`] that deduplicates edges and drops self-loops,
//! * the [`GraphTopology`] **trait** giving the enumeration engine
//!   representation-independent read access to the global graph — implemented
//!   by both the sparse CSR [`Graph`] and the dense [`AdjMatrix`]
//!   ([`topology`]),
//! * the versioned, checksummed **`.mcg` binary on-disk format** with a
//!   streamed `O(n + m)` loader for production-scale graphs ([`mcg`]; byte
//!   spec in `docs/FORMAT.md`),
//! * a fixed-capacity **bit set** with fused word-parallel kernels
//!   ([`bitset`]) and a contiguous **bit adjacency matrix** with row stride
//!   for dense branch subgraphs ([`adjmatrix`]),
//! * **degeneracy ordering / core decomposition** ([`degeneracy`]),
//! * **triangle listing and per-edge support** ([`triangles`]),
//! * **truss decomposition and the truss-based edge ordering** π_τ used by
//!   the edge-oriented branching framework ([`truss`]),
//! * alternative vertex/edge **orderings** used by the paper's baselines
//!   ([`ordering`]),
//! * the **complement-graph topology analysis** (isolated vertices, simple
//!   paths, simple cycles) that powers the early-termination technique
//!   ([`kplex`]),
//! * simple **text I/O** for edge lists and DIMACS files ([`io`]),
//! * aggregate **graph statistics** (n, m, δ, τ, ρ and the paper's
//!   complexity condition) ([`stats`]).
//!
//! All structures are implemented from scratch on `std` only; identifiers are
//! `u32` ([`VertexId`]) to keep hot data small.
//!
//! `unsafe` is denied crate-wide and allowed in exactly one place: the
//! private `std::arch` SIMD arms of [`kernels`], whose `#[target_feature]`
//! functions are only reachable behind a positive runtime feature check.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adjmatrix;
pub mod bitset;
pub mod builder;
pub mod components;
pub mod degeneracy;
pub mod error;
pub mod graph;
pub mod hindex;
pub mod io;
pub mod kernels;
pub mod kplex;
pub mod mcg;
pub mod ordering;
pub mod stats;
pub mod topology;
pub mod triangles;
pub mod truss;

pub use adjmatrix::AdjMatrix;
pub use bitset::{BitSet, BitsMut, BitsRef};
pub use builder::GraphBuilder;
pub use components::{connected_components, largest_component, ConnectedComponents};
pub use degeneracy::{core_numbers, degeneracy_ordering, DegeneracyOrdering};
pub use error::GraphError;
pub use graph::{CsrGraph, Graph, VertexId};
pub use hindex::h_index;
pub use io::GraphFormat;
pub use kernels::{KernelBackend, KernelError, Kernels};
pub use kplex::{ComplementStructure, PlexCheck};
pub use ordering::{EdgeOrderingKind, VertexOrderingKind};
pub use stats::GraphStats;
pub use topology::GraphTopology;
pub use triangles::{edge_supports, triangle_count};
pub use truss::{truss_ordering, TrussOrdering};
