//! A small, fixed-capacity bit set used for dense neighbourhood tests.
//!
//! The enumeration frameworks frequently need `O(1)` membership tests over
//! vertex sets whose universe is the (small) candidate subgraph of a branch.
//! [`BitSet`] is a plain `Vec<u64>` backed bit set with the operations those
//! hot loops need: insert/remove/contains, clear, fused in-place kernels
//! against raw word rows (the rows of an [`AdjMatrix`](crate::AdjMatrix)),
//! intersection counting and word-level iteration over set bits.
//!
//! # Out-of-range contract
//!
//! All membership operations treat a value `>= capacity` uniformly as *not
//! part of the universe*: [`BitSet::contains`] and [`BitSet::remove`] return
//! `false`, and [`BitSet::insert`] is a no-op returning `false`. The set never
//! grows implicitly — resizing is explicit via [`BitSet::reset`]. (Earlier
//! versions panicked in `insert` but silently accepted out-of-range values in
//! `remove`/`contains`; the contract is now total and consistent across the
//! three operations.)
//!
//! # Word rows
//!
//! The `*_words` kernels operate directly on `&[u64]` word slices so the hot
//! loops can intersect against contiguous adjacency-matrix rows without
//! materialising a second `BitSet`. Words missing from a shorter slice are
//! treated as zero; words beyond `self`'s length are ignored.
//!
//! # Kernel backends
//!
//! The dense word loops of the fused kernels run through the process-wide
//! [`kernels`] backend (scalar / AVX2 / NEON, resolved once
//! at startup). Tail and out-of-range semantics live *here*: `BitSet` slices
//! both operands to their shared word prefix, hands the equal-length dense
//! part to the backend, and handles ragged tails itself, so every backend is
//! bit-identical by construction on the dense part and the tail rules cannot
//! diverge between backends. The `*_with` variants take an explicit
//! [`Kernels`] table — used by the backend-equivalence tests and
//! `bench_kernels` to pin a specific backend regardless of the process-wide
//! selection.
//!
//! [`BitsRef`]/[`BitsMut`] are borrowed views with the same semantics over
//! word rows owned elsewhere (the per-depth scratch slab of the solver).

use crate::kernels::{self, push_bits, Kernels};

/// A fixed-capacity bit set over the universe `0..capacity`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Creates an empty bit set able to hold values in `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Creates a bit set with the given capacity and all bits in `0..capacity` set.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::with_capacity(capacity);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * WORD_BITS;
            let bits = (capacity - lo).min(WORD_BITS);
            *w = if bits == WORD_BITS {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
        }
        s
    }

    /// The capacity (universe size) of the set.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing words, `capacity.div_ceil(64)` of them.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Empties the set and changes its capacity, reusing the existing
    /// allocation whenever the new capacity fits.
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(WORD_BITS), 0);
        self.capacity = capacity;
    }

    /// Makes `self` a copy of `other` (capacity and contents), reusing the
    /// existing allocation whenever possible.
    #[inline]
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.capacity = other.capacity;
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        (kernels::active().popcount)(&self.words)
    }

    /// Inserts `value`. Returns `true` if the value was not previously
    /// present. A value `>= capacity` is not part of the universe: the call
    /// is a no-op returning `false` (see the module-level contract).
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `value`. Returns `true` if the value was present; a value
    /// `>= capacity` was never present, so the call returns `false`.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test; `false` for any value `>= capacity`.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// The smallest element of the set, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|wi| wi * WORD_BITS + self.words[wi].trailing_zeros() as usize)
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    // ------------------------------------------------------------------
    // Set-against-set kernels
    // ------------------------------------------------------------------

    /// Number of elements present in both `self` and `other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.intersection_len_words(&other.words)
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.intersect_with_words(&other.words);
    }

    /// In-place union with `other` (capacities must match or `other` be smaller).
    pub fn union_with(&mut self, other: &BitSet) {
        self.union_with_words(&other.words);
    }

    /// In-place difference: removes every element of `other` from `self`.
    pub fn difference_with(&mut self, other: &BitSet) {
        self.difference_with_words(&other.words);
    }

    // ------------------------------------------------------------------
    // Fused word-row kernels (hot path)
    // ------------------------------------------------------------------

    /// Number of elements of `self` whose bit is also set in `row`.
    ///
    /// The branching hot loops call this once per candidate per pivot scan;
    /// the dense reduction runs on the active kernel backend.
    #[inline]
    pub fn intersection_len_words(&self, row: &[u64]) -> usize {
        self.intersection_len_words_with(kernels::active(), row)
    }

    /// [`BitSet::intersection_len_words`] with an explicitly pinned backend.
    #[inline]
    pub fn intersection_len_words_with(&self, k: &Kernels, row: &[u64]) -> usize {
        let shared = self.words.len().min(row.len());
        (k.intersection_len)(&self.words[..shared], &row[..shared])
    }

    /// In-place intersection with a word row; words missing from a shorter
    /// `row` count as zero.
    #[inline]
    pub fn intersect_with_words(&mut self, row: &[u64]) {
        let shared = self.words.len().min(row.len());
        for (a, b) in self.words[..shared].iter_mut().zip(row.iter()) {
            *a &= *b;
        }
        for a in self.words[shared..].iter_mut() {
            *a = 0;
        }
    }

    /// In-place union with a word row (bits beyond `self`'s length ignored).
    #[inline]
    pub fn union_with_words(&mut self, row: &[u64]) {
        for (a, b) in self.words.iter_mut().zip(row.iter()) {
            *a |= *b;
        }
    }

    /// In-place difference with a word row.
    #[inline]
    pub fn difference_with_words(&mut self, row: &[u64]) {
        for (a, b) in self.words.iter_mut().zip(row.iter()) {
            *a &= !*b;
        }
    }

    /// Writes `self ∩ row` into `out` (fused copy + intersect, no
    /// intermediate clone). `out` takes `self`'s capacity, reusing its
    /// allocation. Words `row` is missing count as zero, so the tail of
    /// `out` beyond `row` stays cleared.
    #[inline]
    pub fn intersect_into(&self, row: &[u64], out: &mut BitSet) {
        self.intersect_into_count(row, out);
    }

    /// Writes `self ∩ row` into `out` and returns the element count of the
    /// intersection — the fused variant of [`BitSet::intersect_into`] +
    /// [`BitSet::len`] for callers that need the child set *and* its size
    /// (the bound checks of the branch-and-bound engine), saving a second
    /// popcount pass over the freshly written words.
    #[inline]
    pub fn intersect_into_count(&self, row: &[u64], out: &mut BitSet) -> usize {
        self.intersect_into_count_with(kernels::active(), row, out)
    }

    /// [`BitSet::intersect_into_count`] with an explicitly pinned backend.
    #[inline]
    pub fn intersect_into_count_with(&self, k: &Kernels, row: &[u64], out: &mut BitSet) -> usize {
        out.capacity = self.capacity;
        out.words.clear();
        out.words.resize(self.words.len(), 0);
        let shared = self.words.len().min(row.len());
        (k.intersect_count)(
            &self.words[..shared],
            &row[..shared],
            &mut out.words[..shared],
        )
    }

    /// Writes `self \ row` into `out` (fused copy + and-not). `out` takes
    /// `self`'s capacity, reusing its allocation. Elements of `self` in
    /// words `row` is missing all survive (the tail is copied verbatim).
    #[inline]
    pub fn difference_into(&self, row: &[u64], out: &mut BitSet) {
        self.difference_into_with(kernels::active(), row, out);
    }

    /// [`BitSet::difference_into`] with an explicitly pinned backend.
    #[inline]
    pub fn difference_into_with(&self, k: &Kernels, row: &[u64], out: &mut BitSet) {
        out.capacity = self.capacity;
        out.words.clear();
        out.words.resize(self.words.len(), 0);
        let shared = self.words.len().min(row.len());
        (k.difference)(
            &self.words[..shared],
            &row[..shared],
            &mut out.words[..shared],
        );
        out.words[shared..].copy_from_slice(&self.words[shared..]);
    }

    /// Iterates over the set bits in increasing order, one word at a time
    /// (no per-bit bounds checks).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Iterates over the elements of `self` whose bit is **not** set in the
    /// word row `mask` (i.e. `self \ mask`), in increasing order. Words
    /// missing from a shorter `mask` are treated as zero, so those elements
    /// of `self` are all yielded.
    pub fn and_not_iter<'a>(&'a self, mask: &'a [u64]) -> impl Iterator<Item = usize> + 'a {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word & !mask.get(wi).copied().unwrap_or(0);
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Appends the elements of `self \ mask` to `out` in increasing order —
    /// the collector twin of [`BitSet::and_not_iter`] for the branch-list
    /// builders, which always drain the iterator into a `Vec`. The dense
    /// prefix runs on the active kernel backend (which skips all-zero word
    /// blocks without per-bit bounds checks). Words missing from a shorter
    /// `mask` are treated as zero, so those elements of `self` are all
    /// appended.
    pub fn and_not_collect(&self, mask: &[u64], out: &mut Vec<usize>) {
        self.and_not_collect_with(kernels::active(), mask, out);
    }

    /// [`BitSet::and_not_collect`] with an explicitly pinned backend.
    pub fn and_not_collect_with(&self, k: &Kernels, mask: &[u64], out: &mut Vec<usize>) {
        let shared = self.words.len().min(mask.len());
        (k.and_not_collect)(&self.words[..shared], &mask[..shared], out);
        for wi in shared..self.words.len() {
            push_bits(wi, self.words[wi], out);
        }
    }

    /// A borrowed read-only view of the whole set.
    #[inline]
    pub fn view(&self) -> BitsRef<'_> {
        BitsRef {
            words: &self.words,
            capacity: self.capacity,
        }
    }

    /// Makes `self` a copy of `view` (capacity and contents), reusing the
    /// existing allocation whenever possible.
    #[inline]
    pub fn copy_from_view(&mut self, view: BitsRef<'_>) {
        self.words.clear();
        self.words.extend_from_slice(view.words);
        self.capacity = view.capacity;
    }
}

/// A borrowed, read-only bit-set view over a word row owned elsewhere.
///
/// Semantically identical to an immutable [`BitSet`] with `words().len() ==
/// capacity.div_ceil(64)`: the solver's per-depth scratch slab stores its C/X
/// rows in one contiguous allocation and hands them out as views, so the hot
/// path keeps the exact `BitSet` word semantics without per-row `Vec`s.
#[derive(Clone, Copy, Debug)]
pub struct BitsRef<'a> {
    words: &'a [u64],
    capacity: usize,
}

impl<'a> BitsRef<'a> {
    /// Wraps a word row as a read-only view; `words.len()` must equal
    /// `capacity.div_ceil(64)` (the `BitSet` invariant).
    #[inline]
    pub fn new(words: &'a [u64], capacity: usize) -> Self {
        debug_assert_eq!(words.len(), capacity.div_ceil(WORD_BITS));
        BitsRef { words, capacity }
    }

    /// The capacity (universe size) of the viewed set.
    #[inline]
    pub fn capacity(self) -> usize {
        self.capacity
    }

    /// The backing words.
    #[inline]
    pub fn words(self) -> &'a [u64] {
        self.words
    }

    /// Number of set bits.
    #[inline]
    pub fn len(self) -> usize {
        (kernels::active().popcount)(self.words)
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership test; `false` for any value `>= capacity`.
    #[inline]
    pub fn contains(self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / WORD_BITS] & (1 << (value % WORD_BITS)) != 0
    }

    /// The smallest element of the set, if any.
    #[inline]
    pub fn first(self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|wi| wi * WORD_BITS + self.words[wi].trailing_zeros() as usize)
    }

    /// Iterates over the set bits in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> + 'a {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Number of elements of the view whose bit is also set in `row`.
    #[inline]
    pub fn intersection_len_words(self, row: &[u64]) -> usize {
        let shared = self.words.len().min(row.len());
        (kernels::active().intersection_len)(&self.words[..shared], &row[..shared])
    }

    /// Appends the elements of `self \ mask` to `out` in increasing order
    /// (same tail semantics as [`BitSet::and_not_collect`]).
    pub fn and_not_collect(self, mask: &[u64], out: &mut Vec<usize>) {
        let shared = self.words.len().min(mask.len());
        (kernels::active().and_not_collect)(&self.words[..shared], &mask[..shared], out);
        for wi in shared..self.words.len() {
            push_bits(wi, self.words[wi], out);
        }
    }

    /// Iterates over the elements of `self \ mask` in increasing order (same
    /// tail semantics as [`BitSet::and_not_iter`]).
    pub fn and_not_iter(self, mask: &'a [u64]) -> impl Iterator<Item = usize> + 'a {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word & !mask.get(wi).copied().unwrap_or(0);
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Copies the view into an owned [`BitSet`].
    pub fn to_bitset(self) -> BitSet {
        BitSet {
            words: self.words.to_vec(),
            capacity: self.capacity,
        }
    }

    /// Copies the view into `out`, reusing `out`'s allocation.
    pub fn write_to(self, out: &mut BitSet) {
        out.copy_from_view(self);
    }
}

/// A borrowed, mutable bit-set view over a word row owned elsewhere — the
/// writable twin of [`BitsRef`], with the fused assign kernels the search
/// frames need (`self = a ∩ row`, `self = a \ row`).
#[derive(Debug)]
pub struct BitsMut<'a> {
    words: &'a mut [u64],
    capacity: usize,
}

impl<'a> BitsMut<'a> {
    /// Wraps a word row as a mutable view; `words.len()` must equal
    /// `capacity.div_ceil(64)` (the `BitSet` invariant).
    #[inline]
    pub fn new(words: &'a mut [u64], capacity: usize) -> Self {
        debug_assert_eq!(words.len(), capacity.div_ceil(WORD_BITS));
        BitsMut { words, capacity }
    }

    /// Reborrows as a read-only view.
    #[inline]
    pub fn as_ref(&self) -> BitsRef<'_> {
        BitsRef {
            words: self.words,
            capacity: self.capacity,
        }
    }

    /// The capacity (universe size) of the viewed set.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of set bits.
    #[inline]
    pub fn len(&self) -> usize {
        (kernels::active().popcount)(self.words)
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership test; `false` for any value `>= capacity`.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        self.as_ref().contains(value)
    }

    /// Inserts `value` (out-of-range is a no-op returning `false`, the
    /// [`BitSet::insert`] contract).
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `value` (out-of-range returns `false`, the
    /// [`BitSet::remove`] contract).
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Makes the view a copy of `other`, which must have the same capacity
    /// (views cannot resize their backing row).
    #[inline]
    pub fn copy_from(&mut self, other: BitsRef<'_>) {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.copy_from_slice(other.words);
    }

    /// In-place intersection with a word row; words missing from a shorter
    /// `row` count as zero.
    #[inline]
    pub fn intersect_with_words(&mut self, row: &[u64]) {
        let shared = self.words.len().min(row.len());
        for (a, b) in self.words[..shared].iter_mut().zip(row.iter()) {
            *a &= *b;
        }
        for a in self.words[shared..].iter_mut() {
            *a = 0;
        }
    }

    /// In-place union with a word row (bits beyond the view's length
    /// ignored).
    #[inline]
    pub fn union_with_words(&mut self, row: &[u64]) {
        for (a, b) in self.words.iter_mut().zip(row.iter()) {
            *a |= *b;
        }
    }

    /// In-place difference with a word row.
    #[inline]
    pub fn difference_with_words(&mut self, row: &[u64]) {
        for (a, b) in self.words.iter_mut().zip(row.iter()) {
            *a &= !*b;
        }
    }

    /// `self = a ∩ row`, returning the element count — the view twin of
    /// [`BitSet::intersect_into_count`]. `a` must have the view's capacity.
    #[inline]
    pub fn assign_and_count(&mut self, a: BitsRef<'_>, row: &[u64]) -> usize {
        debug_assert_eq!(self.capacity, a.capacity);
        let shared = self.words.len().min(row.len());
        let count = (kernels::active().intersect_count)(
            &a.words[..shared],
            &row[..shared],
            &mut self.words[..shared],
        );
        for w in self.words[shared..].iter_mut() {
            *w = 0;
        }
        count
    }

    /// `self = a \ row` — the view twin of [`BitSet::difference_into`]
    /// (elements of `a` in words `row` is missing all survive). `a` must
    /// have the view's capacity.
    #[inline]
    pub fn assign_difference(&mut self, a: BitsRef<'_>, row: &[u64]) {
        debug_assert_eq!(self.capacity, a.capacity);
        let shared = self.words.len().min(row.len());
        (kernels::active().difference)(
            &a.words[..shared],
            &row[..shared],
            &mut self.words[..shared],
        );
        self.words[shared..].copy_from_slice(&a.words[shared..]);
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::with_capacity(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_set_is_empty() {
        let s = BitSet::with_capacity(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::with_capacity(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn out_of_range_contract_is_uniform() {
        // insert / remove / contains all treat value >= capacity as "not in
        // the universe": no panic, no mutation, `false` everywhere.
        let mut s = BitSet::with_capacity(10);
        assert!(!s.insert(10), "insert out of range is a no-op");
        assert!(!s.insert(1000));
        assert!(s.is_empty(), "out-of-range insert must not set stray bits");
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
        assert!(!s.remove(10));
        assert_eq!(s.len(), 0);

        // Values just past the capacity but inside the last backing word are
        // equally rejected (the subtle case: capacity 70 uses 2 words of 128
        // bits, so bit 71 physically exists in the buffer).
        let mut s = BitSet::with_capacity(70);
        assert!(!s.insert(71));
        assert!(s.is_empty());
        assert!(!s.contains(71));
    }

    #[test]
    fn full_contains_everything() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!((0..70).all(|v| s.contains(v)));
        assert!(!s.contains(70));
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn reset_changes_capacity_and_empties() {
        let mut s = BitSet::full(100);
        s.reset(40);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 40);
        assert!(s.insert(39));
        assert!(!s.insert(40));
        s.reset(200);
        assert!(s.is_empty());
        assert!(s.insert(199));
    }

    #[test]
    fn copy_from_mirrors_contents_and_capacity() {
        let a: BitSet = [1usize, 64, 99].into_iter().collect();
        let mut b = BitSet::with_capacity(3);
        b.copy_from(&a);
        assert_eq!(b, a);
        assert_eq!(b.capacity(), a.capacity());
    }

    #[test]
    fn first_returns_smallest() {
        assert_eq!(BitSet::with_capacity(100).first(), None);
        let s: BitSet = [70usize, 3, 65].into_iter().collect();
        assert_eq!(s.first(), Some(3));
        let s: BitSet = [70usize].into_iter().collect();
        assert_eq!(s.first(), Some(70));
    }

    #[test]
    fn intersection_len_counts_common_bits() {
        let a: BitSet = [1usize, 3, 5, 64, 65].into_iter().collect();
        let b: BitSet = [3usize, 5, 65, 66].into_iter().collect();
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(b.intersection_len(&a), 3);
    }

    #[test]
    fn intersect_with_keeps_common() {
        let mut a: BitSet = [1usize, 3, 5, 64].into_iter().collect();
        let b: BitSet = [3usize, 64].into_iter().collect();
        a.intersect_with(&b);
        let got: Vec<usize> = a.iter().collect();
        assert_eq!(got, vec![3, 64]);
    }

    #[test]
    fn union_with_merges() {
        let mut a: BitSet = [1usize, 2].into_iter().collect();
        let b: BitSet = [2usize].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn difference_with_removes_members() {
        let mut a: BitSet = [1usize, 2, 65, 70].into_iter().collect();
        let b: BitSet = [2usize, 70].into_iter().collect();
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 65]);
    }

    #[test]
    fn intersect_into_writes_fused_result() {
        let a: BitSet = [1usize, 3, 64, 100].into_iter().collect();
        let row: BitSet = [3usize, 64, 99].into_iter().collect();
        let mut out = BitSet::default();
        a.intersect_into(row.words(), &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![3, 64]);
        assert_eq!(out.capacity(), a.capacity());
        // Shorter mask: missing words behave as zero.
        let mut out2 = BitSet::default();
        a.intersect_into(&row.words()[..1], &mut out2);
        assert_eq!(out2.iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!(out2.words().len(), a.words().len());
    }

    #[test]
    fn difference_into_writes_fused_result() {
        let a: BitSet = [1usize, 3, 64, 100].into_iter().collect();
        let row: BitSet = [3usize, 64].into_iter().collect();
        let mut out = BitSet::default();
        a.difference_into(row.words(), &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![1, 100]);
        // Shorter mask: elements in the missing words all survive.
        let mut out2 = BitSet::default();
        a.difference_into(&row.words()[..1], &mut out2);
        assert_eq!(out2.iter().collect::<Vec<_>>(), vec![1, 64, 100]);
    }

    #[test]
    fn and_not_iter_skips_masked_bits() {
        let a: BitSet = [0usize, 2, 64, 66, 130].into_iter().collect();
        let mask: BitSet = [2usize, 66].into_iter().collect();
        let got: Vec<usize> = a.and_not_iter(mask.words()).collect();
        assert_eq!(got, vec![0, 64, 130]);
        // Empty mask yields everything.
        let got: Vec<usize> = a.and_not_iter(&[]).collect();
        assert_eq!(got, vec![0, 2, 64, 66, 130]);
    }

    #[test]
    fn intersect_into_count_matches_len_of_fused_result() {
        let a: BitSet = [1usize, 3, 64, 100, 250, 300].into_iter().collect();
        let row: BitSet = [3usize, 64, 99, 250].into_iter().collect();
        let mut out = BitSet::default();
        let count = a.intersect_into_count(row.words(), &mut out);
        assert_eq!(count, out.len());
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![3, 64, 250]);
        // Shorter mask: missing words count as zero, and so does the count.
        let count = a.intersect_into_count(&row.words()[..1], &mut out);
        assert_eq!(count, 1);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!(out.words().len(), a.words().len());
    }

    #[test]
    fn and_not_collect_matches_and_not_iter() {
        let a: BitSet = [0usize, 2, 64, 66, 130, 200, 290].into_iter().collect();
        let mask: BitSet = [2usize, 66, 200].into_iter().collect();
        let mut got = Vec::new();
        a.and_not_collect(mask.words(), &mut got);
        assert_eq!(got, a.and_not_iter(mask.words()).collect::<Vec<_>>());
        // Appends (does not clear), and a short mask lets everything through.
        a.and_not_collect(&[], &mut got);
        let mut expected: Vec<usize> = a.and_not_iter(mask.words()).collect();
        expected.extend(a.iter());
        assert_eq!(got, expected);
    }

    #[test]
    fn iter_yields_sorted_values() {
        let s: BitSet = [67usize, 2, 0, 128, 5].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5, 67, 128]);
    }

    #[test]
    fn from_iter_empty() {
        let s: BitSet = std::iter::empty().collect();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 0);
    }
}
