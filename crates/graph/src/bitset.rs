//! A small, fixed-capacity bit set used for dense neighbourhood tests.
//!
//! The enumeration frameworks frequently need `O(1)` membership tests over
//! vertex sets whose universe is the (small) candidate subgraph of a branch.
//! [`BitSet`] is a plain `Vec<u64>` backed bit set with the handful of
//! operations those hot loops need: insert/remove/contains, clear, union /
//! intersection counting and iteration over set bits.

/// A fixed-capacity bit set over the universe `0..capacity`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Creates an empty bit set able to hold values in `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Creates a bit set with the given capacity and all bits in `0..capacity` set.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::with_capacity(capacity);
        for v in 0..capacity {
            s.insert(v);
        }
        s
    }

    /// The capacity (universe size) of the set.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Inserts `value`. Returns `true` if the value was not previously present.
    ///
    /// # Panics
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bit {value} out of capacity {}",
            self.capacity
        );
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `value`. Returns `true` if the value was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements present in both `self` and `other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
        // Bits beyond other's capacity are cleared if other is shorter.
        for a in self.words.iter_mut().skip(other.words.len()) {
            *a = 0;
        }
    }

    /// In-place union with `other` (capacities must match or `other` be smaller).
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place difference: removes every element of `other` from `self`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    /// Iterates over the set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::with_capacity(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_set_is_empty() {
        let s = BitSet::with_capacity(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::with_capacity(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::with_capacity(10);
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::with_capacity(10);
        s.insert(10);
    }

    #[test]
    fn full_contains_everything() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!((0..70).all(|v| s.contains(v)));
        assert!(!s.contains(70));
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn intersection_len_counts_common_bits() {
        let a: BitSet = [1usize, 3, 5, 64, 65].into_iter().collect();
        let b: BitSet = [3usize, 5, 65, 66].into_iter().collect();
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(b.intersection_len(&a), 3);
    }

    #[test]
    fn intersect_with_keeps_common() {
        let mut a: BitSet = [1usize, 3, 5, 64].into_iter().collect();
        let b: BitSet = [3usize, 64].into_iter().collect();
        a.intersect_with(&b);
        let got: Vec<usize> = a.iter().collect();
        assert_eq!(got, vec![3, 64]);
    }

    #[test]
    fn union_with_merges() {
        let mut a: BitSet = [1usize, 2].into_iter().collect();
        let b: BitSet = [2usize].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn difference_with_removes_members() {
        let mut a: BitSet = [1usize, 2, 65, 70].into_iter().collect();
        let b: BitSet = [2usize, 70].into_iter().collect();
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 65]);
    }

    #[test]
    fn iter_yields_sorted_values() {
        let s: BitSet = [67usize, 2, 0, 128, 5].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5, 67, 128]);
    }

    #[test]
    fn from_iter_empty() {
        let s: BitSet = std::iter::empty().collect();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 0);
    }
}
