//! Vertex and edge orderings used by the branching frameworks.
//!
//! The paper's baselines differ (among other things) in the ordering used at
//! the initial branch:
//!
//! * vertex-oriented branching uses the **degeneracy ordering** (`BK_Degen`)
//!   or the **degree ordering** (`BK_Degree`),
//! * edge-oriented branching uses the **truss-based edge ordering** (the
//!   proposed default), or the two Table-VI baselines: edges ordered
//!   lexicographically by the degeneracy positions of their endpoints
//!   (`HBBMC-dgn`) and edges ordered by the minimum degree of their endpoints
//!   (`HBBMC-mdg`).

use crate::degeneracy::degeneracy_ordering;
use crate::graph::VertexId;
use crate::topology::GraphTopology;
use crate::triangles::{EdgeId, EdgeIndex};
use crate::truss::truss_ordering;

/// Vertex orderings used for the initial vertex-oriented branching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VertexOrderingKind {
    /// Natural order `0, 1, …, n-1`.
    Natural,
    /// Non-decreasing degree order.
    Degree,
    /// Degeneracy (minimum-degree peeling) order.
    Degeneracy,
}

/// Edge orderings used for the initial edge-oriented branching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeOrderingKind {
    /// Truss-based ordering π_τ (the paper's default, bounds branches by τ).
    Truss,
    /// Lexicographic ordering by the degeneracy positions of the endpoints
    /// (the `HBBMC-dgn` baseline of Table VI).
    DegeneracyLex,
    /// Non-decreasing order of `min(deg u, deg v)` (the `HBBMC-mdg` baseline
    /// of Table VI).
    MinDegree,
}

/// Computes a vertex ordering of `g`. Returns the vertices in order.
pub fn vertex_ordering<G: GraphTopology>(g: &G, kind: VertexOrderingKind) -> Vec<VertexId> {
    match kind {
        VertexOrderingKind::Natural => (0..g.n() as VertexId).collect(),
        VertexOrderingKind::Degree => {
            let mut vs: Vec<VertexId> = (0..g.n() as VertexId).collect();
            vs.sort_by_key(|&v| (g.degree(v), v));
            vs
        }
        VertexOrderingKind::Degeneracy => degeneracy_ordering(g).order,
    }
}

/// An edge ordering together with the edge index it refers to.
#[derive(Clone, Debug)]
pub struct EdgeOrdering {
    /// Dense edge numbering.
    pub index: EdgeIndex,
    /// Edge ids in branching order.
    pub order: Vec<EdgeId>,
    /// `position[e]` = rank of edge `e` in [`EdgeOrdering::order`].
    pub position: Vec<usize>,
}

impl EdgeOrdering {
    /// Endpoints of the `i`-th edge in the ordering.
    pub fn edge_at(&self, i: usize) -> (VertexId, VertexId) {
        self.index.endpoints(self.order[i])
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Computes an edge ordering of `g` of the requested kind.
pub fn edge_ordering<G: GraphTopology>(g: &G, kind: EdgeOrderingKind) -> EdgeOrdering {
    match kind {
        EdgeOrderingKind::Truss => {
            let t = truss_ordering(g);
            EdgeOrdering {
                index: t.index,
                order: t.order,
                position: t.position,
            }
        }
        EdgeOrderingKind::DegeneracyLex => {
            let index = EdgeIndex::new(g);
            let deg_pos = degeneracy_ordering(g).position;
            order_by_key(index, |&(u, v)| {
                let (pu, pv) = (deg_pos[u as usize], deg_pos[v as usize]);
                if pu <= pv {
                    (pu, pv)
                } else {
                    (pv, pu)
                }
            })
        }
        EdgeOrderingKind::MinDegree => {
            let index = EdgeIndex::new(g);
            order_by_key(index, |&(u, v)| {
                (g.degree(u).min(g.degree(v)), g.degree(u).max(g.degree(v)))
            })
        }
    }
}

fn order_by_key<K, F>(index: EdgeIndex, key: F) -> EdgeOrdering
where
    K: Ord,
    F: Fn(&(VertexId, VertexId)) -> K,
{
    let m = index.len();
    let mut order: Vec<EdgeId> = (0..m as EdgeId).collect();
    order.sort_by_key(|&e| key(&index.endpoints(e)));
    let mut position = vec![0usize; m];
    for (i, &e) in order.iter().enumerate() {
        position[e as usize] = i;
    }
    EdgeOrdering {
        index,
        order,
        position,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sample() -> Graph {
        // K4 on {0,1,2,3} plus a tail 3-4-5.
        Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn natural_vertex_ordering() {
        let g = sample();
        assert_eq!(
            vertex_ordering(&g, VertexOrderingKind::Natural),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn degree_vertex_ordering_is_nondecreasing() {
        let g = sample();
        let ord = vertex_ordering(&g, VertexOrderingKind::Degree);
        for w in ord.windows(2) {
            assert!(g.degree(w[0]) <= g.degree(w[1]));
        }
        assert_eq!(ord.len(), 6);
    }

    #[test]
    fn degeneracy_vertex_ordering_is_permutation() {
        let g = sample();
        let mut ord = vertex_ordering(&g, VertexOrderingKind::Degeneracy);
        ord.sort_unstable();
        assert_eq!(ord, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn truss_edge_ordering_round_trips_positions() {
        let g = sample();
        let eo = edge_ordering(&g, EdgeOrderingKind::Truss);
        assert_eq!(eo.len(), g.m());
        for (i, &e) in eo.order.iter().enumerate() {
            assert_eq!(eo.position[e as usize], i);
        }
    }

    #[test]
    fn min_degree_edge_ordering_is_sorted_by_min_degree() {
        let g = sample();
        let eo = edge_ordering(&g, EdgeOrderingKind::MinDegree);
        let keys: Vec<usize> = (0..eo.len())
            .map(|i| {
                let (u, v) = eo.edge_at(i);
                g.degree(u).min(g.degree(v))
            })
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn degeneracy_lex_edge_ordering_orders_tail_before_clique_or_consistently() {
        let g = sample();
        let eo = edge_ordering(&g, EdgeOrderingKind::DegeneracyLex);
        // Positions must be a permutation.
        let mut pos = eo.position.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..g.m()).collect::<Vec<_>>());
        // The first edge's earlier endpoint must be among the earliest peeled vertices.
        let deg = degeneracy_ordering(&g);
        let (u, v) = eo.edge_at(0);
        let first_pos = deg.position[u as usize].min(deg.position[v as usize]);
        for i in 1..eo.len() {
            let (a, b) = eo.edge_at(i);
            let p = deg.position[a as usize].min(deg.position[b as usize]);
            assert!(first_pos <= p);
        }
    }

    #[test]
    fn edge_ordering_on_edgeless_graph_is_empty() {
        let g = Graph::empty(4);
        for kind in [
            EdgeOrderingKind::Truss,
            EdgeOrderingKind::DegeneracyLex,
            EdgeOrderingKind::MinDegree,
        ] {
            let eo = edge_ordering(&g, kind);
            assert!(eo.is_empty());
            assert_eq!(eo.len(), 0);
        }
    }
}
