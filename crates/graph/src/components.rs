//! Connected components.
//!
//! Enumeration work can be restricted to one component at a time (components
//! never share a clique), and the examples use the largest component to focus
//! on the interesting part of sparse synthetic graphs.

use crate::graph::{Graph, VertexId};
use crate::topology::GraphTopology;

/// Result of a connected-components computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectedComponents {
    /// Component id of every vertex (ids are `0..count`, assigned in order of
    /// discovery from vertex 0 upwards).
    pub component_of: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

impl ConnectedComponents {
    /// The vertices of component `id`.
    pub fn members(&self, id: usize) -> Vec<VertexId> {
        self.component_of
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == id)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component_of {
            sizes[c] += 1;
        }
        sizes
    }

    /// The id of a largest component (`None` on the empty graph).
    pub fn largest(&self) -> Option<usize> {
        let sizes = self.sizes();
        (0..self.count).max_by_key(|&i| sizes[i])
    }
}

/// Computes the connected components of `g` with an iterative DFS.
pub fn connected_components<G: GraphTopology>(g: &G) -> ConnectedComponents {
    let n = g.n();
    let mut component_of = vec![usize::MAX; n];
    let mut count = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if component_of[start] != usize::MAX {
            continue;
        }
        component_of[start] = count;
        stack.push(start as VertexId);
        while let Some(v) = stack.pop() {
            for u in g.neighbors_iter(v) {
                if component_of[u as usize] == usize::MAX {
                    component_of[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    ConnectedComponents {
        component_of,
        count,
    }
}

/// Extracts the subgraph induced by a largest connected component, together
/// with the mapping from new ids to original ids. Returns the empty graph for
/// an empty input.
pub fn largest_component(g: &Graph) -> (Graph, Vec<VertexId>) {
    let cc = connected_components(g);
    match cc.largest() {
        Some(id) => g.induced_subgraph(&cc.members(id)),
        None => (Graph::empty(0), Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_components() {
        let cc = connected_components(&Graph::empty(0));
        assert_eq!(cc.count, 0);
        assert!(cc.largest().is_none());
    }

    #[test]
    fn edgeless_graph_has_singleton_components() {
        let cc = connected_components(&Graph::empty(4));
        assert_eq!(cc.count, 4);
        assert_eq!(cc.sizes(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn two_components_identified() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 2);
        assert_eq!(cc.component_of[0], cc.component_of[2]);
        assert_ne!(cc.component_of[0], cc.component_of[3]);
        let mut sizes = cc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn members_returns_component_vertices() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 3);
        let comp0 = cc.members(cc.component_of[0]);
        assert_eq!(comp0, vec![0, 1]);
    }

    #[test]
    fn largest_component_extraction() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (2, 3), (5, 6)]).unwrap();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.n(), 4);
        assert_eq!(sub.m(), 4);
        assert!(map.contains(&0) && map.contains(&3));
        let (empty, empty_map) = largest_component(&Graph::empty(0));
        assert_eq!(empty.n(), 0);
        assert!(empty_map.is_empty());
    }

    #[test]
    fn connected_graph_is_single_component() {
        let g = Graph::complete(5);
        let cc = connected_components(&g);
        assert_eq!(cc.count, 1);
        assert_eq!(cc.largest(), Some(0));
        assert_eq!(cc.members(0).len(), 5);
    }
}
