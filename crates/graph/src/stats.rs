//! Aggregate graph statistics (the columns of the paper's Table I) and the
//! complexity-comparison condition of Theorem 2's remarks.

use crate::degeneracy::degeneracy_ordering;
use crate::hindex::h_index;
use crate::topology::GraphTopology;
use crate::triangles::triangle_count;
use crate::truss::truss_ordering;

/// Dataset statistics in the shape of the paper's Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices |V|.
    pub n: usize,
    /// Number of edges |E|.
    pub m: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Degeneracy δ.
    pub degeneracy: usize,
    /// Truss parameter τ (maximum peeling support of the truss-based edge ordering).
    pub tau: usize,
    /// h-index of the degree sequence (the bound used by `BK_Degree`).
    pub h_index: usize,
    /// Edge density ρ = m / n.
    pub rho: f64,
    /// Number of triangles.
    pub triangles: u64,
}

impl GraphStats {
    /// Computes all statistics of `g`.
    pub fn compute<G: GraphTopology>(g: &G) -> Self {
        let deg = degeneracy_ordering(g);
        let truss = truss_ordering(g);
        GraphStats {
            n: g.n(),
            m: g.m(),
            max_degree: g.max_degree(),
            degeneracy: deg.degeneracy,
            tau: truss.tau,
            h_index: h_index(g),
            rho: g.edge_density(),
            triangles: triangle_count(g),
        }
    }

    /// The threshold `max{3, τ + 3·lnρ / ln3}` of the paper's condition.
    pub fn condition_threshold(&self) -> f64 {
        if self.rho <= 0.0 {
            return 3.0;
        }
        let rhs = self.tau as f64 + 3.0 * self.rho.ln() / 3f64.ln();
        rhs.max(3.0)
    }

    /// Whether the graph satisfies `δ ≥ max{3, τ + 3·lnρ / ln3}`, i.e. whether
    /// HBBMC's worst-case bound `O(δm + τm·3^{τ/3})` is asymptotically no worse
    /// than the state-of-the-art `O(nδ·3^{δ/3})`.
    pub fn hbbmc_condition_holds(&self) -> bool {
        self.degeneracy as f64 >= self.condition_threshold() - 1e-12
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} δ={} τ={} h={} ρ={:.1} Δ={} triangles={} condition={}",
            self.n,
            self.m,
            self.degeneracy,
            self.tau,
            self.h_index,
            self.rho,
            self.max_degree,
            self.triangles,
            if self.hbbmc_condition_holds() {
                "holds"
            } else {
                "fails"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn stats_of_complete_graph() {
        let g = Graph::complete(8);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 8);
        assert_eq!(s.m, 28);
        assert_eq!(s.max_degree, 7);
        assert_eq!(s.degeneracy, 7);
        assert_eq!(s.tau, 6);
        assert_eq!(s.triangles, 56);
        assert!((s.rho - 3.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = Graph::empty(10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.m, 0);
        assert_eq!(s.degeneracy, 0);
        assert_eq!(s.tau, 0);
        assert_eq!(s.rho, 0.0);
        assert!(!s.hbbmc_condition_holds());
        assert_eq!(s.condition_threshold(), 3.0);
    }

    #[test]
    fn h_index_between_degeneracy_and_max_degree() {
        let g = Graph::complete(8);
        let s = GraphStats::compute(&g);
        assert_eq!(s.h_index, 7);
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let s = GraphStats::compute(&g);
        assert!(s.degeneracy <= s.h_index && s.h_index <= s.max_degree);
    }

    #[test]
    fn condition_threshold_matches_formula() {
        let s = GraphStats {
            n: 100,
            m: 900,
            max_degree: 30,
            degeneracy: 20,
            tau: 10,
            h_index: 25,
            rho: 9.0,
            triangles: 0,
        };
        let expected = 10.0 + 3.0 * 9f64.ln() / 3f64.ln();
        assert!((s.condition_threshold() - expected).abs() < 1e-9);
        assert!(s.hbbmc_condition_holds());
    }

    #[test]
    fn condition_fails_when_degeneracy_small() {
        let s = GraphStats {
            n: 100,
            m: 900,
            max_degree: 30,
            degeneracy: 12,
            tau: 10,
            h_index: 20,
            rho: 9.0,
            triangles: 0,
        };
        assert!(!s.hbbmc_condition_holds());
    }

    #[test]
    fn display_mentions_condition() {
        let g = Graph::complete(10);
        let s = GraphStats::compute(&g);
        let text = s.to_string();
        assert!(text.contains("δ=9"));
        assert!(text.contains("holds") || text.contains("fails"));
    }
}
