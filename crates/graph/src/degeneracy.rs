//! Degeneracy ordering and core decomposition.
//!
//! The degeneracy δ of a graph is the smallest value such that every subgraph
//! has a vertex of degree at most δ. The *degeneracy ordering* is obtained by
//! repeatedly removing a minimum-degree vertex; it is the ordering used by
//! `BK_Degen` (Eppstein–Löffler–Strash) and by the initial branching of the
//! vertex-oriented baselines in the paper. The implementation is the classic
//! linear-time bucket-queue peeling (Matula & Beck).

use crate::graph::VertexId;
use crate::topology::GraphTopology;

/// Result of the degeneracy computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegeneracyOrdering {
    /// Vertices in peeling order (first removed first).
    pub order: Vec<VertexId>,
    /// `position[v]` is the index of `v` in [`DegeneracyOrdering::order`].
    pub position: Vec<usize>,
    /// Core number of every vertex.
    pub core: Vec<usize>,
    /// The degeneracy δ (maximum core number; 0 for edgeless graphs).
    pub degeneracy: usize,
}

impl DegeneracyOrdering {
    /// Neighbours of `v` that come *after* `v` in the degeneracy ordering.
    ///
    /// In the EPS framework each initial branch's candidate set is exactly
    /// this set, whose size is bounded by δ.
    pub fn later_neighbors<G: GraphTopology>(&self, g: &G, v: VertexId) -> Vec<VertexId> {
        g.neighbors_iter(v)
            .filter(|&u| self.position[u as usize] > self.position[v as usize])
            .collect()
    }
}

/// Computes the degeneracy ordering, core numbers and degeneracy of `g`.
///
/// Generic over [`GraphTopology`], so it runs identically on the sparse CSR
/// [`crate::Graph`] and the dense [`crate::AdjMatrix`].
pub fn degeneracy_ordering<G: GraphTopology>(g: &G) -> DegeneracyOrdering {
    let n = g.n();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket queue: bucket[d] holds vertices of current degree d.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as VertexId);
    }

    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut position = vec![0usize; n];
    let mut core = vec![0usize; n];
    let mut degeneracy = 0usize;
    let mut current_min = 0usize;

    for step in 0..n {
        // Find the next non-empty bucket holding a live vertex.
        let v = loop {
            if current_min > max_deg {
                unreachable!("bucket queue exhausted before all vertices were peeled");
            }
            match buckets[current_min].pop() {
                Some(v) if !removed[v as usize] && degree[v as usize] == current_min => break v,
                Some(_) => continue, // stale entry
                None => current_min += 1,
            }
        };

        removed[v as usize] = true;
        degeneracy = degeneracy.max(current_min);
        core[v as usize] = degeneracy;
        position[v as usize] = step;
        order.push(v);

        for u in g.neighbors_iter(v) {
            let ui = u as usize;
            if !removed[ui] && degree[ui] > 0 {
                degree[ui] -= 1;
                buckets[degree[ui]].push(u);
                if degree[ui] < current_min {
                    current_min = degree[ui];
                }
            }
        }
    }

    DegeneracyOrdering {
        order,
        position,
        core,
        degeneracy,
    }
}

/// Convenience wrapper returning only the per-vertex core numbers.
pub fn core_numbers<G: GraphTopology>(g: &G) -> Vec<usize> {
    degeneracy_ordering(g).core
}

/// Convenience wrapper returning only the degeneracy δ.
pub fn degeneracy<G: GraphTopology>(g: &G) -> usize {
    degeneracy_ordering(g).degeneracy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::empty(0);
        assert_eq!(degeneracy_ordering(&g).degeneracy, 0);
        let g = Graph::empty(5);
        let d = degeneracy_ordering(&g);
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.order.len(), 5);
    }

    #[test]
    fn path_has_degeneracy_one() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(degeneracy(&g), 1);
    }

    #[test]
    fn cycle_has_degeneracy_two() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn complete_graph_degeneracy_n_minus_one() {
        let g = Graph::complete(6);
        let d = degeneracy_ordering(&g);
        assert_eq!(d.degeneracy, 5);
        assert!(d.core.iter().all(|&c| c == 5));
    }

    #[test]
    fn star_has_degeneracy_one() {
        let g = Graph::from_edges(6, (1..6).map(|v| (0, v))).unwrap();
        assert_eq!(degeneracy(&g), 1);
    }

    #[test]
    fn clique_plus_pendant_cores() {
        // Triangle 0-1-2 with pendant vertex 3 attached to 0.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)]).unwrap();
        let d = degeneracy_ordering(&g);
        assert_eq!(d.degeneracy, 2);
        assert_eq!(d.core[3], 1);
        assert_eq!(d.core[0], 2);
        assert_eq!(d.core[1], 2);
        assert_eq!(d.core[2], 2);
    }

    #[test]
    fn ordering_is_a_permutation_with_consistent_positions() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 4),
            ],
        )
        .unwrap();
        let d = degeneracy_ordering(&g);
        let mut seen = vec![false; 7];
        for (i, &v) in d.order.iter().enumerate() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
            assert_eq!(d.position[v as usize], i);
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn later_neighbors_bounded_by_degeneracy() {
        let g = Graph::complete(5);
        let d = degeneracy_ordering(&g);
        for v in g.vertices() {
            assert!(d.later_neighbors(&g, v).len() <= d.degeneracy);
        }
    }

    #[test]
    fn later_neighbors_of_first_vertex_in_path() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let d = degeneracy_ordering(&g);
        // Every vertex's later neighbourhood has size <= 1 (degeneracy of a path).
        for v in g.vertices() {
            assert!(d.later_neighbors(&g, v).len() <= 1);
        }
    }

    #[test]
    fn dense_and_sparse_orderings_agree() {
        // The peeling is deterministic given sorted neighbour iteration, so
        // the CSR graph and its dense mirror must produce identical results.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 4),
                (1, 7),
            ],
        )
        .unwrap();
        let dense = crate::AdjMatrix::from_topology(&g);
        assert_eq!(degeneracy_ordering(&g), degeneracy_ordering(&dense));
    }

    #[test]
    fn degeneracy_of_moon_moser_like_graph() {
        // Complete tripartite K(2,2,2): degeneracy = 4.
        let parts = [[0u32, 1], [2, 3], [4, 5]];
        let mut edges = Vec::new();
        for i in 0..3 {
            for j in (i + 1)..3 {
                for &a in &parts[i] {
                    for &b in &parts[j] {
                        edges.push((a, b));
                    }
                }
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        assert_eq!(degeneracy(&g), 4);
    }
}
